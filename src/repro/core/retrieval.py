"""Layer-2 client retrieval of blob data (Section 4.2's third goal).

PANDAS's primary objective includes that "layer-2 clients can easily
retrieve blob data": a rollup participant who wants the actual bytes —
to recompute state or build a fraud proof — asks the custodians of
the rows (or columns) that carry its batch. ``RetrievalClient`` reuses
the adaptive fetcher with the requested lines as synthetic custody, so
retrieval inherits the same redundancy-escalation and reconstruction
behaviour as consolidation, without the client being a custodian of
anything itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.core.assignment import Custody
from repro.core.context import ProtocolContext
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher
from repro.core.messages import CellRequest, CellResponse
from repro.net.transport import Datagram

__all__ = ["RetrievalClient", "RetrievalResult"]


@dataclass
class RetrievalResult:
    """Outcome of one retrieval request."""

    slot: int
    rows: tuple[int, ...]
    cols: tuple[int, ...]
    cells: set[int] = field(default_factory=set)
    complete: bool = False
    elapsed: float = 0.0


@dataclass
class _Retrieval:
    result: RetrievalResult
    state: SlotCellState
    fetcher: AdaptiveFetcher
    callback: Callable[[RetrievalResult], None]
    started_at: float = 0.0


class RetrievalClient:
    """A layer-2 participant fetching specific rows/columns of a blob.

    The client must be registered on the network (it sends requests
    and receives responses) but holds no custody and answers nothing.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        client_id: int,
        view: set[int] | None = None,
    ) -> None:
        self.ctx = ctx
        self.client_id = client_id
        self.view = view
        self._active: dict[int, list[_Retrieval]] = {}

    # ------------------------------------------------------------------
    def fetch_lines(
        self,
        slot: int,
        rows: Sequence[int] = (),
        cols: Sequence[int] = (),
        callback: Callable[[RetrievalResult], None] = lambda result: None,
    ) -> RetrievalResult:
        """Retrieve complete rows/columns of the slot's extended blob.

        The callback fires once every requested line is complete
        (received or erasure-reconstructed). The returned result object
        is updated in place as cells arrive.
        """
        if not rows and not cols:
            raise ValueError("nothing to retrieve")
        ctx = self.ctx
        params = ctx.params
        epoch = ctx.epoch_of(slot)
        custody = Custody(rows=tuple(sorted(rows)), cols=tuple(sorted(cols)))
        result = RetrievalResult(slot=slot, rows=custody.rows, cols=custody.cols)

        state = SlotCellState(params, custody, samples=(), on_store=result.cells.add)
        index = ctx.index_for_epoch(epoch)
        view = self.view

        retrieval = _Retrieval(
            result=result,
            state=state,
            fetcher=None,  # type: ignore[arg-type]
            callback=callback,
            started_at=ctx.sim.now,
        )

        def on_done(success: bool) -> None:
            result.complete = success and state.consolidation_complete
            result.elapsed = ctx.sim.now - retrieval.started_at
            callback(result)

        retrieval.fetcher = AdaptiveFetcher(
            sim=ctx.sim,
            state=state,
            schedule=params.fetch_schedule,
            line_custodians=lambda line: index.custodians(line, view),
            send_query=lambda peer, cells: self._send_query(slot, epoch, peer, cells),
            rng=ctx.rngs.stream("retrieval", self.client_id, slot, len(self._active.get(slot, ()))),
            cb_boost=params.cb_boost,
            self_id=self.client_id,
            on_done=on_done,
            is_complete=lambda: state.consolidation_complete,
        )
        self._active.setdefault(slot, []).append(retrieval)
        retrieval.fetcher.start()
        return result

    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if not isinstance(payload, CellResponse):
            return
        for retrieval in self._active.get(payload.slot, ()):
            if dgram.src in retrieval.fetcher.queried and not retrieval.fetcher.finished:
                retrieval.fetcher.on_response(dgram.src, payload.cells)

    def _send_query(self, slot: int, epoch: int, peer: int, cells: frozenset[int]) -> None:
        request = CellRequest(slot=slot, epoch=epoch, cells=cells)
        self.ctx.network.send(
            self.client_id, peer, request, request.wire_size(self.ctx.params)
        )
