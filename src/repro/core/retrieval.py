"""Layer-2 client retrieval of blob data (Section 4.2's third goal).

PANDAS's primary objective includes that "layer-2 clients can easily
retrieve blob data": a rollup participant who wants the actual bytes —
to recompute state or build a fraud proof — asks the custodians of
the rows (or columns) that carry its batch. ``RetrievalClient`` reuses
the adaptive fetcher with the requested lines as synthetic custody, so
retrieval inherits the same redundancy-escalation and reconstruction
behaviour as consolidation, without the client being a custodian of
anything itself.

Two overload-control layers ride on top for the sustained pipeline:

- ``RetrievalClient`` admission control (``max_concurrent`` /
  ``defer_limit``): concurrent retrievals beyond the cap wait in a
  bounded FIFO defer queue; past the bound they are shed immediately
  (callback with ``shed=True``) instead of queueing forever.
- :class:`AggregateRetrievalLoad`: a deterministic fluid-queue (rate
  process) model of the *population* of layer-2 clients — millions of
  requests per slot as arrival/service rates, never per-request
  simulator events. The pipeline steps it once per slot phase, feeds
  it the capacity left over by sampling traffic (sampling has
  priority), and reads shed/backlog totals and M/M/1-style latency
  estimates out of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.core.assignment import Custody
from repro.core.context import ProtocolContext
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher
from repro.core.messages import PRIORITY_RETRIEVAL, CellRequest, CellResponse
from repro.net.transport import Datagram

__all__ = [
    "AggregateRetrievalLoad",
    "RetrievalClient",
    "RetrievalResult",
]


@dataclass
class RetrievalResult:
    """Outcome of one retrieval request.

    ``shed=True`` means admission control rejected the request before
    any query was sent (the defer queue was full); ``complete`` stays
    False and the callback fires immediately.
    """

    slot: int
    rows: tuple[int, ...]
    cols: tuple[int, ...]
    cells: set[int] = field(default_factory=set)
    complete: bool = False
    elapsed: float = 0.0
    shed: bool = False


@dataclass
class _Retrieval:
    result: RetrievalResult
    state: SlotCellState
    fetcher: AdaptiveFetcher
    callback: Callable[[RetrievalResult], None]
    started_at: float = 0.0


class RetrievalClient:
    """A layer-2 participant fetching specific rows/columns of a blob.

    The client must be registered on the network (it sends requests
    and receives responses) but holds no custody and answers nothing.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        client_id: int,
        view: set[int] | None = None,
        max_concurrent: int | None = None,
        defer_limit: int = 32,
    ) -> None:
        if max_concurrent is not None and max_concurrent <= 0:
            raise ValueError(f"max_concurrent must be positive or None, got {max_concurrent}")
        if defer_limit < 0:
            raise ValueError(f"defer_limit must be non-negative, got {defer_limit}")
        self.ctx = ctx
        self.client_id = client_id
        self.view = view
        # Admission control (``None`` = legacy unbounded): at most
        # ``max_concurrent`` retrievals run at once; the next
        # ``defer_limit`` wait in FIFO order; anything beyond that is
        # shed immediately rather than queued forever (the client half
        # of the I5 backlog bound).
        self.max_concurrent = max_concurrent
        self.defer_limit = defer_limit
        self.shed_count = 0
        self.deferred_peak = 0
        self._running = 0
        self._deferred: list[tuple[RetrievalResult, Callable[[RetrievalResult], None]]] = []
        self._active: dict[int, list[_Retrieval]] = {}

    # ------------------------------------------------------------------
    def fetch_lines(
        self,
        slot: int,
        rows: Sequence[int] = (),
        cols: Sequence[int] = (),
        callback: Callable[[RetrievalResult], None] = lambda result: None,
    ) -> RetrievalResult:
        """Retrieve complete rows/columns of the slot's extended blob.

        The callback fires once every requested line is complete
        (received or erasure-reconstructed). The returned result object
        is updated in place as cells arrive. Under admission control a
        request may instead be deferred (starts when a running one
        finishes) or shed (``result.shed``, callback fires at once).
        """
        if not rows and not cols:
            raise ValueError("nothing to retrieve")
        result = RetrievalResult(
            slot=slot, rows=tuple(sorted(rows)), cols=tuple(sorted(cols))
        )
        if self.max_concurrent is None or self._running < self.max_concurrent:
            self._start(result, callback)
        elif len(self._deferred) < self.defer_limit:
            self._deferred.append((result, callback))
            if len(self._deferred) > self.deferred_peak:
                self.deferred_peak = len(self._deferred)
            self.ctx.metrics.observe_queue_depth(
                "retrieval_deferred", len(self._deferred)
            )
        else:
            result.shed = True
            self.shed_count += 1
            self.ctx.metrics.record_shed("retrieval_client")
            callback(result)
        return result

    def _start(
        self, result: RetrievalResult, callback: Callable[[RetrievalResult], None]
    ) -> None:
        ctx = self.ctx
        params = ctx.params
        slot = result.slot
        epoch = ctx.epoch_of(slot)
        custody = Custody(rows=result.rows, cols=result.cols)

        state = SlotCellState(params, custody, samples=(), on_store=result.cells.add)
        index = ctx.index_for_epoch(epoch)
        view = self.view

        retrieval = _Retrieval(
            result=result,
            state=state,
            fetcher=None,  # type: ignore[arg-type]
            callback=callback,
            started_at=ctx.sim.now,
        )
        self._running += 1

        def on_done(success: bool) -> None:
            result.complete = success and state.consolidation_complete
            result.elapsed = ctx.sim.now - retrieval.started_at
            self._running -= 1
            callback(result)
            self._drain_deferred()

        retrieval.fetcher = AdaptiveFetcher(
            sim=ctx.sim,
            state=state,
            schedule=params.fetch_schedule,
            line_custodians=lambda line: index.custodians(line, view),
            send_query=lambda peer, cells: self._send_query(slot, epoch, peer, cells),
            rng=ctx.rngs.stream("retrieval", self.client_id, slot, len(self._active.get(slot, ()))),
            cb_boost=params.cb_boost,
            self_id=self.client_id,
            on_done=on_done,
            is_complete=lambda: state.consolidation_complete,
        )
        self._active.setdefault(slot, []).append(retrieval)
        retrieval.fetcher.start()

    def _drain_deferred(self) -> None:
        """Start deferred retrievals while slots are free (FIFO order)."""
        while self._deferred and (
            self.max_concurrent is None or self._running < self.max_concurrent
        ):
            result, callback = self._deferred.pop(0)
            self._start(result, callback)

    @property
    def queue_depth(self) -> int:
        """Live admission backlog (running + deferred)."""
        return self._running + len(self._deferred)

    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if not isinstance(payload, CellResponse):
            return
        for retrieval in self._active.get(payload.slot, ()):
            if dgram.src in retrieval.fetcher.queried and not retrieval.fetcher.finished:
                retrieval.fetcher.on_response(dgram.src, payload.cells)

    def _send_query(self, slot: int, epoch: int, peer: int, cells: frozenset[int]) -> None:
        # retrieval-class traffic: serving nodes shed it before sampling
        # traffic under overload (see PandasNode._admit_retrieval)
        request = CellRequest(
            slot=slot, epoch=epoch, cells=cells, priority=PRIORITY_RETRIEVAL
        )
        self.ctx.network.send(
            self.client_id, peer, request, request.wire_size(self.ctx.params)
        )


class AggregateRetrievalLoad:
    """Fluid-queue model of the aggregate layer-2 client population.

    Millions of retrieval requests per slot cannot be simulated as
    per-request events; they are modeled as deterministic *rate
    processes* instead (pure arithmetic — no RNG, no simulator events,
    so stepping the model is behavior-neutral for the packet-level
    simulation running beside it).

    Each :meth:`offer` call advances the model by one phase of
    ``duration`` seconds during which clients generate ``rate``
    requests/second against a serving tier that can absorb
    ``capacity`` requests/second *after* sampling traffic took its
    share (sampling has strict priority; the caller computes the
    leftover capacity). Admission is capped at ``admit_rate`` and the
    waiting pool is bounded by ``max_backlog`` — excess load is shed
    and counted, never queued forever (the rate-process half of the
    I5 invariant).

    Latency estimates use the M/M/1 sojourn-time approximation on the
    current backlog and service rate — honest about being a model, but
    good enough to show the degradation curve under 2x overload.
    """

    def __init__(
        self,
        service_rate: float,
        admit_rate: float | None = None,
        max_backlog: float | None = None,
    ) -> None:
        if service_rate <= 0.0:
            raise ValueError(f"service_rate must be positive, got {service_rate}")
        if admit_rate is not None and admit_rate < 0.0:
            raise ValueError(f"admit_rate must be non-negative, got {admit_rate}")
        if max_backlog is not None and max_backlog < 0.0:
            raise ValueError(f"max_backlog must be non-negative, got {max_backlog}")
        self.service_rate = service_rate
        self.admit_rate = admit_rate
        self.max_backlog = max_backlog
        self.backlog = 0.0
        self.peak_backlog = 0.0
        self.offered_total = 0.0
        self.admitted_total = 0.0
        self.served_total = 0.0
        self.shed_admission = 0.0
        self.shed_overflow = 0.0
        self._last_capacity = service_rate

    def offer(self, rate: float, duration: float, capacity: float | None = None) -> float:
        """Advance one phase; returns requests served during it."""
        if rate < 0.0 or duration < 0.0:
            raise ValueError("rate and duration must be non-negative")
        effective = self.service_rate if capacity is None else max(0.0, capacity)
        self._last_capacity = effective
        offered = rate * duration
        self.offered_total += offered
        admitted = offered
        if self.admit_rate is not None:
            admitted = min(offered, self.admit_rate * duration)
            self.shed_admission += offered - admitted
        self.admitted_total += admitted
        served = min(self.backlog + admitted, effective * duration)
        self.served_total += served
        self.backlog += admitted - served
        if self.max_backlog is not None and self.backlog > self.max_backlog:
            self.shed_overflow += self.backlog - self.max_backlog
            self.backlog = self.max_backlog
        if self.backlog > self.peak_backlog:
            self.peak_backlog = self.backlog
        return served

    @property
    def shed_total(self) -> float:
        return self.shed_admission + self.shed_overflow

    def latency_quantile(self, q: float) -> float | None:
        """M/M/1-style sojourn-time quantile at the current backlog.

        Mean sojourn = (backlog + 1) / capacity (Little's law on the
        waiting pool plus own service); quantile ``q`` of the matching
        exponential is ``-ln(1 - q)`` means. ``None`` when the serving
        tier has zero capacity left (every estimate would be infinite).
        """
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {q}")
        if self._last_capacity <= 0.0:
            return None
        mean = (self.backlog + 1.0) / self._last_capacity
        return mean * -math.log(1.0 - q)

    def snapshot(self) -> dict[str, float]:
        """Flat totals for reports (stable key order for replays)."""
        return {
            "offered": self.offered_total,
            "admitted": self.admitted_total,
            "served": self.served_total,
            "shed_admission": self.shed_admission,
            "shed_overflow": self.shed_overflow,
            "backlog": self.backlog,
            "peak_backlog": self.peak_backlog,
        }
