"""PANDAS core protocol: assignment, seeding, consolidation, sampling."""

from repro.core.assignment import AssignmentIndex, CellAssignment, cells_of_line, lines_of_cell
from repro.core.builder import Builder
from repro.core.context import ProtocolContext
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher, FetchPlan, RoundStats, plan_queries, score_peers
from repro.core.messages import CellRequest, CellResponse, SeedMessage
from repro.core.adaptive_policy import AdaptiveRedundancyController
from repro.core.node import PandasNode
from repro.core.retrieval import RetrievalClient, RetrievalResult
from repro.core.seeding import (
    MinimalSeeding,
    RedundantSeeding,
    SeedParcel,
    SeedingPolicy,
    SingleSeeding,
    WithholdingSeeding,
    policy_by_name,
)

__all__ = [
    "AssignmentIndex",
    "CellAssignment",
    "cells_of_line",
    "lines_of_cell",
    "Builder",
    "ProtocolContext",
    "SlotCellState",
    "AdaptiveFetcher",
    "FetchPlan",
    "RoundStats",
    "plan_queries",
    "score_peers",
    "CellRequest",
    "CellResponse",
    "SeedMessage",
    "PandasNode",
    "AdaptiveRedundancyController",
    "RetrievalClient",
    "RetrievalResult",
    "WithholdingSeeding",
    "MinimalSeeding",
    "RedundantSeeding",
    "SeedParcel",
    "SeedingPolicy",
    "SingleSeeding",
    "policy_by_name",
]
