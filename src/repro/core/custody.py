"""Per-slot cell state at a node: custody lines, samples, reconstruction.

Tracks which cells of the node's assigned rows/columns (and of its 73
random samples) are currently held, and applies Reed-Solomon
reconstruction at the line level: as soon as a custody line holds at
least half of its cells, the remaining half is recovered locally
(Algorithm 1, lines 25-27). The simulation tracks cell *identity*,
not bytes — the byte-level codec in :mod:`repro.erasure.blob` is
validated separately, so here reconstruction is an occupancy fill.

Consolidation is *deficit-driven*: a line needs only ``len/2 - held``
more cells to be reconstructable, so that is what the fetcher requests
(fetching all 512 cells of every line would cost ~4.5 MB per node per
slot instead of the ~1-2 MB the paper reports in Figure 10).

Performance: this is the hottest data structure in the simulator — a
full-parameter node stores ~8k cells per slot, so a thousand-node run
crosses :meth:`SlotCellState.add_cells` millions of times. State is
therefore kept as flat per-line occupancy counters (O(1) deficit /
completeness checks instead of bitmask popcounts), the ingest loop is
a single inlined pass with locals bound once per batch, and the
reconstruction closure only runs when a counter actually moved. The
externally observable behaviour — stored-cell order, ``on_store``
callback order, reconstruction order — is bit-identical to the
original bitmask implementation; the determinism suite pins it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.assignment import Custody, cells_of_line, lines_of_cell
from repro.params import PandasParams

__all__ = ["SlotCellState"]


class SlotCellState:
    """Cells held by one node for one slot."""

    __slots__ = (
        "params",
        "custody",
        "on_store",
        "custody_lines",
        "samples",
        "have",
        "cells_reconstructed",
        "duplicates_received",
        "_ext_rows",
        "_ext_cols",
        "_line_set",
        "_counts",
        "_line_len",
        "_half",
        "_incomplete_lines",
        "_samples_missing",
    )

    def __init__(
        self,
        params: PandasParams,
        custody: Custody,
        samples: Iterable[int],
        on_store: Callable[[int], None] | None = None,
    ) -> None:
        self.params = params
        self.custody = custody
        # invoked once per newly stored cell (received OR reconstructed);
        # lets the node serve buffered queries in O(1) per cell instead
        # of rescanning its pending-request list on every arrival. The
        # node detaches it (sets None) while no query is waiting, which
        # removes a per-cell call from the bulk ingest path.
        self.on_store = on_store
        self.custody_lines: tuple[int, ...] = custody.lines(params.ext_rows)
        self._ext_rows = params.ext_rows
        self._ext_cols = params.ext_cols
        self._line_set = frozenset(self.custody_lines)
        # per-line occupancy count over positions within the line
        self._counts: dict[int, int] = dict.fromkeys(self.custody_lines, 0)
        self._line_len: dict[int, int] = {
            line: params.ext_cols if line < params.ext_rows else params.ext_rows
            for line in self.custody_lines
        }
        self._half: dict[int, int] = {
            line: length // 2 for line, length in self._line_len.items()
        }
        self._incomplete_lines = len(self.custody_lines)
        self.samples: set[int] = set(samples)
        self._samples_missing = len(self.samples)
        self.have: set[int] = set()
        self.cells_reconstructed = 0
        self.duplicates_received = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _position(self, line: int, cid: int) -> int:
        """Index of ``cid`` within ``line`` (column for rows, row for cols)."""
        row, col = divmod(cid, self._ext_cols)
        return col if line < self._ext_rows else row

    def _cell_at(self, line: int, position: int) -> int:
        if line < self._ext_rows:
            return line * self._ext_cols + position
        return position * self._ext_cols + (line - self._ext_rows)

    def lines_of(self, cid: int) -> tuple[int, int]:
        return lines_of_cell(cid, self._ext_rows, self._ext_cols)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_cells(self, cells: Iterable[int]) -> tuple[int, int]:
        """Ingest received cells; returns (new_count, reconstructed_count).

        Applies the reconstruction closure: a custody line reaching
        half occupancy is completed in full. Completed cells may close
        further custody lines at their intersections, so the closure
        loops to fixpoint (cheap: at most 16 lines).
        """
        have = self.have
        samples = self.samples
        line_set = self._line_set
        counts = self._counts
        line_len = self._line_len
        on_store = self.on_store
        ext_rows = self._ext_rows
        ext_cols = self._ext_cols
        new_count = 0
        dup_count = 0
        touched = False
        for cid in cells:
            if cid in have:
                dup_count += 1
                continue
            have.add(cid)
            new_count += 1
            if cid in samples:
                self._samples_missing -= 1
            row = cid // ext_cols
            if row in line_set:
                count = counts[row] + 1
                counts[row] = count
                touched = True
                if count == line_len[row]:
                    self._incomplete_lines -= 1
            col_line = ext_rows + cid - row * ext_cols
            if col_line in line_set:
                count = counts[col_line] + 1
                counts[col_line] = count
                touched = True
                if count == line_len[col_line]:
                    self._incomplete_lines -= 1
            if on_store is not None:
                on_store(cid)
        if dup_count:
            self.duplicates_received += dup_count
        # a line can only have become fillable if one of its counters
        # moved; the closure left every line either complete or below
        # half, so an untouched batch cannot trigger reconstruction
        reconstructed = self._reconstruct_closure() if touched else 0
        return new_count, reconstructed

    def _store(self, cid: int) -> None:
        """Store one cell (reconstruction path; ingest inlines this)."""
        self.have.add(cid)
        if cid in self.samples:
            self._samples_missing -= 1
        counts = self._counts
        line_len = self._line_len
        row = cid // self._ext_cols
        if row in self._line_set:
            count = counts[row] + 1
            counts[row] = count
            if count == line_len[row]:
                self._incomplete_lines -= 1
        col_line = self._ext_rows + cid - row * self._ext_cols
        if col_line in self._line_set:
            count = counts[col_line] + 1
            counts[col_line] = count
            if count == line_len[col_line]:
                self._incomplete_lines -= 1
        if self.on_store is not None:
            self.on_store(cid)

    def _reconstruct_closure(self) -> int:
        reconstructed = 0
        counts = self._counts
        line_len = self._line_len
        half = self._half
        have = self.have
        ext_rows = self._ext_rows
        ext_cols = self._ext_cols
        custody_lines = self.custody_lines
        store = self._store
        progress = True
        while progress:
            progress = False
            for line in custody_lines:
                count = counts[line]
                if count != line_len[line] and count >= half[line]:
                    if self.on_store is None:
                        # Bulk fill: complete the line with set arithmetic
                        # instead of per-cell stores. The filled line
                        # crosses every other custody line at exactly one
                        # cell, so crossing counters need at most one
                        # point check each. Equivalent to the per-cell
                        # path — `have` is membership-only, so insertion
                        # order is unobservable.
                        missing = set(cells_of_line(line, ext_rows, ext_cols))
                        missing -= have
                        have |= missing
                        reconstructed += len(missing)
                        self._samples_missing -= len(self.samples & missing)
                        counts[line] = line_len[line]
                        self._incomplete_lines -= 1
                        is_row = line < ext_rows
                        for other in custody_lines:
                            if is_row:
                                if other < ext_rows:
                                    continue
                                cid = line * ext_cols + (other - ext_rows)
                            else:
                                if other >= ext_rows:
                                    continue
                                cid = other * ext_cols + (line - ext_rows)
                            if cid in missing:
                                crossing = counts[other] + 1
                                counts[other] = crossing
                                if crossing == line_len[other]:
                                    self._incomplete_lines -= 1
                    else:
                        # A pending-query sink is attached: keep the
                        # per-cell path so on_store fires once per cell
                        # in natural line order, exactly as before.
                        for cid in cells_of_line(line, ext_rows, ext_cols):
                            if cid not in have:
                                store(cid)
                                reconstructed += 1
                    progress = True
        self.cells_reconstructed += reconstructed
        return reconstructed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_cell(self, cid: int) -> bool:
        return cid in self.have

    def has_all(self, cells: Iterable[int]) -> bool:
        have = self.have
        return all(cid in have for cid in cells)

    def line_count(self, line: int) -> int:
        return self._counts[line]

    def line_complete(self, line: int) -> bool:
        return self._counts[line] == self._line_len[line]

    def line_deficit(self, line: int) -> int:
        """Cells still needed before the line is reconstructable."""
        deficit = self._half[line] - self._counts[line]
        return deficit if deficit > 0 else 0

    def missing_in_line(self, line: int) -> list[int]:
        """Missing cell ids of a custody line, in position order."""
        length = self._line_len[line]
        if self._counts[line] == length:
            return []
        have = self.have
        if line < self._ext_rows:
            base = line * self._ext_cols
            return [base + pos for pos in range(length) if base + pos not in have]
        col = line - self._ext_rows
        ext_cols = self._ext_cols
        return [
            pos * ext_cols + col
            for pos in range(length)
            if pos * ext_cols + col not in have
        ]

    @property
    def consolidation_complete(self) -> bool:
        """All assigned rows and columns fully held (or reconstructed)."""
        return self._incomplete_lines == 0

    @property
    def sampling_complete(self) -> bool:
        """All random sample cells held."""
        return self._samples_missing == 0

    @property
    def complete(self) -> bool:
        return self._incomplete_lines == 0 and self._samples_missing == 0

    def missing_samples(self) -> set[int]:
        have = self.have
        return {cid for cid in self.samples if cid not in have}
