"""Per-slot cell state at a node: custody lines, samples, reconstruction.

Tracks which cells of the node's assigned rows/columns (and of its 73
random samples) are currently held, and applies Reed-Solomon
reconstruction at the line level: as soon as a custody line holds at
least half of its cells, the remaining half is recovered locally
(Algorithm 1, lines 25-27). The simulation tracks cell *identity*,
not bytes — the byte-level codec in :mod:`repro.erasure.blob` is
validated separately, so here reconstruction is a bitmask fill.

Consolidation is *deficit-driven*: a line needs only ``len/2 - held``
more cells to be reconstructable, so that is what the fetcher requests
(fetching all 512 cells of every line would cost ~4.5 MB per node per
slot instead of the ~1-2 MB the paper reports in Figure 10).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.assignment import Custody, cells_of_line, lines_of_cell
from repro.params import PandasParams

__all__ = ["SlotCellState"]


class SlotCellState:
    """Cells held by one node for one slot."""

    def __init__(
        self,
        params: PandasParams,
        custody: Custody,
        samples: Iterable[int],
        on_store: Callable[[int], None] | None = None,
    ) -> None:
        self.params = params
        self.custody = custody
        # invoked once per newly stored cell (received OR reconstructed);
        # lets the node serve buffered queries in O(1) per cell instead
        # of rescanning its pending-request list on every arrival
        self.on_store = on_store
        self.custody_lines: tuple[int, ...] = custody.lines(params.ext_rows)
        self._line_set = set(self.custody_lines)
        # bitmask per custody line over positions within the line
        self._masks: dict[int, int] = {line: 0 for line in self.custody_lines}
        self._line_len: dict[int, int] = {
            line: params.ext_cols if line < params.ext_rows else params.ext_rows
            for line in self.custody_lines
        }
        self.samples: set[int] = set(samples)
        self.have: set[int] = set()
        self.cells_reconstructed = 0
        self.duplicates_received = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _position(self, line: int, cid: int) -> int:
        """Index of ``cid`` within ``line`` (column for rows, row for cols)."""
        row, col = divmod(cid, self.params.ext_cols)
        return col if line < self.params.ext_rows else row

    def _cell_at(self, line: int, position: int) -> int:
        if line < self.params.ext_rows:
            return line * self.params.ext_cols + position
        return position * self.params.ext_cols + (line - self.params.ext_rows)

    def lines_of(self, cid: int) -> tuple[int, int]:
        return lines_of_cell(cid, self.params.ext_rows, self.params.ext_cols)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_cells(self, cells: Iterable[int]) -> tuple[int, int]:
        """Ingest received cells; returns (new_count, reconstructed_count).

        Applies the reconstruction closure: a custody line reaching
        half occupancy is completed in full. Completed cells may close
        further custody lines at their intersections, so the closure
        loops to fixpoint (cheap: at most 16 lines).
        """
        new_count = 0
        for cid in cells:
            if cid in self.have:
                self.duplicates_received += 1
                continue
            self._store(cid)
            new_count += 1
        reconstructed = self._reconstruct_closure()
        return new_count, reconstructed

    def _store(self, cid: int) -> None:
        self.have.add(cid)
        row_line, col_line = self.lines_of(cid)
        for line in (row_line, col_line):
            if line in self._line_set:
                self._masks[line] |= 1 << self._position(line, cid)
        if self.on_store is not None:
            self.on_store(cid)

    def _reconstruct_closure(self) -> int:
        reconstructed = 0
        progress = True
        while progress:
            progress = False
            for line in self.custody_lines:
                length = self._line_len[line]
                mask = self._masks[line]
                full = (1 << length) - 1
                if mask != full and mask.bit_count() >= length // 2:
                    for cid in cells_of_line(line, self.params.ext_rows, self.params.ext_cols):
                        if cid not in self.have:
                            self._store(cid)
                            reconstructed += 1
                    progress = True
        self.cells_reconstructed += reconstructed
        return reconstructed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_cell(self, cid: int) -> bool:
        return cid in self.have

    def has_all(self, cells: Iterable[int]) -> bool:
        return all(cid in self.have for cid in cells)

    def line_count(self, line: int) -> int:
        return self._masks[line].bit_count()

    def line_complete(self, line: int) -> bool:
        return self._masks[line].bit_count() == self._line_len[line]

    def line_deficit(self, line: int) -> int:
        """Cells still needed before the line is reconstructable."""
        return max(0, self._line_len[line] // 2 - self._masks[line].bit_count())

    def missing_in_line(self, line: int) -> list[int]:
        """Missing cell ids of a custody line, in position order."""
        mask = self._masks[line]
        length = self._line_len[line]
        return [
            self._cell_at(line, position)
            for position in range(length)
            if not (mask >> position) & 1
        ]

    @property
    def consolidation_complete(self) -> bool:
        """All assigned rows and columns fully held (or reconstructed)."""
        return all(
            self._masks[line].bit_count() == self._line_len[line]
            for line in self.custody_lines
        )

    @property
    def sampling_complete(self) -> bool:
        """All random sample cells held."""
        return all(cid in self.have for cid in self.samples)

    @property
    def complete(self) -> bool:
        return self.consolidation_complete and self.sampling_complete

    def missing_samples(self) -> set[int]:
        return {cid for cid in self.samples if cid not in self.have}
