"""Deterministic cell-to-node assignment (Section 5).

``S(n_i, e)`` gives every node 8 distinct rows and 8 distinct columns
of the extended blob for epoch ``e``. Two requirements drive the
construction:

- **Determinism**: any two nodes compute the same ``S(n_i, e)`` even
  with different views (consistent hashing would violate this, see the
  paper's footnote 2), so the PRNG is seeded only by the epoch seed
  and the target node's ID — never by view contents.
- **Short-liveness**: the assignment rotates with the RANDAO epoch
  seed (~6.4 min), faster than ENR crawling, defeating placement
  attacks.

Rows and columns are treated uniformly as *lines*: line ``r`` is row
``r`` and line ``ext_rows + c`` is column ``c``. A cell belongs to
exactly two lines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable

from repro.crypto.randao import RandaoBeacon
from repro.params import PandasParams
from repro.sim.rng import derive_seed

__all__ = ["CellAssignment", "AssignmentIndex", "lines_of_cell", "cells_of_line"]


def lines_of_cell(cid: int, ext_rows: int, ext_cols: int) -> tuple[int, int]:
    """The (row-line, column-line) ids containing cell ``cid``."""
    row, col = divmod(cid, ext_cols)
    return row, ext_rows + col


def cells_of_line(line: int, ext_rows: int, ext_cols: int) -> list[int]:
    """All cell ids on ``line``, in natural order."""
    if line < ext_rows:
        base = line * ext_cols
        return list(range(base, base + ext_cols))
    col = line - ext_rows
    return list(range(col, ext_rows * ext_cols, ext_cols))


@dataclass(frozen=True)
class Custody:
    """One node's assignment for one epoch."""

    rows: tuple[int, ...]
    cols: tuple[int, ...]

    def lines(self, ext_rows: int) -> tuple[int, ...]:
        return self.rows + tuple(ext_rows + c for c in self.cols)


class CellAssignment:
    """The globally known function ``S``; memoizes per (epoch, node)."""

    def __init__(self, params: PandasParams, beacon: RandaoBeacon) -> None:
        self.params = params
        self.beacon = beacon
        self._cache: dict[tuple[int, int], Custody] = {}

    def custody(self, node_id: int, epoch: int) -> Custody:
        """``S(node_id, epoch)``: 8 distinct rows + 8 distinct columns."""
        key = (epoch, node_id)
        assigned = self._cache.get(key)
        if assigned is None:
            seed = derive_seed(self.beacon.epoch_seed(epoch), "assignment", node_id)
            rng = random.Random(seed)
            params = self.params
            rows = tuple(sorted(rng.sample(range(params.ext_rows), params.custody_rows)))
            cols = tuple(sorted(rng.sample(range(params.ext_cols), params.custody_cols)))
            assigned = Custody(rows, cols)
            self._cache[key] = assigned
        return assigned

    def lines(self, node_id: int, epoch: int) -> tuple[int, ...]:
        """The node's custody lines (row ids then offset column ids)."""
        return self.custody(node_id, epoch).lines(self.params.ext_rows)

    def custody_cells(self, node_id: int, epoch: int) -> set[int]:
        """Every distinct cell id the node must custody (8,128 full-scale)."""
        params = self.params
        assigned = self.custody(node_id, epoch)
        cells: set[int] = set()
        for row in assigned.rows:
            base = row * params.ext_cols
            cells.update(range(base, base + params.ext_cols))
        for col in assigned.cols:
            cells.update(range(col, params.total_cells, params.ext_cols))
        return cells

    def is_custodian(self, node_id: int, epoch: int, cid: int) -> bool:
        """Does ``cid`` fall on one of the node's custody lines?"""
        row, col = divmod(cid, self.params.ext_cols)
        assigned = self.custody(node_id, epoch)
        return row in assigned.rows or col in assigned.cols


class AssignmentIndex:
    """Reverse map line -> custodians, for one epoch and a node set.

    Built once per epoch over the global node set and *shared*: a node
    with an incomplete view filters the custodian lists against its
    view at query time (``custodians`` with ``view``), which keeps the
    fault scenarios cheap without rebuilding per-node indexes.
    """

    def __init__(
        self, assignment: CellAssignment, epoch: int, node_ids: Iterable[int]
    ) -> None:
        self.assignment = assignment
        self.epoch = epoch
        params = assignment.params
        num_lines = params.ext_rows + params.ext_cols
        self._by_line: list[list[int]] = [[] for _ in range(num_lines)]
        for node_id in node_ids:
            for line in assignment.lines(node_id, epoch):
                self._by_line[line].append(node_id)

    def custodians(self, line: int, view: set[int] | None = None) -> list[int]:
        """Nodes assigned ``line``, optionally restricted to ``view``."""
        members = self._by_line[line]
        if view is None:
            return members
        return [node_id for node_id in members if node_id in view]

    def custodians_of_cell(self, cid: int, view: set[int] | None = None) -> list[int]:
        """Nodes whose custody intersects the cell's row or column."""
        params = self.assignment.params
        row_line, col_line = lines_of_cell(cid, params.ext_rows, params.ext_cols)
        row_members = self.custodians(row_line, view)
        col_members = self.custodians(col_line, view)
        seen = set(row_members)
        return row_members + [n for n in col_members if n not in seen]

    def mean_custodians_per_line(self) -> float:
        total = sum(len(members) for members in self._by_line)
        return total / len(self._by_line)
