"""The builder process (Section 6.1).

When the proposer selects its block, the builder seeds the extended
blob into the network: for every row and column it applies the
configured seeding policy to decide which cells go to which custodians
and with what redundancy, merges the parcels per (node, line) into one
datagram carrying the cells plus the consolidation-boost entries for
that line, and pushes everything out in randomized order through its
(10 Gbps) uplink — whose serialization delay is exactly what creates
the paper's time-to-seeding distribution.
"""

from __future__ import annotations


from repro.core.context import ProtocolContext
from repro.core.messages import SeedMessage
from repro.core.seeding import SeedingPolicy, boost_map_for_line
from repro.net.transport import Datagram

__all__ = ["Builder"]


class Builder:
    """Prepares and seeds extended blob data for slots it wins."""

    def __init__(
        self,
        ctx: ProtocolContext,
        builder_id: int,
        policy: SeedingPolicy,
        view: set[int] | None = None,
    ) -> None:
        self.ctx = ctx
        self.builder_id = builder_id
        self.policy = policy
        self.view = view  # None: complete view of all nodes
        self.last_seed_messages = 0
        self.last_seed_bytes = 0

    # ------------------------------------------------------------------
    def seed_slot(self, slot: int) -> None:
        """Disseminate the slot's extended blob cells (phase 3 of Fig. 4)."""
        ctx = self.ctx
        params = ctx.params
        epoch = ctx.epoch_of(slot)
        index = ctx.index_for_epoch(epoch)
        rng = ctx.rngs.stream("seeding", self.builder_id, slot)

        # per (node, line): merged cells; per line: boost map
        merged: dict[tuple[int, int], set[int]] = {}
        boost_by_line: dict[int, dict[int, tuple[int, ...]]] = {}
        num_lines = params.ext_rows + params.ext_cols
        for line in range(num_lines):
            custodians = index.custodians(line, self.view)
            if not custodians:
                continue
            parcels = self.policy.line_parcels(line, params, custodians, rng)
            if not parcels:
                continue
            boost_by_line[line] = boost_map_for_line(parcels)
            for parcel in parcels:
                merged.setdefault((parcel.node_id, line), set()).update(parcel.cells)

        # per-node datagram counts let receivers detect seed completion
        totals: dict[int, int] = {}
        for node_id, _line in merged:
            totals[node_id] = totals.get(node_id, 0) + 1

        # Globally shuffled send order: every node's seed messages are
        # spread across the whole ~0.9 s egress window. (A per-node
        # burst order was tried and regresses under the FIFO link
        # model: early-seeded nodes query peers that have not been
        # seeded yet, and replies queue behind the requester's own
        # burst — see DESIGN.md 2.1.)
        sends = list(merged.items())
        rng.shuffle(sends)
        self.last_seed_messages = 0
        self.last_seed_bytes = 0
        # The first datagram of each node's burst carries the full
        # consolidation-boost map for all the node's lines — including
        # the node's own parcels, so it knows which cells are already
        # inbound and never re-requests them (Table 1's zero round-1
        # duplicates). Subsequent datagrams carry cells only.
        boost_sent: set[int] = set()
        node_lines: dict[int, list[int]] = {}
        for node_id, line in merged:
            node_lines.setdefault(node_id, []).append(line)
        for (node_id, line), cells in sends:
            if node_id not in boost_sent:
                boost_sent.add(node_id)
                boost = tuple(
                    (peer, peer_cells)
                    for node_line in node_lines[node_id]
                    for peer, peer_cells in boost_by_line[node_line].items()
                )
            else:
                boost = ()
            msg = SeedMessage(
                slot=slot,
                epoch=epoch,
                line=line,
                cells=tuple(sorted(cells)),
                boost=boost,
                builder_id=self.builder_id,
                total_messages=totals[node_id],
            )
            size = msg.wire_size(params)
            ctx.network.send(self.builder_id, node_id, msg, size)
            self.last_seed_messages += 1
            self.last_seed_bytes += size
        ctx.trace(
            "seed_slot",
            slot=slot,
            node=self.builder_id,
            messages=self.last_seed_messages,
            bytes=self.last_seed_bytes,
        )

    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        """Builders ignore peer traffic; they only seed."""
