"""Feedback-adaptive builder seeding (the paper's future-work note).

Section 11: "the design could support automatic adaptation mechanisms
that select or update parameters based on, for example, observed
networking and fault ratio conditions." This module implements that
loop for the builder's redundancy parameter ``r``:

- after each slot the builder observes the fraction of nodes that
  completed sampling by the deadline (in practice it would read
  attestations; the experiment layer feeds it the measured value);
- if completion dips below a low-water mark, ``r`` doubles (bounded);
  if it stays above a high-water mark for several slots, ``r`` decays
  by one, trimming egress.

This preserves the 4-second guarantee under deteriorating conditions
while not paying 8x egress in calm ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.seeding import RedundantSeeding, SeedingPolicy

__all__ = ["AdaptiveRedundancyController"]


@dataclass
class AdaptiveRedundancyController:
    """Chooses the builder's redundancy ``r`` from observed outcomes."""

    r: int = 4
    min_r: int = 1
    max_r: int = 16
    low_water: float = 0.97
    high_water: float = 0.995
    calm_slots_before_decay: int = 3
    _calm_streak: int = 0
    history: list[tuple] = field(default_factory=list)

    def policy(self) -> SeedingPolicy:
        """The seeding policy to use for the next slot."""
        return RedundantSeeding(self.r)

    def observe(self, completion_fraction: float) -> int:
        """Feed back one slot's deadline-completion fraction.

        Returns the redundancy chosen for the next slot.
        """
        if not 0.0 <= completion_fraction <= 1.0:
            raise ValueError("completion fraction must be in [0, 1]")
        self.history.append((self.r, completion_fraction))
        if completion_fraction < self.low_water:
            self.r = min(self.max_r, self.r * 2)
            self._calm_streak = 0
        elif completion_fraction >= self.high_water:
            self._calm_streak += 1
            if self._calm_streak >= self.calm_slots_before_decay and self.r > self.min_r:
                self.r -= 1
                self._calm_streak = 0
        else:
            self._calm_streak = 0
        return self.r
