"""PANDAS wire messages and their size accounting.

All traffic is one-way UDP datagrams (Section 4.3): no connections, no
keep-alives, no negative acknowledgments. Blob data is public and sent
unencrypted; seed messages carry the proposer's signature binding the
builder identity so nodes accept blob data before the block arrives.

Sizes are computed from the protocol parameters so that bandwidth
results (Figures 10, 13c, 14c and claim C2) reflect the paper's
numbers: each cell costs 512 + 48 bytes; identifiers and map entries
cost a few bytes each; every datagram pays a fixed overhead for
headers plus the signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import PandasParams

__all__ = [
    "SeedMessage",
    "CellRequest",
    "CellResponse",
    "BoostMap",
    "PRIORITY_SAMPLING",
    "PRIORITY_RETRIEVAL",
]

CELL_ID_BYTES = 4
NODE_REF_BYTES = 8
BOOST_ENTRY_BYTES = NODE_REF_BYTES + 2 * CELL_ID_BYTES  # node + cell range

# A boost map entry: cells seeded to one peer, encoded as a range.
BoostMap = dict[int, tuple[int, ...]]  # peer node id -> seeded cell ids


@dataclass(frozen=True)
class SeedMessage:
    """One parcel of seed cells for one line, builder -> node.

    ``boost`` carries the consolidation-boost entries for the same
    line: which cells of this line were seeded to which other peers
    (Section 6.2, Figure 7).
    """

    slot: int
    epoch: int
    line: int
    cells: tuple[int, ...]
    boost: tuple[tuple[int, tuple[int, ...]], ...] = ()
    builder_id: int = 0
    # how many seed datagrams the builder addresses to this node in
    # this slot; lets the node detect seed completion (consolidation
    # then starts on real deficits instead of racing in-flight parcels;
    # the 400 ms timer covers the case where some of them are lost)
    total_messages: int = 1

    def wire_size(self, params: PandasParams) -> int:
        # Boost entries are (peer, contiguous-parcel range): 16 B each.
        return (
            params.message_overhead_bytes
            + len(self.cells) * params.cell_bytes
            + len(self.boost) * BOOST_ENTRY_BYTES
        )


# CellRequest traffic classes. Sampling/consolidation queries are the
# protocol's own traffic — the consensus timebound depends on them and
# they are never shed by admission control. Retrieval-class requests
# (layer-2 clients reading blob data back) are best-effort and shed
# first under overload.
PRIORITY_SAMPLING = 0
PRIORITY_RETRIEVAL = 1


@dataclass(frozen=True)
class CellRequest:
    """QUERYCELLS: ask a peer for specific cells (consolidation/sampling).

    ``priority`` is the traffic class (``PRIORITY_SAMPLING`` or
    ``PRIORITY_RETRIEVAL``); it rides in existing header bits, so it
    does not change the wire size.
    """

    slot: int
    epoch: int
    cells: frozenset[int]
    priority: int = PRIORITY_SAMPLING

    def wire_size(self, params: PandasParams) -> int:
        return params.message_overhead_bytes + len(self.cells) * CELL_ID_BYTES


@dataclass(frozen=True)
class CellResponse:
    """Reply carrying the requested cells (sent only when all are held).

    ``invalid`` is a *modeling* flag, not wire data: the simulation
    tracks cell identity rather than bytes, so a Byzantine responder
    marks here which of its carried cells would fail KZG verification
    against the slot commitment. Honest code never sets it; receiving
    nodes must verify every cell on ingest and drop the marked ones.
    """

    slot: int
    epoch: int
    cells: tuple[int, ...]
    invalid: frozenset[int] = frozenset()

    def wire_size(self, params: PandasParams) -> int:
        return params.message_overhead_bytes + len(self.cells) * params.cell_bytes
