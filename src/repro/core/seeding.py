"""Builder seeding policies (Section 6.1, Figure 6).

For every line (row or column) ``f`` the builder decides which cells
to push into the network and with what redundancy, splitting them into
parcels of *adjacent* cells dispatched to the nodes assigned to ``f``
in its view (``V_b(f)``).

Every cell belongs to one row and one column; to match the paper's
egress totals (one copy of the quadrant / extended blob per
redundancy unit: 35, 140, and 1,120 MB before overheads), each cell is
*owned* by exactly one of its two lines for seeding purposes — row if
``(r + c)`` is even, column otherwise — and distributed only through
that line's custodians. Consolidation stitches lines back together
from both populations.

- **minimal** — one copy of the original quadrant (rows < R and
  columns < C), the minimal globally reconstructable set (Figure 3
  left); a single lost message breaks availability. 35 MB full-scale.
- **single** — one copy of every extended cell; the 2D code tolerates
  losing up to half of each line. 140 MB.
- **redundant(r)** — the single policy with every parcel sent to
  ``r - 1`` extra custodians of the owning line (default r=8).
  1,120 MB.

The policy also yields the per-line consolidation-boost map CB: which
cells of ``f`` were seeded to which custodians of ``f``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.params import PandasParams

__all__ = [
    "SeedParcel",
    "SeedingPolicy",
    "MinimalSeeding",
    "SingleSeeding",
    "RedundantSeeding",
    "policy_by_name",
    "boost_map_for_line",
    "owned_cells_of_line",
]


@dataclass(frozen=True)
class SeedParcel:
    """A contiguous run of one line's cells destined for one node."""

    node_id: int
    line: int
    cells: tuple[int, ...]


def owned_cells_of_line(line: int, params: PandasParams) -> list[int]:
    """Cells distributed through ``line``'s custodians (parity rule)."""
    ext_rows, ext_cols = params.ext_rows, params.ext_cols
    if line < ext_rows:
        row = line
        base = row * ext_cols
        start = 0 if row % 2 == 0 else 1
        return [base + col for col in range(start, ext_cols, 2)]
    col = line - ext_rows
    start = 1 if col % 2 == 0 else 0  # complement of the row rule
    return [row * ext_cols + col for row in range(start, ext_rows, 2)]


def _split_adjacent(cells: Sequence[int], parts: int) -> list[tuple[int, ...]]:
    """Split ``cells`` into ``parts`` contiguous runs of near-equal size."""
    if parts < 1:
        raise ValueError("parts must be positive")
    parts = min(parts, len(cells))
    base, extra = divmod(len(cells), parts)
    runs: list[tuple[int, ...]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        runs.append(tuple(cells[start : start + size]))
        start += size
    return runs


class SeedingPolicy:
    """Base class: selects and scatters one line's owned cells."""

    name = "abstract"
    copies = 1

    def cells_for_line(self, line: int, params: PandasParams) -> list[int]:
        """Which of the line's owned cells this policy seeds."""
        return owned_cells_of_line(line, params)

    def line_parcels(
        self,
        line: int,
        params: PandasParams,
        custodians: Sequence[int],
        rng: random.Random,
    ) -> list[SeedParcel]:
        """Parcel the selected cells over ``custodians`` with redundancy."""
        if not custodians:
            return []
        cells = self.cells_for_line(line, params)
        if not cells:
            return []
        runs = _split_adjacent(cells, len(custodians))
        primaries = rng.sample(custodians, len(runs))
        parcels: list[SeedParcel] = []
        for run, primary in zip(runs, primaries, strict=True):
            parcels.append(SeedParcel(primary, line, run))
            if self.copies > 1 and len(custodians) > 1:
                others = [n for n in custodians if n != primary]
                for replica in rng.sample(others, min(self.copies - 1, len(others))):
                    parcels.append(SeedParcel(replica, line, run))
        return parcels


class MinimalSeeding(SeedingPolicy):
    """Single copy of the original quadrant (35 MB full-scale)."""

    name = "minimal"
    copies = 1

    def cells_for_line(self, line: int, params: PandasParams) -> list[int]:
        ext_cols = params.ext_cols
        base_rows, base_cols = params.base_rows, params.base_cols
        quadrant = []
        for cid in owned_cells_of_line(line, params):
            row, col = divmod(cid, ext_cols)
            if row < base_rows and col < base_cols:
                quadrant.append(cid)
        return quadrant


class SingleSeeding(SeedingPolicy):
    """Single copy of every extended cell (140 MB full-scale)."""

    name = "single"
    copies = 1


class RedundantSeeding(SeedingPolicy):
    """Every parcel sent to ``r`` custodians in total (1,120 MB at r=8)."""

    def __init__(self, r: int = 8) -> None:
        if r < 1:
            raise ValueError("redundancy must be at least 1")
        self.r = r
        self.copies = r
        self.name = f"redundant(r={r})"


class WithholdingSeeding(SeedingPolicy):
    """A data-withholding attacker (Section 3, Figure 3 right).

    Wraps another policy but releases only the first ``release``
    fraction of each line's owned cells. Below 0.5 the grid cannot be
    reconstructed from seeded data, and sampling must systematically
    detect unavailability: with 73 samples the probability that every
    committee member misses every withheld cell is < 1e-9.
    """

    def __init__(self, inner: SeedingPolicy, release: float) -> None:
        if not 0.0 <= release <= 1.0:
            raise ValueError(f"release fraction must be in [0, 1], got {release}")
        self.inner = inner
        self.release = release
        self.copies = inner.copies
        self.name = f"withholding({inner.name}, release={release:.2f})"

    def cells_for_line(self, line: int, params: PandasParams) -> list[int]:
        cells = self.inner.cells_for_line(line, params)
        return cells[: int(len(cells) * self.release)]


def policy_by_name(name: str, r: int = 8) -> SeedingPolicy:
    """Factory used by experiment configs and CLI examples."""
    if name == "minimal":
        return MinimalSeeding()
    if name == "single":
        return SingleSeeding()
    if name.startswith("redundant"):
        return RedundantSeeding(r)
    raise ValueError(f"unknown seeding policy {name!r}")


def boost_map_for_line(parcels: Sequence[SeedParcel]) -> dict[int, tuple[int, ...]]:
    """CB(f): node -> cells of this line seeded to it (merged parcels)."""
    merged: dict[int, list[int]] = {}
    for parcel in parcels:
        merged.setdefault(parcel.node_id, []).extend(parcel.cells)
    return {node: tuple(sorted(set(cells))) for node, cells in merged.items()}
