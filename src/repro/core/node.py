"""The PANDAS node process (Sections 6.2-6.3).

A node custodies its assigned rows/columns, consolidates the cells it
was not directly seeded, samples 73 random cells, and serves incoming
queries. All behaviour is reactive:

- a **seed parcel** from the builder stores cells, merges the
  consolidation-boost entries, and starts fetching (consolidation +
  sampling share one adaptive fetcher);
- a **cell request** is answered immediately with the requested cells
  already held; the remainder is buffered and answered in one deferred
  reply once all of it is available (no NACK; if the cells never
  arrive, the requester silently times out and retries elsewhere).
  A request for a slot whose seed has not arrived arms the 400 ms
  fallback timer, after which fetching starts without seed data;
- a **cell response** feeds the fetcher and may complete
  consolidation/sampling, which is recorded in the metrics relative
  to the slot start.

Because transport is one-way UDP with no authentication beyond the
proposer's seed signature, every inbound message crosses a validation
layer before touching protocol state (the Byzantine defenses of the
threat model):

- seed parcels must come from the slot's builder;
- requests and responses pass a per-peer token bucket;
- every ingested cell is verified against the slot's KZG commitment
  (the verify cost is charged to this node's clock before the message
  is processed) and corrupt cells are dropped, never stored;
- responses must match an outstanding query — right peer, right slot,
  right cells — or they are discarded as unsolicited;
- all of the above feeds a per-peer :class:`ReputationLedger` whose
  score steers Algorithm 1's peer scoring and quarantines the worst
  offenders for the rest of the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from functools import partial

from repro.core.context import ProtocolContext
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher
from repro.core.messages import (
    PRIORITY_RETRIEVAL,
    CellRequest,
    CellResponse,
    SeedMessage,
)
from repro.core.reputation import ReputationLedger, TokenBucket
from repro.net.transport import Datagram
from repro.sim.engine import Event

__all__ = ["PandasNode"]


@dataclass(slots=True)
class _PendingRequest:
    """A buffered query remainder, answered once fully servable.

    ``priority`` is the request's traffic class; under a
    ``pending_request_limit`` retrieval-class records are shed first.
    ``shed``/``done`` records stay in the per-cell waiter lists (lazy
    removal — evicting them eagerly would cost O(cells) per shed) and
    are skipped when their cells arrive.
    """

    src: int
    cells: frozenset[int]
    missing: int
    priority: int = 0
    shed: bool = False
    done: bool = False


@dataclass(slots=True)
class _SlotState:
    """Everything a node keeps for one slot."""

    cells: SlotCellState
    fetcher: AdaptiveFetcher
    # the per-cell stored hook for this slot; attached to
    # SlotCellState.on_store only while waiting_by_cell is non-empty so
    # bulk ingest pays nothing when no query is buffered (the common case)
    store_sink: Callable[[int], None]
    # cell id -> buffered requests still waiting on it; each stored
    # cell resolves its waiters in O(waiters), never a full rescan
    waiting_by_cell: dict[int, list[_PendingRequest]] = field(default_factory=dict)
    # live (not done, not shed) buffered records — the I5-bounded depth
    pending_count: int = 0
    # live retrieval-class records in admission order; the eviction
    # queue when a sampling-class request needs room under the limit
    pending_retrieval: list[_PendingRequest] = field(default_factory=list)
    # peer -> cells we asked it for this slot; a CellResponse is only
    # accepted when its source and cells match an entry here
    outstanding: dict[int, set[int]] = field(default_factory=dict)
    # fires at the sampling deadline: buffered request remainders for
    # this slot can no longer be answered usefully, so they are dropped
    # instead of accumulating for the rest of the run
    expiry_timer: Event | None = None
    seed_received: bool = False
    seed_messages_seen: int = 0
    seed_messages_expected: int | None = None
    fallback_timer: Event | None = None
    consolidation_marked: bool = False
    sampling_marked: bool = False



class PandasNode:
    """One full node participating in custody, consolidation, sampling."""

    def __init__(
        self,
        ctx: ProtocolContext,
        node_id: int,
        view: set[int] | None = None,
    ) -> None:
        self.ctx = ctx
        self.node_id = node_id
        self.view = view  # None means a complete, consistent view
        self._slots: dict[int, _SlotState] = {}
        # Byzantine defenses (module docstring): reputation, per-peer
        # inbound rate limiting, and slots already retired by drop_slot
        # (late replies for those are stale, not hostile).
        params = ctx.params
        self.reputation = ReputationLedger(
            decay=params.reputation_decay,
            quarantine_threshold=params.quarantine_threshold,
        )
        self._buckets: dict[int, TokenBucket] = {}
        # aggregate admission bucket over *all* inbound retrieval-class
        # requests (the load-shedding priority lane: sampling traffic
        # never passes through it); created lazily iff configured
        self._retrieval_bucket: TokenBucket | None = None
        self._retired: set[int] = set()
        # bumped on crash so delayed verify callbacks from a previous
        # incarnation never touch post-restart state
        self._generation = 0

    # ------------------------------------------------------------------
    # slot state
    # ------------------------------------------------------------------
    def _slot_state(self, slot: int) -> _SlotState:
        state = self._slots.get(slot)
        if state is None:
            state = self._create_slot_state(slot)
            self._slots[slot] = state
        return state

    def _create_slot_state(self, slot: int) -> _SlotState:
        ctx = self.ctx
        params = ctx.params
        epoch = ctx.epoch_of(slot)
        custody = ctx.assignment.custody(self.node_id, epoch)
        sample_rng = ctx.rngs.stream("samples", self.node_id, slot)
        samples = sample_rng.sample(range(params.total_cells), params.samples)
        # the stored-cell sink starts detached: it only matters while a
        # buffered query is waiting, and attaching it lazily keeps the
        # bulk ingest path free of per-cell callback overhead
        store_sink = partial(self._on_cell_stored, slot)
        cells = SlotCellState(params, custody, samples, on_store=None)

        index = ctx.index_for_epoch(epoch)
        view = self.view

        if view is None:
            def line_custodians(line: int):
                return index.custodians(line, None)
        else:
            # the view-filtered custodian list of a line is static for
            # the whole epoch; memoize it instead of re-filtering on
            # every fetch round
            custodian_cache: dict[int, list[int]] = {}

            def line_custodians(line: int):
                got = custodian_cache.get(line)
                if got is None:
                    got = custodian_cache[line] = index.custodians(line, view)
                return got

        # epoch rollover: decay reputation counters, end quarantines
        self.reputation.observe_epoch(epoch)
        fetcher = AdaptiveFetcher(
            sim=ctx.sim,
            state=cells,
            schedule=params.fetch_schedule,
            line_custodians=line_custodians,
            send_query=lambda peer, cids: self._send_query(slot, epoch, peer, cids),
            rng=ctx.rngs.stream("fetch", self.node_id, slot),
            cb_boost=params.cb_boost,
            self_id=self.node_id,
            peer_weight=self.reputation.weight,
            exclude_peer=self.reputation.quarantined,
            on_peer_timeout=self._on_peer_timeout,
            retry_unresponsive=params.fetch_retry_unresponsive,
            retry_policy=params.fetch_retry,
            deadline_at=(
                ctx.slot_start(slot) + params.deadline
                if params.fetch_retry is not None
                else None
            ),
            tracer=ctx.tracer,
            slot=slot,
            observe_latency=(
                ctx.telemetry.on_round_latency if ctx.telemetry is not None else None
            ),
        )
        return _SlotState(cells=cells, fetcher=fetcher, store_sink=store_sink)

    # ------------------------------------------------------------------
    # observability (repro.obs) — all no-ops without a tracer
    # ------------------------------------------------------------------
    def _trace(self, kind: str, slot: int = -1, **data) -> None:
        self.ctx.trace(kind, slot=slot, node=self.node_id, **data)

    def _defense(self, kind: str, amount: float = 1.0, slot: int = -1) -> None:
        """Count one defense action in the metrics and the trace."""
        self.ctx.metrics.record_defense(kind, amount)
        self._trace("defense", slot=slot, defense=kind, amount=amount)

    # ------------------------------------------------------------------
    # message dispatch (validation layer)
    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        ctx = self.ctx
        if isinstance(payload, SeedMessage):
            # the proposer's signature binds the builder identity
            # (Section 6.1): a seed parcel from anyone else is forged
            if ctx.builder_id is not None and dgram.src != ctx.builder_id:
                self.reputation.record_unsolicited(dgram.src)
                self._defense("seed_forged", slot=payload.slot)
                return
            self._dispatch_verified(dgram.src, payload, len(payload.cells), self._on_seed)
        elif isinstance(payload, CellRequest):
            if not self._admit(dgram.src):
                self._defense("rate_limited", slot=payload.slot)
                return
            if (
                payload.priority == PRIORITY_RETRIEVAL
                and not self._admit_retrieval()
            ):
                self._shed("retrieval_admission", slot=payload.slot)
                return
            self._on_request(dgram.src, payload)
        elif isinstance(payload, CellResponse):
            if not self._admit(dgram.src):
                self._defense("rate_limited", slot=payload.slot)
                return
            self._dispatch_verified(dgram.src, payload, len(payload.cells), self._on_response)

    def _admit(self, src: int) -> bool:
        """Per-peer token bucket over inbound request/response traffic."""
        bucket = self._buckets.get(src)
        if bucket is None:
            params = self.ctx.params
            bucket = TokenBucket(params.inbound_msg_rate, params.inbound_msg_burst)
            self._buckets[src] = bucket
        return bucket.allow(self.ctx.sim.now)

    def _admit_retrieval(self) -> bool:
        """Aggregate token bucket over retrieval-class requests.

        Unconfigured (``retrieval_admit_rate is None``) admits
        everything — the legacy behaviour. Sampling/consolidation
        requests never consult this bucket.
        """
        rate = self.ctx.params.retrieval_admit_rate
        if rate is None:
            return True
        bucket = self._retrieval_bucket
        if bucket is None:
            bucket = TokenBucket(rate, self.ctx.params.retrieval_admit_burst)
            self._retrieval_bucket = bucket
        return bucket.allow(self.ctx.sim.now)

    def _shed(self, kind: str, amount: float = 1.0, slot: int = -1) -> None:
        """Count one load-shedding action in the metrics and the trace."""
        self.ctx.metrics.record_shed(kind, amount)
        self._trace("load_shed", slot=slot, shed=kind, amount=amount)

    def _dispatch_verified(self, src: int, msg, cell_count: int, handler) -> None:
        """Charge KZG verification time, then deliver to ``handler``.

        Every carried cell is checked against the slot commitment before
        any of the message is acted on; the check costs
        ``cell_verify_seconds`` of *this node's* clock per cell, so a
        node being fed garbage pays in latency as well as bandwidth.
        The delayed callback is generation-guarded: a crash between
        arrival and verification discards the message.
        """
        delay = self.ctx.params.cell_verify_seconds * cell_count
        if delay <= 0.0:
            handler(src, msg)
            return
        self.ctx.sim.call_after(
            delay, self._deliver_verified, self._generation, handler, src, msg
        )

    def _deliver_verified(self, generation: int, handler, src: int, msg) -> None:
        if self._generation == generation:
            handler(src, msg)

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def _on_seed(self, _src: int, msg: SeedMessage) -> None:
        slot = msg.slot
        state = self._slot_state(slot)
        if msg.cells and not state.seed_received:
            state.seed_received = True
            at = self.ctx.since_slot_start(slot)
            self.ctx.metrics.mark_seeding(slot, self.node_id, at)
            self._trace("seed_recv", slot=slot, at=at)
            self._trace("phase", slot=slot, phase="seeding", at=at)
        state.seed_messages_seen += 1
        state.seed_messages_expected = msg.total_messages
        for peer, cells in msg.boost:
            if peer == self.node_id:
                # the builder's own-parcel declarations: these cells are
                # already inbound through this burst, so the fetcher
                # must never request them from peers
                state.fetcher.add_inbound(cells)
            else:
                state.fetcher.add_boost(peer, cells)
        if msg.cells:
            state.fetcher.add_inbound(msg.cells)
            new, reconstructed = state.cells.add_cells(msg.cells)
            self._trace(
                "cells_ingest", slot=slot, source="seed",
                count=len(msg.cells), new=new, reconstructed=reconstructed,
            )
            state.fetcher.note_external_cells(reconstructed)
        if state.seed_messages_seen >= msg.total_messages:
            # full seed set received: start consolidation + sampling on
            # the real deficits (Figure 5's trigger)
            if state.fallback_timer is not None:
                state.fallback_timer.cancel()
                state.fallback_timer = None
            state.fetcher.start()
        elif not state.fetcher.started:
            # cover loss of the remaining seed datagrams: re-arm the
            # consolidation timer on every arrival so it fires only
            # after the seed stream has gone quiet
            if state.fallback_timer is not None:
                state.fallback_timer.cancel()
            state.fallback_timer = self.ctx.sim.call_after(
                self.ctx.params.consolidation_timer,
                lambda: self._fallback_start(slot),
            )
        self._after_cells_changed(slot, state)

    # ------------------------------------------------------------------
    # serving queries
    # ------------------------------------------------------------------
    def _on_request(self, src: int, msg: CellRequest) -> None:
        slot = msg.slot
        state = self._slot_state(slot)
        if not state.seed_received and not state.fetcher.started and state.fallback_timer is None:
            # a request for a slot we have no seed for: arm the 400 ms
            # fallback, then consolidate/sample without seed data
            state.fallback_timer = self.ctx.sim.call_after(
                self.ctx.params.consolidation_timer,
                lambda: self._fallback_start(slot),
            )
        held = msg.cells & state.cells.have
        if held:
            self._respond(slot, msg.epoch, src, tuple(sorted(held)))
        remainder = msg.cells - held
        if remainder:
            # buffer the remainder for a deferred reply — but only
            # until the sampling deadline: after it, the requester has
            # already failed or succeeded for this slot, so the buffer
            # would be dead weight until the end of the run
            params = self.ctx.params
            elapsed = self.ctx.since_slot_start(slot)
            if elapsed >= params.deadline:
                self._defense("pending_expired", len(remainder), slot=slot)
                return
            limit = params.pending_request_limit
            if limit is not None and state.pending_count >= limit:
                if not self._make_pending_room(state, msg.priority, slot):
                    return
            if state.expiry_timer is None:
                state.expiry_timer = self.ctx.sim.call_after(
                    params.deadline - elapsed, lambda: self._expire_pending(slot)
                )
            record = _PendingRequest(src, remainder, len(remainder), msg.priority)
            state.pending_count += 1
            if limit is not None:
                # gauge only under overload control so legacy runs keep
                # their exact historical metrics snapshot
                self.ctx.metrics.observe_queue_depth(
                    "pending_requests", state.pending_count
                )
            if msg.priority == PRIORITY_RETRIEVAL:
                state.pending_retrieval.append(record)
            for cid in remainder:
                state.waiting_by_cell.setdefault(cid, []).append(record)
            # waiters exist now: route stored cells through the sink
            state.cells.on_store = state.store_sink

    def _make_pending_room(
        self, state: _SlotState, priority: int, slot: int
    ) -> bool:
        """Enforce ``pending_request_limit``; returns True if admitted.

        Retrieval-class load is shed first: an incoming retrieval
        remainder at a full buffer is dropped outright, while an
        incoming sampling-class remainder evicts the oldest live
        retrieval record to make room. Only when no retrieval record
        is left does sampling traffic itself get shed — client load
        can fill the buffer, but it can never crowd out the sampling
        traffic the consensus timebound depends on.
        """
        if priority != PRIORITY_RETRIEVAL:
            queue = state.pending_retrieval
            while queue:
                victim = queue.pop(0)
                if victim.shed or victim.done:
                    continue  # lazily discarded tombstone
                victim.shed = True
                state.pending_count -= 1
                self._shed("pending_evicted", slot=slot)
                return True
        self._shed(
            "pending_retrieval" if priority == PRIORITY_RETRIEVAL else "pending_sampling",
            slot=slot,
        )
        return False

    def _expire_pending(self, slot: int) -> None:
        """Drop buffered request remainders at the sampling deadline."""
        state = self._slots.get(slot)
        if state is None:
            return
        state.expiry_timer = None
        if not state.waiting_by_cell:
            return
        expired = {
            id(rec): rec
            for recs in state.waiting_by_cell.values()
            for rec in recs
            if not rec.shed and not rec.done
        }
        if expired:
            self._defense("pending_expired", len(expired), slot=slot)
        state.waiting_by_cell.clear()
        state.pending_count = 0
        state.pending_retrieval.clear()
        state.cells.on_store = None

    def _fallback_start(self, slot: int) -> None:
        state = self._slot_state(slot)
        state.fallback_timer = None
        state.fetcher.start()

    def _respond(self, slot: int, epoch: int, dst: int, cells: tuple[int, ...]) -> None:
        response = CellResponse(slot=slot, epoch=epoch, cells=cells)
        self.ctx.network.send(
            self.node_id, dst, response, response.wire_size(self.ctx.params)
        )

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def _on_response(self, src: int, msg: CellResponse) -> None:
        """Validate, verify and ingest one CellResponse.

        The acceptance chain (each step feeds the reputation ledger):

        1. the slot must have live state *and* the source must hold an
           outstanding query for it — anything else is unsolicited and
           never creates slot state;
        2. cells we never asked this peer for are discarded;
        3. cells failing KZG verification (the ``invalid`` modeling
           flag) are discarded — corrupt cells are never stored;
        4. what survives is credited to the peer and fed to the fetcher.
        """
        slot = msg.slot
        state = self._slots.get(slot)
        if state is None:
            if slot in self._retired:
                # deferred reply landing after drop_slot: stale, not hostile
                self._defense("resp_stale", slot=slot)
            else:
                self.reputation.record_unsolicited(src)
                self._defense("resp_unsolicited", slot=slot)
            return
        outstanding = state.outstanding.get(src)
        if not outstanding:
            self.reputation.record_unsolicited(src)
            self._defense("resp_unsolicited", slot=slot)
            return
        # the peer *answered*: whatever else is wrong with the payload,
        # it must not additionally be reported as timed out
        state.fetcher.note_reply(src)
        requested = [cid for cid in msg.cells if cid in outstanding]
        unrequested = len(msg.cells) - len(requested)
        if unrequested:
            self.reputation.record_unrequested(src, unrequested)
            self._defense("cells_unrequested", unrequested, slot=slot)
        invalid = msg.invalid
        good = tuple(cid for cid in requested if cid not in invalid)
        bad = len(requested) - len(good)
        if bad:
            self.reputation.record_invalid(src, bad)
            self._defense("cells_invalid", bad, slot=slot)
        if not good:
            return
        self.reputation.record_valid(src, len(good))
        new, reconstructed = state.fetcher.on_response(src, good)
        self._trace(
            "cells_ingest", slot=slot, source="response", peer=src,
            count=len(good), new=new, reconstructed=reconstructed,
        )
        self._after_cells_changed(slot, state)

    # ------------------------------------------------------------------
    # outgoing queries
    # ------------------------------------------------------------------
    def _send_query(self, slot: int, epoch: int, peer: int, cells: frozenset[int]) -> None:
        state = self._slots.get(slot)
        if state is not None:
            state.outstanding.setdefault(peer, set()).update(cells)
        request = CellRequest(slot=slot, epoch=epoch, cells=cells)
        self.ctx.network.send(
            self.node_id, peer, request, request.wire_size(self.ctx.params)
        )

    def _on_peer_timeout(self, peer: int) -> None:
        self.reputation.record_timeout(peer)
        self._defense("peer_timeout")

    # ------------------------------------------------------------------
    # bookkeeping after any cell arrival
    # ------------------------------------------------------------------
    def _on_cell_stored(self, slot: int, cid: int) -> None:
        """Resolve buffered queries waiting on ``cid`` (deferred replies)."""
        state = self._slots.get(slot)
        if state is None:
            return
        waiters = state.waiting_by_cell.pop(cid, None)
        if waiters:
            epoch = self._epoch(slot)
            for record in waiters:
                if record.shed:
                    continue  # evicted under the pending limit
                record.missing -= 1
                if record.missing == 0:
                    record.done = True
                    state.pending_count -= 1
                    self._respond(slot, epoch, record.src, tuple(sorted(record.cells)))
        if not state.waiting_by_cell:
            # nothing is waiting any more: detach the per-cell sink so
            # subsequent bulk ingest skips the callback entirely
            state.cells.on_store = None

    def _after_cells_changed(self, slot: int, state: _SlotState) -> None:
        now_rel = self.ctx.since_slot_start(slot)
        if not state.consolidation_marked and state.cells.consolidation_complete:
            state.consolidation_marked = True
            self.ctx.metrics.mark_consolidation(slot, self.node_id, now_rel)
            self._trace("phase", slot=slot, phase="consolidation", at=now_rel)
        if not state.sampling_marked and state.cells.sampling_complete:
            state.sampling_marked = True
            self.ctx.metrics.mark_sampling(slot, self.node_id, now_rel)
            self._trace("phase", slot=slot, phase="sampling", at=now_rel)

    def _epoch(self, slot: int) -> int:
        return self.ctx.epoch_of(slot)

    # ------------------------------------------------------------------
    # crash / recovery (fault injection)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: lose all volatile per-slot state.

        Every pending timer is cancelled so a crashed node emits
        nothing; co-custodians waiting on its replies time out and
        retry elsewhere, exactly the silent-failure contract of the
        UDP transport.
        """
        for state in self._slots.values():
            if state.fallback_timer is not None:
                state.fallback_timer.cancel()
                state.fallback_timer = None
            if state.expiry_timer is not None:
                state.expiry_timer.cancel()
                state.expiry_timer = None
            state.fetcher.stop()
        self._slots.clear()
        # volatile defense state is lost with the process: in-flight
        # verify callbacks are invalidated, reputation and rate-limit
        # memory start fresh
        self._generation += 1
        params = self.ctx.params
        self.reputation = ReputationLedger(
            decay=params.reputation_decay,
            quarantine_threshold=params.quarantine_threshold,
        )
        self._buckets.clear()

    def restart(self, slot: int) -> None:
        """Recover with empty storage and immediately re-fetch ``slot``.

        A restarted node cannot wait for seed parcels (the builder's
        burst is over); it re-derives fresh samples and starts the
        adaptive fetcher on its full custody deficits, the same path a
        seedless node takes after the 400 ms fallback timer.
        """
        state = self._slot_state(slot)
        state.fetcher.start()

    # ------------------------------------------------------------------
    # introspection for tests and experiments
    # ------------------------------------------------------------------
    def slot_cells(self, slot: int) -> SlotCellState | None:
        state = self._slots.get(slot)
        return state.cells if state is not None else None

    def slot_fetcher(self, slot: int) -> AdaptiveFetcher | None:
        state = self._slots.get(slot)
        return state.fetcher if state is not None else None

    def pending_depth(self, slot: int | None = None) -> int:
        """Live buffered-remainder count (one slot, or the node total).

        The node half of the I5 "no unbounded backlog" invariant: with
        ``pending_request_limit`` configured this may never exceed the
        limit per slot.
        """
        if slot is not None:
            state = self._slots.get(slot)
            return 0 if state is None else state.pending_count
        return sum(state.pending_count for state in self._slots.values())

    def drop_slot(self, slot: int) -> None:
        """Free per-slot state (old blob data is discarded after expiry).

        Flushes the fetcher's per-round telemetry into the metrics
        recorder first — reply/duplicate counters keep accumulating
        until the end of the slot (Table 1's in/after-round split).
        """
        state = self._slots.pop(slot, None)
        self._retired.add(slot)
        if state is not None:
            for stats in state.fetcher.rounds:
                self.ctx.metrics.record_round(
                    slot,
                    self.node_id,
                    stats.index,
                    messages_sent=stats.messages_sent,
                    cells_requested=stats.cells_requested,
                    replies_in_round=stats.replies_in_round,
                    replies_after_round=stats.replies_after_round,
                    cells_in_round=stats.cells_in_round,
                    cells_after_round=stats.cells_after_round,
                    duplicates=stats.duplicates,
                    reconstructed=stats.reconstructed,
                )
            state.fetcher.stop()
            if state.fallback_timer is not None:
                state.fallback_timer.cancel()
            if state.expiry_timer is not None:
                state.expiry_timer.cancel()
