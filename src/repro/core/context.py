"""Shared per-run protocol context.

Bundles the simulation engine, network, parameters, assignment
function, metrics sink and RNG registry that every PANDAS participant
needs, plus slot bookkeeping (start times, epoch mapping) maintained
by the experiment driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.assignment import AssignmentIndex, CellAssignment
from repro.net.transport import Network
from repro.params import PandasParams
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry

__all__ = ["ProtocolContext"]


@dataclass
class ProtocolContext:
    """Everything shared by nodes and builders in one run."""

    sim: Simulator
    network: Network
    params: PandasParams
    assignment: CellAssignment
    metrics: MetricsRecorder
    rngs: RngRegistry
    index_for_epoch: Callable[[int], AssignmentIndex]
    slot_starts: Dict[int, float] = field(default_factory=dict)
    # The slot builder's address, when globally known (the proposer's
    # signature binds it — Section 6.1). Nodes reject seed parcels from
    # any other source; ``None`` disables the check (unit harnesses).
    builder_id: Optional[int] = None

    def epoch_of(self, slot: int) -> int:
        return slot // self.params.slots_per_epoch

    def begin_slot(self, slot: int) -> None:
        """Record the slot's start time (call at proposer selection)."""
        self.slot_starts.setdefault(slot, self.sim.now)

    def slot_start(self, slot: int) -> float:
        return self.slot_starts.get(slot, 0.0)

    def since_slot_start(self, slot: int) -> float:
        return self.sim.now - self.slot_start(slot)
