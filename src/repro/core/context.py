"""Shared per-run protocol context.

Bundles the simulation engine, network, parameters, assignment
function, metrics sink and RNG registry that every PANDAS participant
needs, plus slot bookkeeping (start times, epoch mapping) maintained
by the experiment driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.assignment import AssignmentIndex, CellAssignment
from repro.net.transport import Network
from repro.obs.events import TraceRecorder
from repro.obs.telemetry import Telemetry
from repro.params import PandasParams
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry

__all__ = ["ProtocolContext"]


@dataclass
class ProtocolContext:
    """Everything shared by nodes and builders in one run."""

    sim: Simulator
    network: Network
    params: PandasParams
    assignment: CellAssignment
    metrics: MetricsRecorder
    rngs: RngRegistry
    index_for_epoch: Callable[[int], AssignmentIndex]
    slot_starts: dict[int, float] = field(default_factory=dict)
    # The slot builder's address, when globally known (the proposer's
    # signature binds it — Section 6.1). Nodes reject seed parcels from
    # any other source; ``None`` disables the check (unit harnesses).
    builder_id: int | None = None
    # Structured event tracing (repro.obs). ``None`` — the default —
    # disables tracing with zero per-event overhead; participants guard
    # every emission on it. A recorder here is pure observation and
    # never changes simulation behavior.
    tracer: TraceRecorder | None = None
    # Dimensional run-health telemetry (repro.obs.telemetry). Same
    # contract as the tracer: pure observation, behavior-neutral, and
    # ``None`` by default so instrumented call sites cost one attribute
    # read when telemetry is off.
    telemetry: Telemetry | None = None

    def trace(self, kind: str, *, slot: int = -1, node: int = -1, **data) -> None:
        """Emit one trace event at the current simulated time (no-op
        when tracing is off or ``kind`` is filtered out)."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled(kind):
            tracer.emit(kind, t=self.sim.now, slot=slot, node=node, **data)

    def epoch_of(self, slot: int) -> int:
        return slot // self.params.slots_per_epoch

    def begin_slot(self, slot: int) -> None:
        """Record the slot's start time (call at proposer selection)."""
        self.slot_starts.setdefault(slot, self.sim.now)

    def slot_start(self, slot: int) -> float:
        return self.slot_starts.get(slot, 0.0)

    def since_slot_start(self, slot: int) -> float:
        return self.sim.now - self.slot_start(slot)
