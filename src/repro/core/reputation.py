"""Per-peer reputation, quarantine and inbound rate limiting.

The PANDAS wire protocol is trust-free at the datagram level: one-way
UDP, no handshakes, no NACKs. Under a Byzantine adversary (corrupt
responders, flooders, withholders — see :mod:`repro.faults.adversary`)
a node therefore needs local, evidence-based defenses:

- :class:`ReputationLedger` keeps per-peer counters of *valid* cells
  served vs. *invalid* (failed KZG verification), *timeouts* (queried,
  never answered), *unsolicited* responses and *unrequested* cells.
  The counters fold into a score in ``(0, 1]`` that multiplies into
  Algorithm 1's ``score_peers`` — a lying peer's queries are steered
  elsewhere long before it is formally excluded. A peer whose score
  falls below the quarantine threshold is excluded from query plans
  for the remainder of the current epoch; the epoch rollover (which
  also rotates the assignment ``S``) decays all counters, giving the
  peer a probation window in the next epoch.

- :class:`TokenBucket` bounds inbound request/response datagrams per
  peer. Honest peers send a handful of messages per slot (a node is
  queried at most once per slot, and answers with at most one
  immediate plus one deferred reply), so generous defaults never touch
  honest traffic while flattening garbage flooders.

Everything here is deterministic and allocation-light: no randomness,
no timers — decay is applied lazily at epoch observation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PeerStats", "ReputationLedger", "TokenBucket"]

# Relative weight of each kind of bad evidence. Invalid cells are the
# strongest signal (they prove active misbehaviour: a valid proof
# cannot fail verification by accident); unsolicited traffic is
# spoofable in principle but costly to sustain; timeouts are the
# weakest (the protocol legitimately answers late via deferred
# replies), so they only ever *steer* queries, not quarantine a peer
# on their own.
INVALID_WEIGHT = 8.0
UNSOLICITED_WEIGHT = 2.0
UNREQUESTED_WEIGHT = 2.0
TIMEOUT_WEIGHT = 1.0


@dataclass
class PeerStats:
    """Decaying evidence counters for one peer."""

    valid: float = 0.0
    invalid: float = 0.0
    timeouts: float = 0.0
    unsolicited: float = 0.0
    unrequested: float = 0.0

    def decay(self, factor: float) -> None:
        self.valid *= factor
        self.invalid *= factor
        self.timeouts *= factor
        self.unsolicited *= factor
        self.unrequested *= factor

    @property
    def penalty(self) -> float:
        return (
            INVALID_WEIGHT * self.invalid
            + UNSOLICITED_WEIGHT * self.unsolicited
            + UNREQUESTED_WEIGHT * self.unrequested
            + TIMEOUT_WEIGHT * self.timeouts
        )


class ReputationLedger:
    """One node's memory of how its peers behaved.

    ``prior`` is the pseudo-count of good evidence every peer starts
    with: an unknown peer weighs 1.0, and a single timeout barely
    moves it, while a burst of invalid cells collapses it quickly.
    """

    def __init__(
        self,
        decay: float = 0.5,
        quarantine_threshold: float = 0.25,
        prior: float = 8.0,
    ) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1], got {decay}")
        if not 0.0 <= quarantine_threshold < 1.0:
            raise ValueError(
                f"quarantine_threshold must be in [0, 1), got {quarantine_threshold}"
            )
        self.decay = decay
        self.quarantine_threshold = quarantine_threshold
        self.prior = prior
        self.stats: dict[int, PeerStats] = {}
        # peer -> epoch for which it is quarantined; expiry is implicit
        # (the entry stops matching once the epoch advances)
        self.quarantined_in: dict[int, int] = {}
        self._epoch: int | None = None

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------
    def observe_epoch(self, epoch: int) -> None:
        """Apply decay once per epoch advance (lazy, idempotent).

        Quarantines are scoped to the epoch they tripped in, so
        advancing the epoch also ends them: the assignment ``S`` has
        rotated and the peer gets a probation window with softened
        counters.
        """
        if self._epoch is None:
            self._epoch = epoch
            return
        while self._epoch < epoch:
            self._epoch += 1
            for stats in self.stats.values():
                stats.decay(self.decay)

    @property
    def epoch(self) -> int | None:
        return self._epoch

    # ------------------------------------------------------------------
    # evidence
    # ------------------------------------------------------------------
    def _peer(self, peer: int) -> PeerStats:
        stats = self.stats.get(peer)
        if stats is None:
            stats = PeerStats()
            self.stats[peer] = stats
        return stats

    def record_valid(self, peer: int, count: int = 1) -> None:
        self._peer(peer).valid += count

    def record_invalid(self, peer: int, count: int = 1) -> None:
        self._peer(peer).invalid += count
        self._maybe_quarantine(peer)

    def record_timeout(self, peer: int) -> None:
        self._peer(peer).timeouts += 1
        self._maybe_quarantine(peer)

    def record_unsolicited(self, peer: int, count: int = 1) -> None:
        self._peer(peer).unsolicited += count
        self._maybe_quarantine(peer)

    def record_unrequested(self, peer: int, count: int = 1) -> None:
        self._peer(peer).unrequested += count
        self._maybe_quarantine(peer)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def weight(self, peer: int) -> float:
        """Score multiplier in ``(0, 1]``; 1.0 for unknown/clean peers."""
        stats = self.stats.get(peer)
        if stats is None:
            return 1.0
        good = self.prior + stats.valid
        return good / (good + stats.penalty)

    def quarantined(self, peer: int) -> bool:
        if self._epoch is None:
            return False
        return self.quarantined_in.get(peer) == self._epoch

    def quarantined_count(self) -> int:
        """Peers quarantined for the current epoch (telemetry gauge)."""
        if self._epoch is None:
            return 0
        epoch = self._epoch
        return sum(1 for e in self.quarantined_in.values() if e == epoch)

    def _maybe_quarantine(self, peer: int) -> None:
        if self._epoch is None:
            return
        if self.weight(peer) < self.quarantine_threshold:
            self.quarantined_in[peer] = self._epoch


class TokenBucket:
    """A classic token bucket over the simulation clock.

    ``rate`` tokens accrue per second up to ``burst``; each admitted
    message spends ``cost``. Refill happens lazily on :meth:`allow`, so
    the bucket needs no timers and is exactly reproducible.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0 or burst <= 0.0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last = 0.0

    def allow(self, now: float, cost: float = 1.0) -> bool:
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False
