"""Adaptive fetching (Section 7, Algorithm 1, Figure 8).

One fetcher per node per slot drives both consolidation and sampling.
It proceeds in rounds; round ``i`` has timeout ``t_i`` (400, 200, then
100 ms) and redundancy ``k_i`` (1, 2, 4, 6, 8, then 10):

1. **Targeting** — the round's cell set F holds every missing sample
   plus, per incomplete custody line, the *deficit*: just enough
   missing cells to reach the Reed-Solomon reconstruction threshold
   (half of the line), net of cells the builder declared as already
   in flight to this node, preferring cells the consolidation-boost
   map locates at a peer. Fetching whole lines instead would cost
   ~4.5 MB per node; deficit targeting reproduces both the paper's
   ~2 MB traffic ceiling (Figure 10) and Table 1's requested-cell
   profile with zero round-1 duplicates.
2. **Scoring** — every queryable peer gets the number of its custody
   cells in F; peers in the boost map get ``cb_boost`` extra per
   still-missing seeded cell, an overwhelming advantage that steers
   early queries to peers that already *hold* cells rather than peers
   that must consolidate first.
3. **Planning** — peers are scanned in decreasing score order; each is
   planned a query for its cells of interest still lacking ``k_i``
   planned requests, until every cell in F reaches redundancy ``k_i``
   or peers run out.
4. **Execution** — queries go out as one-way UDP datagrams; the peer
   set shrinks (a node is queried at most once per slot); the fetcher
   sleeps ``t_i`` and starts the next round.

Responses can arrive in *any* later round (queried nodes buffer what
they cannot serve yet and never NACK); per-round telemetry (Table 1)
distinguishes replies received before and after their round's timeout.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from collections.abc import Callable, Iterable

try:  # vectorized candidate scan; the pure-python path covers absence
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

from repro.core.custody import SlotCellState
from repro.obs.events import TraceRecorder
from repro.params import FetchSchedule, RetryPolicy
from repro.sim.engine import Event, Simulator

__all__ = ["AdaptiveFetcher", "RoundStats", "FetchPlan", "plan_queries", "score_peers"]


@dataclass(slots=True)
class RoundStats:
    """Telemetry for one fetching round (the columns of Table 1)."""

    index: int
    started_at: float = 0.0
    deadline: float = 0.0
    messages_sent: int = 0
    cells_requested: int = 0
    replies_in_round: int = 0
    replies_after_round: int = 0
    cells_in_round: int = 0
    cells_after_round: int = 0
    duplicates: int = 0
    reconstructed: int = 0
    targets: int = 0


@dataclass(frozen=True, slots=True)
class FetchPlan:
    """The query plan of one round: (peer, cells) pairs."""

    queries: tuple[tuple[int, frozenset[int]], ...]

    @property
    def cells_requested(self) -> int:
        return sum(len(cells) for _peer, cells in self.queries)


def score_peers(
    targets: set[int],
    candidate_cells: dict[int, set[int]],
    boost: dict[int, set[int]],
    cb_boost: float,
    weights: dict[int, float] | None = None,
) -> dict[int, float]:
    """Algorithm 1 lines 4-9: cells-of-interest count plus boost.

    ``weights`` (peer -> multiplier in ``(0, 1]``, default 1.0) folds
    per-peer reputation into the score: a peer that served corrupt
    cells or stalled past round deadlines is out-scored by clean peers
    holding the same cells, so queries drain away from it even before
    quarantine removes it outright.
    """
    scores: dict[int, float] = {}
    for peer, cells in candidate_cells.items():
        score = float(len(cells))
        boosted = boost.get(peer)
        if boosted:
            score += len(boosted & targets) * cb_boost
        if weights is not None:
            score *= weights.get(peer, 1.0)
        scores[peer] = score
    return scores


def plan_queries(
    targets: set[int],
    ordered_peers: list[int],
    candidate_cells: dict[int, set[int]],
    redundancy: int,
    max_cells_per_query: int | None = None,
) -> FetchPlan:
    """Algorithm 1 lines 11-17: greedy plan until every cell has k queries.

    ``max_cells_per_query`` caps each query at roughly one seeding
    parcel. Without it the top-scored (boosted) peers would be asked
    for entire line deficits by every co-custodian simultaneously,
    saturating their uplinks; parcel-sized queries spread the load
    across all holders — Table 1's ~12 cells per round-1 message.
    """
    under: set[int] = set(targets)
    planned_count: dict[int, int] = {}
    queries: list[tuple[int, frozenset[int]]] = []
    for peer in ordered_peers:
        if not under:
            break
        interesting = candidate_cells[peer] & under
        if not interesting:
            continue
        if max_cells_per_query is not None and len(interesting) > max_cells_per_query:
            # == set(sorted(interesting)[:max]) without the full sort
            interesting = set(heapq.nsmallest(max_cells_per_query, interesting))
        queries.append((peer, frozenset(interesting)))
        for cid in interesting:
            count = planned_count.get(cid, 0) + 1
            planned_count[cid] = count
            if count >= redundancy:
                under.discard(cid)
    return FetchPlan(tuple(queries))


class AdaptiveFetcher:
    """Executes Algorithm 1 for one node and one slot.

    Decoupled from the node/transport through callables so the same
    machinery serves PANDAS nodes, baselines and unit tests:

    - ``line_custodians(line)``: view-filtered custodians of a line;
    - ``send_query(peer, cells)``: emit one QUERYCELLS datagram;
    - ``on_round(stats)`` / ``on_done(success)``: telemetry sinks.
    """

    __slots__ = (
        "sim",
        "state",
        "schedule",
        "line_custodians",
        "send_query",
        "rng",
        "cb_boost",
        "self_id",
        "on_round",
        "on_done",
        "fetch_custody",
        "_is_complete",
        "peer_weight",
        "exclude_peer",
        "on_peer_timeout",
        "retry_unresponsive",
        "retry_policy",
        "deadline_at",
        "retry_waves",
        "retry_abandoned",
        "responded",
        "_timeouts_reported",
        "tracer",
        "trace_slot",
        "observe_latency",
        "_open_queries",
        "boost",
        "_boost_cells",
        "inbound",
        "max_cells_per_query",
        "queried",
        "query_round",
        "_cust_arrays",
        "rounds",
        "started",
        "finished",
        "succeeded",
        "_timer",
    )

    def __init__(
        self,
        sim: Simulator,
        state: SlotCellState,
        schedule: FetchSchedule,
        line_custodians: Callable[[int], Iterable[int]],
        send_query: Callable[[int, frozenset[int]], None],
        rng: random.Random,
        cb_boost: float,
        self_id: int,
        on_round: Callable[[RoundStats], None] | None = None,
        on_done: Callable[[bool], None] | None = None,
        fetch_custody: bool = True,
        is_complete: Callable[[], bool] | None = None,
        max_cells_per_query: int | None = 16,
        peer_weight: Callable[[int], float] | None = None,
        exclude_peer: Callable[[int], bool] | None = None,
        on_peer_timeout: Callable[[int], None] | None = None,
        retry_unresponsive: bool = False,
        retry_policy: RetryPolicy | None = None,
        deadline_at: float | None = None,
        tracer: TraceRecorder | None = None,
        slot: int = -1,
        observe_latency: Callable[[int, float], None] | None = None,
    ) -> None:
        self.sim = sim
        self.state = state
        self.schedule = schedule
        self.line_custodians = line_custodians
        self.send_query = send_query
        self.rng = rng
        self.cb_boost = cb_boost
        self.self_id = self_id
        self.on_round = on_round
        self.on_done = on_done
        # baselines disable consolidation: fetch samples only and
        # consider the slot done once sampling completes
        self.fetch_custody = fetch_custody
        self._is_complete = is_complete
        # reputation hooks (repro.core.reputation): score multiplier,
        # quarantine filter, and the timeout-evidence sink
        self.peer_weight = peer_weight
        self.exclude_peer = exclude_peer
        self.on_peer_timeout = on_peer_timeout
        # Robustness extension to Algorithm 1 (off by default): once the
        # candidate pool is exhausted, peers whose round expired with no
        # reply may be queried a second time. Without it, loss bursts,
        # partitions or withholding peers can permanently starve a node
        # that has already spent its one query per custodian.
        self.retry_unresponsive = retry_unresponsive
        # Deadline-aware backoff on top of the recycle hatch (overload
        # control). ``retry_policy is None`` keeps the legacy immediate
        # recycle bit-identical; with a policy, exhausted-pool retries
        # wait a seeded jittered exponential backoff between waves and
        # are abandoned outright once ``deadline_at`` (absolute sim
        # time) can no longer be met or ``max_waves`` is spent.
        self.retry_policy = retry_policy
        self.deadline_at = deadline_at
        self.retry_waves = 0
        self.retry_abandoned = False
        self.responded: set[int] = set()
        self._timeouts_reported: set[int] = set()
        # Query-lifecycle tracing (repro.obs): every query gets a
        # request id at issue time and terminates in exactly one of
        # response/timeout/cancel. All of it is maintained only when a
        # tracer is attached — pure observation, no RNG, no scheduling,
        # so traced and untraced runs are behaviorally identical.
        self.tracer = tracer
        self.trace_slot = slot
        # telemetry sink for per-round reply latency (repro.obs.
        # telemetry); like the tracer, a pure observer — no RNG, no
        # scheduling — so attaching one never changes fetch behavior
        self.observe_latency = observe_latency
        self._open_queries: dict[int, tuple[int, int]] = {}  # peer -> (req, round)

        self.boost: dict[int, set[int]] = {}
        self._boost_cells: set[int] = set()
        self.inbound: set[int] = set()
        self.max_cells_per_query = max_cells_per_query
        self.queried: set[int] = set()
        self.query_round: dict[int, int] = {}
        # per-line custodian lists as int64 arrays (vectorized scan)
        self._cust_arrays: dict[int, object] = {}
        self.rounds: list[RoundStats] = []
        self.started = False
        self.finished = False
        self.succeeded = False
        self._timer: Event | None = None

    # ------------------------------------------------------------------
    # boost map
    # ------------------------------------------------------------------
    def add_boost(self, peer: int, cells: Iterable[int]) -> None:
        """Merge consolidation-boost info arriving with seed parcels."""
        bucket = self.boost.get(peer)
        if bucket is None:
            self.boost[peer] = set(cells)
        else:
            bucket.update(cells)
        self._boost_cells.update(cells)

    def add_inbound(self, cells: Iterable[int]) -> None:
        """Cells the builder declared (or delivered) as seeded to us.

        Excluded from fetch targets: re-requesting data already in
        flight from the builder would only manufacture duplicates
        (Table 1 reports zero round-1 duplicates).
        """
        self.inbound.update(cells)

    # ------------------------------------------------------------------
    # tracing (no-ops unless a tracer is attached)
    # ------------------------------------------------------------------
    def _trace(self, kind: str, **data) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled(kind):
            tracer.emit(
                kind, t=self.sim.now, slot=self.trace_slot, node=self.self_id, **data
            )

    def _trace_expire_queries(self) -> None:
        """Close open queries whose round deadline has passed.

        A silent peer's query closes as ``query_timeout``; a peer that
        replied (even unusably — ``note_reply`` with payloads that all
        failed validation) closes as an unusable ``query_response`` so
        it is never double-reported as a timeout.
        """
        if self.tracer is None or not self._open_queries:
            return
        now = self.sim.now
        for peer in list(self._open_queries):
            req, rnd = self._open_queries[peer]
            if rnd > len(self.rounds) or self.rounds[rnd - 1].deadline > now:
                continue
            del self._open_queries[peer]
            if peer in self.responded:
                self._trace(
                    "query_response", req=req, peer=peer, round=rnd,
                    cells=0, new=0, reconstructed=0, late=True, usable=False,
                )
            else:
                self._trace("query_timeout", req=req, peer=peer, round=rnd)

    def _trace_close_open(self) -> None:
        """Terminate every still-open query when the fetcher ends.

        Expired ones close as timeout/unusable-response first; the rest
        close as ``query_cancel`` (the fetcher finished or was stopped
        before their round expired).
        """
        if self.tracer is None:
            return
        self._trace_expire_queries()
        for peer, (req, rnd) in list(self._open_queries.items()):
            if peer in self.responded:
                self._trace(
                    "query_response", req=req, peer=peer, round=rnd,
                    cells=0, new=0, reconstructed=0, late=False, usable=False,
                )
            else:
                self._trace("query_cancel", req=req, peer=peer, round=rnd)
        self._open_queries.clear()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin round 1 (idempotent)."""
        if self.started:
            return
        self.started = True
        self._trace("fetch_start", custody=self.fetch_custody)
        if self.complete:
            self._complete()
            return
        self._run_round(1)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self.finished:
            self._trace_close_open()
            if self.started:
                self._trace("fetch_done", success=False, reason="stopped")
        self.finished = True

    # ------------------------------------------------------------------
    # round targeting (F of Algorithm 1, deficit-driven)
    # ------------------------------------------------------------------
    def round_targets(self, round_index: int = 1) -> set[int]:
        """Missing samples plus per-line reconstruction deficits.

        Deficits are *net of declared inbound*: cells the builder said
        it is sending us count toward the reconstruction threshold, so
        fetching them from peers would only duplicate the seed stream
        (when the per-node seed share already exceeds half a line, the
        correct fetch volume is zero). Once the schedule settles onto
        its tail timeout (``schedule.settle_round`` — round 3, ~600 ms
        after the burst began, on the default schedule) undelivered
        inbound cells are treated as lost — the 3% UDP loss escape
        hatch — and become fetchable again.

        Within a line, prefer boost-located cells (retrievable *now*),
        then other non-inbound cells, then stale inbound.
        """
        targets = set(self.state.missing_samples())
        if not self.fetch_custody:
            return targets
        trust_inbound = round_index < self.schedule.settle_round
        inbound = self.inbound
        for line in self.state.custody_lines:
            deficit = self.state.line_deficit(line)
            if deficit <= 0:
                continue
            missing = self.state.missing_in_line(line)
            boosted_out = []
            plain_out = []
            inbound_cells = []
            for cid in missing:
                if cid in inbound:
                    inbound_cells.append(cid)
                elif cid in self._boost_cells:
                    boosted_out.append(cid)
                else:
                    plain_out.append(cid)
            if trust_inbound:
                deficit = max(0, deficit - len(inbound_cells))
                picked = (boosted_out + plain_out)[:deficit]
            else:
                picked = (boosted_out + plain_out + inbound_cells)[:deficit]
            targets.update(picked)
        return targets

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def _run_round(self, index: int) -> None:
        self._timer = None
        if self.finished:
            return
        # trace bookkeeping first so queries that expired at this tick
        # close as timeouts even if the fetcher completes or gives up now
        self._trace_expire_queries()
        if self.complete:
            self._complete()
            return
        if index >= self.schedule.max_rounds:
            self._give_up()
            return

        self._report_timeouts()

        stats = RoundStats(index=index, started_at=self.sim.now)
        stats.deadline = self.sim.now + self.schedule.timeout(index)
        self.rounds.append(stats)

        targets = self.round_targets(index)
        stats.targets = len(targets)
        settle = self.schedule.settle_round
        candidate_cells = self._candidate_cells(targets)
        if (
            not candidate_cells
            and targets
            and index >= settle
            and self.retry_unresponsive
        ):
            # Every custodian of the remaining targets has been queried
            # once already. Under loss, partitions or withholding peers
            # that is not the end: peers whose round expired without any
            # reply are returned to the candidate pool for one more try
            # (their earlier query or reply was probably lost). Peers
            # that *did* reply stay consumed — re-asking a peer that
            # answered only manufactures duplicates.
            policy = self.retry_policy
            if policy is not None and not self._retry_wave_allowed(policy, index):
                # deadline-aware budget: a backed-off wave could no
                # longer complete before the fetcher's deadline (or the
                # wave budget is spent), so the work is abandoned rather
                # than retried into a slot it already missed
                self.retry_abandoned = True
                self._trace(
                    "retry_abandoned",
                    round=index,
                    waves=self.retry_waves,
                    targets=stats.targets,
                )
            else:
                recycled = self._recycle_unresponsive()
                if recycled:
                    self._trace("query_recycle", pool="unresponsive", count=recycled)
                    candidate_cells = self._candidate_cells(targets)
                if not candidate_cells:
                    # Still nothing: the remaining targets' custodians all
                    # *answered*, yet the cells never materialized — corrupt
                    # responders whose payloads failed verification, or
                    # replies that did not cover these cells. Re-open them
                    # too; reputation weighting and quarantine steer the
                    # retry toward whoever served honestly.
                    recycled = self._recycle_responded()
                    if recycled:
                        self._trace("query_recycle", pool="responded", count=recycled)
                        candidate_cells = self._candidate_cells(targets)
                if candidate_cells and policy is not None:
                    # back off before re-querying: the recycled peers go
                    # back in the pool now, but the wave itself runs
                    # after a seeded jittered exponential delay instead
                    # of re-hammering them on the round tick
                    delay = self._next_backoff(policy)
                    self._trace(
                        "retry_backoff",
                        round=index,
                        wave=self.retry_waves,
                        delay=delay,
                    )
                    if self.on_round is not None:
                        self.on_round(stats)
                    self._trace(
                        "fetch_round",
                        round=index,
                        targets=stats.targets,
                        queries=0,
                        cells=0,
                    )
                    self._timer = self.sim.call_after(
                        delay, self._run_round, index + 1
                    )
                    return
        if not candidate_cells:
            if self.on_round is not None:
                self.on_round(stats)
            self._trace(
                "fetch_round", round=index, targets=stats.targets, queries=0, cells=0
            )
            if index >= settle:
                # Inbound cells are no longer trusted once the schedule
                # settles and even already-queried peers are recycled
                # above, so an empty plan here means nobody reachable can
                # serve the remaining targets. Stop scheduling; buffered
                # replies already in flight may still complete the state.
                return
            # pre-settle rounds may have empty plans only because lost
            # inbound cells are still trusted; keep ticking so the
            # settle round retries
            self._timer = self.sim.call_after(
                self.schedule.timeout(index), self._run_round, index + 1
            )
            return

        weights = None
        if self.peer_weight is not None:
            weights = {peer: self.peer_weight(peer) for peer in candidate_cells}
        scores = score_peers(targets, candidate_cells, self.boost, self.cb_boost, weights)
        peers = list(candidate_cells)
        self.rng.shuffle(peers)  # unbiased tie-break among equal scores
        peers.sort(key=lambda p: scores[p], reverse=True)
        plan = plan_queries(
            targets,
            peers,
            candidate_cells,
            self.schedule.redundancy_for(index),
            max_cells_per_query=self.max_cells_per_query,
        )
        tracer = self.tracer
        for peer, cells in plan.queries:
            if tracer is not None:
                req = tracer.next_request_id()
                stale = self._open_queries.pop(peer, None)
                if stale is not None:
                    # re-query of a recycled peer whose prior query never
                    # closed through sweep/response: close it explicitly
                    # so every req terminates exactly once
                    self._trace("query_cancel", req=stale[0], peer=peer, round=stale[1])
                self._open_queries[peer] = (req, index)
                self._trace(
                    "query_issue", req=req, peer=peer, round=index, cells=len(cells)
                )
            self.send_query(peer, cells)
            self.queried.add(peer)
            self.query_round[peer] = index
        stats.messages_sent = len(plan.queries)
        stats.cells_requested = plan.cells_requested

        if self.on_round is not None:
            self.on_round(stats)
        self._trace(
            "fetch_round",
            round=index,
            targets=stats.targets,
            queries=stats.messages_sent,
            cells=stats.cells_requested,
        )
        self._timer = self.sim.call_after(
            self.schedule.timeout(index), self._run_round, index + 1
        )

    def _candidate_cells(self, targets: set[int]) -> dict[int, set[int]]:
        """Queryable peers mapped to the cells to ask them for.

        Peers in the consolidation-boost map are offered only the
        cells the builder actually seeded to them — those are
        servable *immediately*; their other custody cells would only
        arrive after the peer's own consolidation. Unboosted peers
        are fallback holders for anything on their lines.
        """
        missing_by_line: dict[int, set[int]] = {}
        params = self.state.params
        ext_cols = params.ext_cols
        ext_rows = params.ext_rows
        get_line = missing_by_line.get
        for cid in targets:
            row = cid // ext_cols
            bucket = get_line(row)
            if bucket is None:
                missing_by_line[row] = {cid}
            else:
                bucket.add(cid)
            col_line = ext_rows + cid - row * ext_cols
            bucket = get_line(col_line)
            if bucket is None:
                missing_by_line[col_line] = {cid}
            else:
                bucket.add(cid)
        if _np is not None and len(missing_by_line) > 8:
            candidates = self._scan_candidates_np(missing_by_line)
        else:
            candidates = self._scan_candidates_py(missing_by_line)
        for peer, boosted in self.boost.items():
            if peer in candidates:
                seeded_targets = boosted & targets
                if seeded_targets:
                    candidates[peer] = seeded_targets
        return candidates

    def _scan_candidates_py(
        self, missing_by_line: dict[int, set[int]]
    ) -> dict[int, set[int]]:
        """Pure-python candidate scan (reference path, small inputs).

        Gathers each peer's missing lines first (first-encounter order),
        then materializes cell sets once per peer: most custodians share
        exactly one line with us, so they can reference the line's
        missing set directly instead of copying it, and multi-line
        unions are computed once per distinct line combination. The
        sets are read-only downstream (plan_queries intersects into
        fresh sets), so sharing is safe — and this turns the dominant
        O(custodians x line_size) copy work into O(custodians).
        """
        peer_lines: dict[int, list[int]] = {}
        exclude = self.exclude_peer
        queried = self.queried
        line_custodians = self.line_custodians
        skip: set[int] = set(queried)
        skip.add(self.self_id)
        for line in missing_by_line:
            for peer in line_custodians(line):
                if peer in skip:
                    continue
                lines = peer_lines.get(peer)
                if lines is None:
                    if exclude is not None and exclude(peer):
                        skip.add(peer)
                        continue
                    peer_lines[peer] = [line]
                else:
                    lines.append(line)
        candidates: dict[int, set[int]] = {}
        union_cache: dict[tuple[int, ...], set[int]] = {}
        for peer, lines in peer_lines.items():
            candidates[peer] = self._peer_cells(lines, missing_by_line, union_cache)
        return candidates

    def _scan_candidates_np(
        self, missing_by_line: dict[int, set[int]]
    ) -> dict[int, set[int]]:
        """Vectorized candidate scan, equivalent to the python path.

        At scale the (missing line, custodian) pair stream is tens of
        thousands of entries per round; the dedup into first-encounter
        peer order is done with array ops instead of a python loop.
        ``np.unique(..., return_index=True)`` yields each peer's first
        pair index, so sorting unique peers by that index reproduces
        the exact insertion order of the reference scan.
        """
        np = _np
        arrays = self._cust_arrays
        line_custodians = self.line_custodians
        per_line = []
        lines_used = []
        for line in missing_by_line:
            arr = arrays.get(line)
            if arr is None:
                arr = arrays[line] = np.asarray(line_custodians(line), dtype=np.int64)
            if arr.shape[0]:
                per_line.append(arr)
                lines_used.append(line)
        if not per_line:
            return {}
        peers = np.concatenate(per_line)
        counts = np.fromiter(
            (a.shape[0] for a in per_line), dtype=np.int64, count=len(per_line)
        )
        line_ids = np.repeat(
            np.fromiter(lines_used, dtype=np.int64, count=len(lines_used)), counts
        )
        bound = int(peers.max()) + 1
        skipmask = np.zeros(bound, dtype=bool)
        queried = self.queried
        if queried:
            qa = np.fromiter(queried, dtype=np.int64, count=len(queried))
            skipmask[qa[qa < bound]] = True
        if self.self_id < bound:
            skipmask[self.self_id] = True
        keep = ~skipmask[peers]
        peers = peers[keep]
        if not peers.shape[0]:
            return {}
        line_ids = line_ids[keep]
        uniq, first_idx = np.unique(peers, return_index=True)
        encounter = uniq[np.argsort(first_idx)]
        order = np.argsort(peers, kind="stable")
        sorted_peers = peers[order]
        sorted_lines = line_ids[order].tolist()
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_peers[1:] != sorted_peers[:-1]))
        )
        ends = np.concatenate((starts[1:], [sorted_peers.shape[0]]))
        spans: dict[int, tuple[int, int]] = {}
        span_peers = sorted_peers[starts].tolist()
        starts_list = starts.tolist()
        ends_list = ends.tolist()
        for i, peer in enumerate(span_peers):
            spans[peer] = (starts_list[i], ends_list[i])
        exclude = self.exclude_peer
        candidates: dict[int, set[int]] = {}
        union_cache: dict[tuple[int, ...], set[int]] = {}
        for peer in encounter.tolist():
            if exclude is not None and exclude(peer):
                continue
            start, end = spans[peer]
            candidates[peer] = self._peer_cells(
                sorted_lines[start:end], missing_by_line, union_cache
            )
        return candidates

    @staticmethod
    def _peer_cells(
        lines: list[int],
        missing_by_line: dict[int, set[int]],
        union_cache: dict[tuple[int, ...], set[int]],
    ) -> set[int]:
        """Cells one peer can be asked for: union of its missing lines."""
        if len(lines) == 1:
            return missing_by_line[lines[0]]
        key = tuple(lines)
        cells = union_cache.get(key)
        if cells is None:
            sets = [missing_by_line[line] for line in lines]
            cells = union_cache[key] = set().union(*sets)
        return cells

    def _retry_wave_allowed(self, policy: RetryPolicy, index: int) -> bool:
        """Can one more retry wave still pay off before the deadline?

        Checked with the *worst-case* jittered delay so the RNG is only
        drawn when a wave is actually scheduled: an abandoned retry
        consumes no randomness and replays identically. The wave must
        leave room for its own round timeout — a reply that cannot
        arrive before ``deadline_at`` is not worth asking for.
        """
        if self.retry_waves >= policy.max_waves:
            return False
        if self.deadline_at is None:
            return True
        worst = policy.backoff(self.retry_waves) * (1.0 + policy.jitter)
        return self.sim.now + worst + self.schedule.timeout(index + 1) <= self.deadline_at

    def _next_backoff(self, policy: RetryPolicy) -> float:
        """Consume one retry wave; return its jittered backoff delay.

        The jitter multiplier draws from the fetcher's seeded stream
        (``self.rng``), never the global ``random`` module, so backoff
        timing is part of the deterministic replay like everything else.
        """
        wave = self.retry_waves
        self.retry_waves = wave + 1
        delay = policy.backoff(wave)
        if policy.jitter > 0.0:
            delay *= 1.0 + policy.jitter * self.rng.random()
        return delay

    def _recycle_unresponsive(self) -> int:
        """Return queried-but-silent peers to the candidate pool.

        A peer is recycled only after the round it was queried in has
        expired with no reply at all; quarantined peers remain excluded
        by ``_candidate_cells``. Returns how many peers were recycled.
        (Rounds fire exactly at the previous deadline, so expiry is
        ``deadline <= now``, not strict.)
        """
        now = self.sim.now
        stale = {
            peer
            for peer, rnd in self.query_round.items()
            if peer in self.queried
            and peer not in self.responded
            and rnd <= len(self.rounds)
            and self.rounds[rnd - 1].deadline <= now
        }
        self.queried -= stale
        return len(stale)

    def _recycle_responded(self) -> int:
        """Last resort: re-open peers that replied but left targets unmet.

        Used only when even recycling silent peers yields no candidates:
        every custodian of the remaining targets answered something, yet
        the cells never verified or were not covered by the reply. Peers
        become eligible once the round they were queried in has expired;
        quarantined peers stay excluded by ``_candidate_cells``, and the
        reputation weight makes honest servers out-score the liars that
        forced this retry in the first place.
        """
        now = self.sim.now
        stale = {
            peer
            for peer, rnd in self.query_round.items()
            if peer in self.queried
            and rnd <= len(self.rounds)
            and self.rounds[rnd - 1].deadline <= now
        }
        self.queried -= stale
        return len(stale)

    def _report_timeouts(self) -> None:
        """Feed peers that missed their round deadline to the reputation sink.

        A peer is reported at most once per slot, and only once the
        round it was queried in has expired without any reply from it.
        Late (deferred) replies are legitimate protocol behaviour, which
        is why timeout evidence carries the lowest reputation weight.
        """
        if self.on_peer_timeout is None:
            return
        now = self.sim.now
        for peer, round_index in self.query_round.items():
            if peer in self.responded or peer in self._timeouts_reported:
                continue
            if round_index <= len(self.rounds) and self.rounds[round_index - 1].deadline <= now:
                self._timeouts_reported.add(peer)
                self.on_peer_timeout(peer)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def note_reply(self, peer: int) -> None:
        """Mark ``peer`` as having answered (even with no usable cells).

        The node calls this before dropping invalid/duplicate payloads
        so a peer that *replied* is never also reported as timed out —
        corrupt responders are punished once, as corrupt, not twice.
        """
        self.responded.add(peer)

    def on_response(self, peer: int, cells: tuple[int, ...]) -> tuple[int, int]:
        """Account a CellResponse; returns (new_cells, reconstructed).

        Updates the custody state so duplicate accounting and round
        attribution stay consistent.
        """
        self.responded.add(peer)
        new_count, reconstructed = self.state.add_cells(cells)
        round_index = self.query_round.get(peer)
        if round_index is not None and round_index <= len(self.rounds):
            stats = self.rounds[round_index - 1]
            if self.observe_latency is not None:
                self.observe_latency(round_index, self.sim.now - stats.started_at)
            if self.sim.now <= stats.deadline:
                stats.replies_in_round += 1
                stats.cells_in_round += new_count
            else:
                stats.replies_after_round += 1
                stats.cells_after_round += new_count
            stats.duplicates += len(cells) - new_count
            stats.reconstructed += reconstructed
        if self.tracer is not None:
            entry = self._open_queries.pop(peer, None)
            if entry is not None:
                req, rnd = entry
                late = (
                    rnd <= len(self.rounds)
                    and self.sim.now > self.rounds[rnd - 1].deadline
                )
                self._trace(
                    "query_response", req=req, peer=peer, round=rnd,
                    cells=len(cells), new=new_count,
                    reconstructed=reconstructed, late=late, usable=True,
                )
            else:
                # the query already closed (timeout sweep or recycle);
                # a legitimate deferred reply, recorded but non-terminal
                self._trace("query_late_reply", peer=peer, cells=len(cells), new=new_count)
        if self.complete:
            self._complete()
        return new_count, reconstructed

    def note_external_cells(self, reconstructed: int) -> None:
        """Seed arrivals reconstruct lines too; attribute to current round."""
        if self.rounds and reconstructed:
            self.rounds[-1].reconstructed += reconstructed
        if self.started and self.complete:
            self._complete()

    @property
    def complete(self) -> bool:
        """Has the fetcher achieved its goal for this slot?"""
        if self._is_complete is not None:
            return self._is_complete()
        if self.fetch_custody:
            return self.state.complete
        return self.state.sampling_complete

    # ------------------------------------------------------------------
    def _complete(self) -> None:
        if self.finished:
            return
        self.finished = True
        self.succeeded = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._trace_close_open()
        self._trace("fetch_done", success=True, reason="complete")
        if self.on_done is not None:
            self.on_done(True)

    def _give_up(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._trace_close_open()
        self._trace("fetch_done", success=False, reason="exhausted")
        if self.on_done is not None:
            self.on_done(False)
