"""Danksharding / PANDAS parameter presets.

Section 3 of the paper fixes the target parameters discussed in the
Ethereum community:

- base blob: 32 MB as a 256 x 256 matrix of 512 B cells;
- 2D Reed-Solomon extension to 512 x 512 (each row and column doubles
  and becomes reconstructable from any half of its cells);
- each cell carries a 48 B KZG proof, so the extended blob is
  (512 * 512) * (512 + 48) = 140 MB;
- custody: 8 distinct rows + 8 distinct columns per node (~4.4 MB);
- sampling: 73 random cells -> false-positive probability < 1e-9;
- deadline: 4 s (a third of the 12 s slot), epochs of 32 slots.

Section 7 fixes the adaptive fetching schedule: round timeouts
400, 200, then 100 ms (up to 50 rounds) and redundancy 1, 2, 4, 6, 8,
then 10; cb_boost = 10,000; consolidation timer 400 ms.

``PandasParams.full()`` reproduces these numbers exactly.
``PandasParams.reduced()`` scales the grid down proportionally so that
timing experiments with hundreds-to-thousands of simulated nodes run
on one machine; the sample count is re-derived from the same 1e-9
false-positive bound so the security semantics are preserved (see
``repro.das.security``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "PandasParams",
    "FetchSchedule",
    "RetryPolicy",
    "SLOT_SECONDS",
    "DEADLINE_SECONDS",
]

SLOT_SECONDS = 12.0
DEADLINE_SECONDS = 4.0


@dataclass(frozen=True)
class FetchSchedule:
    """Round timeouts (seconds) and redundancy factors for Algorithm 1.

    Rounds beyond the listed vectors repeat the last entry, up to
    ``max_rounds`` (the paper uses t up to t50).
    """

    timeouts: tuple[float, ...] = (0.4, 0.2, 0.1)
    redundancy: tuple[int, ...] = (1, 2, 4, 6, 8, 10)
    max_rounds: int = 50

    def timeout(self, round_index: int) -> float:
        """Timeout for 1-based ``round_index``."""
        if round_index < 1:
            raise ValueError(f"rounds are 1-based, got {round_index}")
        return self.timeouts[min(round_index, len(self.timeouts)) - 1]

    def redundancy_for(self, round_index: int) -> int:
        """Redundancy factor k_i for 1-based ``round_index``."""
        if round_index < 1:
            raise ValueError(f"rounds are 1-based, got {round_index}")
        return self.redundancy[min(round_index, len(self.redundancy)) - 1]

    @property
    def settle_round(self) -> int:
        """First round running on the schedule's repeating tail timeout.

        Round ``i > len(timeouts)`` reuses the last timeout entry, so by
        round ``len(timeouts)`` the escalation phase of the schedule has
        "settled". Two gates key off this round rather than a hard-coded
        ``3``: declared-inbound cells stop being trusted (the builder's
        burst plus the escalation rounds have elapsed — anything still
        undelivered is presumed lost), and the exhausted-pool retry
        machinery becomes eligible. Deriving it here keeps both gates
        correct when the timeout vector is reconfigured.
        """
        return min(len(self.timeouts), self.max_rounds)

    @staticmethod
    def constant(
        timeout: float = 0.4, redundancy: int = 1, max_rounds: int = 50
    ) -> FetchSchedule:
        """The non-adaptive baseline of Figure 11 (fixed t, fixed k)."""
        return FetchSchedule((timeout,), (redundancy,), max_rounds)


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry with seeded exponential backoff + jitter.

    Governs what happens when Algorithm 1 exhausts its candidate pool
    (every custodian of the remaining targets has been queried). The
    legacy behaviour — recycle silent peers immediately, once per
    round, forever — is what you get with ``RetryPolicy`` unset
    (``None``); under sustained multi-slot load that immediate retry
    turns loss bursts into synchronized re-query storms and keeps
    burning traffic on slots that already missed their deadline.

    With a policy attached, each retry *wave* ``k`` (0-based) waits

        ``min(base * multiplier**k, max_backoff) * (1 + jitter * u)``

    where ``u`` is a uniform draw from the fetcher's own seeded RNG
    stream (never the global ``random`` module — reprolint RL001
    enforces this), so replays stay bit-identical while concurrent
    retriers decorrelate. A wave is only scheduled if the backed-off
    round could still complete before the fetcher's deadline; work
    that can no longer meet the slot deadline is abandoned instead of
    retried. ``max_waves`` caps total retry waves per fetcher.
    """

    base: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 0.8
    jitter: float = 0.5
    max_waves: int = 6

    def backoff(self, wave: int) -> float:
        """Deterministic (pre-jitter) backoff delay of 0-based ``wave``."""
        if wave < 0:
            raise ValueError(f"waves are 0-based, got {wave}")
        return min(self.base * self.multiplier**wave, self.max_backoff)

    def validate(self) -> None:
        if self.base < 0.0 or self.max_backoff < 0.0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter:
            raise ValueError("jitter fraction must be non-negative")
        if self.max_waves < 0:
            raise ValueError("max_waves must be non-negative")


@dataclass(frozen=True)
class PandasParams:
    """All protocol constants in one immutable bundle.

    The extended grid is ``(2 * base_rows) x (2 * base_cols)``; cell
    indices are ``row * ext_cols + col``.
    """

    base_rows: int = 256
    base_cols: int = 256
    cell_data_bytes: int = 512
    proof_bytes: int = 48
    custody_rows: int = 8
    custody_cols: int = 8
    samples: int = 73
    seeding_redundancy: int = 8
    cb_boost: float = 10_000.0
    consolidation_timer: float = 0.4
    deadline: float = DEADLINE_SECONDS
    slot_duration: float = SLOT_SECONDS
    slots_per_epoch: int = 32
    fetch_schedule: FetchSchedule = field(default_factory=FetchSchedule)
    # Overhead per UDP message: headers + proposer signature binding the
    # builder identity (Section 6.1).
    message_overhead_bytes: int = 120
    # --- node-side defenses (Section 9 threat model) ---------------------
    # CPU time to verify one cell's KZG proof on ingest; every peer- or
    # builder-supplied cell is checked before storage and the cost is
    # charged to the receiving node's clock (order of magnitude of a
    # real pairing check; see repro.crypto.kzg.CELL_VERIFY_SECONDS).
    cell_verify_seconds: float = 0.0002
    # Per-peer token bucket on inbound request/response datagrams. An
    # honest peer sends a handful of messages per slot (one query, the
    # immediate reply plus one deferred reply), so these defaults only
    # ever bite flooders.
    inbound_msg_rate: float = 50.0
    inbound_msg_burst: float = 100.0
    # Reputation: counters decay by this factor at every epoch
    # rollover; a peer whose score falls below the threshold is
    # quarantined (excluded from query plans) for the rest of the epoch.
    reputation_decay: float = 0.5
    quarantine_threshold: float = 0.25
    # Once every custodian of the remaining targets has been queried,
    # allow one more query to peers that never replied (their query or
    # reply was probably lost, or they are withholding). Pure
    # Algorithm 1 queries each peer at most once per slot; without this
    # escape hatch a loss burst or Byzantine withholding can
    # permanently starve a node.
    fetch_retry_unresponsive: bool = True
    # --- overload control (sustained multi-slot pipeline) ----------------
    # Deadline-aware retry with seeded exponential backoff + jitter.
    # ``None`` keeps the legacy immediate-recycle behaviour (the replay
    # pins of single-slot runs depend on it); the sustained pipeline
    # attaches a policy so exhausted-pool retries back off instead of
    # hammering the same peers every round, and stop once the slot
    # deadline is out of reach.
    fetch_retry: RetryPolicy | None = None
    # Bound on a node's buffered deferred-reply remainders per slot
    # (the waiting_by_cell records). ``None`` is unbounded (legacy);
    # with a limit, new remainders are shed once the buffer is full —
    # retrieval-class requests first, so client load can never crowd
    # out the sampling traffic the consensus timebound depends on.
    pending_request_limit: int | None = None
    # Aggregate admission control for retrieval-class (layer-2 client)
    # requests: a per-node token bucket over *all* inbound retrieval
    # traffic, independent of the per-peer buckets. ``None`` admits
    # everything (legacy). Sampling/consolidation traffic never passes
    # through this bucket — it is the load-shedding priority lane.
    retrieval_admit_rate: float | None = None
    retrieval_admit_burst: float = 20.0
    # --- PeerDAS baseline (consensus-specs column-subnet gossip) ---------
    # DATA_COLUMN_SIDECAR_SUBNET_COUNT: extended columns are spread over
    # this many gossip subnets (column -> subnet by modulo). Reduced test
    # grids with fewer extended columns than subnets simply use one
    # subnet per column.
    peerdas_subnet_count: int = 32
    # CUSTODY_REQUIREMENT: subnets every node custodies, derived from the
    # node id alone (custody-group style; epoch-independent).
    peerdas_custody_subnets: int = 4
    # SAMPLES_PER_SLOT, expressed in subnets: custody subnets plus extra
    # per-slot subnets the node must observe to accept the block.
    peerdas_sample_subnets: int = 8
    # DataColumnSidecarByRoot req/resp fallback: nodes whose sampled
    # subnets are still incomplete this long into the slot start pulling
    # the missing columns directly from custodians, retrying every
    # ``peerdas_fallback_interval`` until the slot window closes.
    peerdas_fallback_after: float = 2.0
    peerdas_fallback_interval: float = 0.4

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def ext_rows(self) -> int:
        return 2 * self.base_rows

    @property
    def ext_cols(self) -> int:
        return 2 * self.base_cols

    @property
    def total_cells(self) -> int:
        return self.ext_rows * self.ext_cols

    @property
    def cell_bytes(self) -> int:
        """Wire size of one cell: data plus its KZG proof (512+48 B)."""
        return self.cell_data_bytes + self.proof_bytes

    @property
    def blob_bytes(self) -> int:
        """Size of the original (unextended) blob payload."""
        return self.base_rows * self.base_cols * self.cell_data_bytes

    @property
    def extended_blob_bytes(self) -> int:
        """Size of the full extended blob including proofs (140 MB full-scale)."""
        return self.total_cells * self.cell_bytes

    @property
    def custody_cells(self) -> int:
        """Distinct cells per node: 8 full rows + 8 columns minus overlaps.

        The paper counts 8 * 512 + 8 * (512 - 8) = 8,176 cells for the
        default custody (each of the 8 columns intersects the 8 rows).
        """
        return (
            self.custody_rows * self.ext_cols
            + self.custody_cols * (self.ext_rows - self.custody_rows)
        )

    @property
    def custody_bytes(self) -> int:
        return self.custody_cells * self.cell_bytes

    @property
    def sample_bytes(self) -> int:
        """Total size of the sampled cells (73 * 560 B = ~40 KB full-scale)."""
        return self.samples * self.cell_bytes

    def fetch_bytes_invariant_bound(
        self, num_nodes: int, max_cells_per_query: int = 16
    ) -> float:
        """Physical ceiling on one node's per-slot fetch traffic.

        Used by the protocol-invariant checker (I2): whatever the fault
        mix, a node's fetch traffic (bytes it sends plus bytes it
        receives in node-to-node queries and responses) cannot
        legitimately exceed

        - *requesting*: ``max(k_i)`` redundant copies of everything it
          could ever want (custody cells plus samples), each carried as
          a full cell, plus one query per peer (a peer is queried at
          most once per slot) at the capped query size, and
        - *serving*: one capped query received from every peer plus the
          matching full-cell response.

        Anything above this ceiling means a retry loop is melting down,
        which is exactly what the checker exists to catch.
        """
        schedule = self.fetch_schedule
        max_k = max(schedule.redundancy)
        query_bytes = self.message_overhead_bytes + max_cells_per_query * 8
        response_bytes = (
            self.message_overhead_bytes + max_cells_per_query * self.cell_bytes
        )
        requesting = (
            max_k * (self.custody_cells + self.samples) * self.cell_bytes
            + num_nodes * query_bytes
        )
        serving = num_nodes * (query_bytes + response_bytes)
        return float(requesting + serving)

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @staticmethod
    def full() -> PandasParams:
        """The exact Danksharding target parameters from the paper."""
        return PandasParams()

    @staticmethod
    def reduced(factor: int = 8, samples: int | None = None) -> PandasParams:
        """Paper parameters with the grid scaled down by ``factor``.

        ``factor=8`` gives a 32x32 base grid (64x64 extended), one
        row/one column custody scaled to keep the same *fraction* of
        the grid in custody, and a sample count re-derived from the
        1e-9 false-positive bound for the smaller grid. Used for
        timing experiments; the protocol logic is scale-free.
        """
        if factor < 1 or 256 % factor:
            raise ValueError(f"factor must divide 256, got {factor}")
        base = 256 // factor
        custody = max(1, 8 // factor)
        params = PandasParams(
            base_rows=base,
            base_cols=base,
            custody_rows=custody,
            custody_cols=custody,
        )
        if samples is None:
            from repro.das.security import required_samples

            samples = required_samples(2 * base, 2 * base, target=1e-9)
        return replace(params, samples=samples)

    def with_schedule(self, schedule: FetchSchedule) -> PandasParams:
        """A copy of these parameters with a different fetch schedule."""
        return replace(self, fetch_schedule=schedule)

    def validate(self) -> None:
        """Sanity-check internal consistency; raises ValueError."""
        if self.custody_rows > self.ext_rows or self.custody_cols > self.ext_cols:
            raise ValueError("custody exceeds grid dimensions")
        if self.samples > self.total_cells:
            raise ValueError("cannot sample more cells than exist")
        if not 0 < self.deadline <= self.slot_duration:
            raise ValueError("deadline must lie within the slot")
