"""Discrete-event simulation engine.

The engine is the base substrate for every experiment in this
reproduction: it provides a virtual clock (in seconds, float), a binary
heap of scheduled events and cancellable timers. Protocol logic is
written as plain callbacks, mirroring the one-way, connectionless (UDP)
style of PANDAS: nothing blocks, everything is timer- or
message-driven.

Determinism: two runs with the same seeds execute events in the same
order. Ties on the timestamp are broken by a monotonically increasing
sequence number assigned at scheduling time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Protocol

__all__ = ["Event", "SimProfiler", "Simulator", "SimulationError"]


class SimProfiler(Protocol):
    """What :meth:`Simulator.set_profiler` accepts.

    ``run`` must invoke the callback exactly once; see
    :class:`repro.obs.profiler.CallbackProfiler` for the reference
    implementation.
    """

    def run(self, callback: Callable[[], None]) -> None: ...


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap is deterministic.
    ``cancelled`` events stay in the heap but are skipped when popped
    (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call repeatedly."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class Simulator:
    """A minimal, fast discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.call_after(0.4, lambda: print(sim.now))
        sim.run()

    The clock unit is the second; all PANDAS timings in the paper
    (400 ms rounds, 4 s deadline, 12 s slots) map naturally.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        # opt-in profiling hook (repro.obs.profiler): when set, every
        # executed callback is routed through profiler.run(callback).
        # Wall-clock only — simulated time and event order are untouched.
        self._profiler: SimProfiler | None = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> SimProfiler | None:
        return self._profiler

    def set_profiler(self, profiler: SimProfiler | None) -> None:
        """Attach (or detach, with None) a callback profiler.

        The profiler must expose ``run(callback)`` that calls the
        callback exactly once; see
        :class:`repro.obs.profiler.CallbackProfiler`.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past raises ``SimulationError``: silent
        time-travel is a classic source of non-reproducible runs.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when:.6f}, now is {self._now:.6f}"
            )
        event = Event(when, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next active event. Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            if self._profiler is None:
                event.callback()
            else:
                self._profiler.run(event.callback)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return even if the queue drained earlier, so that
        code reading ``sim.now`` observes the full window.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                executed += 1
                if self._profiler is None:
                    event.callback()
                else:
                    self._profiler.run(event.callback)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        The tie-break sequence counter restarts too, so a reset
        simulator schedules events with the same ``(time, seq)`` keys
        — and therefore the same execution order — as a fresh one.
        """
        self._queue.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
