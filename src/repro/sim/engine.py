"""Discrete-event simulation engine.

The engine is the base substrate for every experiment in this
reproduction: it provides a virtual clock (in seconds, float), a
calendar event queue and cancellable timers. Protocol logic is written
as plain callbacks, mirroring the one-way, connectionless (UDP) style
of PANDAS: nothing blocks, everything is timer- or message-driven.

Determinism: two runs with the same seeds execute events in the same
order. Ties on the timestamp are broken by a monotonically increasing
sequence number assigned at scheduling time — the pop order is the
total order on ``(time, seq)`` regardless of the queue backend.

Queue backends
--------------

``queue="calendar"`` (default) buckets events by integer tick
(``int(time * TICKS_PER_SECOND)``) and keeps a heap of non-empty tick
ids plus a small per-bucket heap. Pushes and pops then cost
``O(log bucket)`` instead of ``O(log total)``, and the per-entry
comparisons are C-level tuple compares — the difference between ~10k
and >100k events/sec at multi-thousand-node scale.

``queue="heap"`` is the original single binary heap, kept as an
equivalence oracle: both backends pop the exact same ``(time, seq)``
sequence, which the scale-regression suite pins with a property test.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterator
from typing import Protocol

__all__ = [
    "Event",
    "SimProfiler",
    "Simulator",
    "SimulationError",
    "TICKS_PER_SECOND",
]

# Bucket granularity of the calendar queue. ~1 ms buckets: fine enough
# that a busy slot spreads over thousands of buckets, coarse enough
# that bucket bookkeeping stays negligible.
TICKS_PER_SECOND = 1024

# A queue entry is (time, seq, event); comparisons never reach the
# Event because seq is unique.
_Entry = tuple[float, int, "Event"]


class SimProfiler(Protocol):
    """What :meth:`Simulator.set_profiler` accepts.

    ``run`` must invoke ``callback(*args)`` exactly once; see
    :class:`repro.obs.profiler.CallbackProfiler` for the reference
    implementation.
    """

    def run(self, callback: Callable[..., object], *args: object) -> None: ...


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Events order by ``(time, seq)`` so the queue is deterministic.
    ``cancelled`` events stay queued but are skipped when popped (lazy
    deletion), which keeps cancellation O(1). ``args`` are passed to
    the callback when it fires — hot paths schedule bound methods with
    arguments instead of allocating a fresh closure per event.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., object],
        args: tuple[object, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call repeatedly."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __lt__(self, other: Event) -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}{state})"


class _HeapQueue:
    """The original single binary heap over ``(time, seq, event)``."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[_Entry] = []

    def push(self, entry: _Entry) -> None:
        heapq.heappush(self._entries, entry)

    def pop(self) -> _Entry | None:
        if self._entries:
            return heapq.heappop(self._entries)
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Event]:
        for entry in self._entries:
            yield entry[2]

    def clear(self) -> None:
        self._entries.clear()


class _CalendarQueue:
    """Calendar queue: per-tick buckets plus a heap of non-empty ticks.

    Correctness: tick ids are monotone in time, so draining the
    smallest tick's bucket (itself a heap over ``(time, seq, event)``)
    before advancing yields the globally smallest entry — the pop
    sequence is identical to a single heap over all entries.
    """

    __slots__ = ("_buckets", "_ticks", "_len")

    def __init__(self) -> None:
        self._buckets: dict[int, list[_Entry]] = {}
        self._ticks: list[int] = []
        self._len = 0

    def push(self, entry: _Entry) -> None:
        tick = int(entry[0] * TICKS_PER_SECOND)
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [entry]
            heapq.heappush(self._ticks, tick)
        else:
            heapq.heappush(bucket, entry)
        self._len += 1

    def pop(self) -> _Entry | None:
        ticks = self._ticks
        buckets = self._buckets
        while ticks:
            bucket = buckets[ticks[0]]
            if bucket:
                self._len -= 1
                if len(bucket) == 1:
                    return bucket.pop()
                return heapq.heappop(bucket)
            del buckets[heapq.heappop(ticks)]
        return None

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[Event]:
        for bucket in self._buckets.values():
            for entry in bucket:
                yield entry[2]

    def clear(self) -> None:
        self._buckets.clear()
        self._ticks.clear()
        self._len = 0


_QUEUES: dict[str, type[_HeapQueue] | type[_CalendarQueue]] = {
    "heap": _HeapQueue,
    "calendar": _CalendarQueue,
}


class Simulator:
    """A minimal, fast discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.call_after(0.4, lambda: print(sim.now))
        sim.run()

    The clock unit is the second; all PANDAS timings in the paper
    (400 ms rounds, 4 s deadline, 12 s slots) map naturally.

    ``queue`` selects the event-queue backend: ``"calendar"``
    (default) or ``"heap"`` (the pre-scale-up binary heap, kept as an
    equivalence oracle for testing). Both execute events in the exact
    same order.
    """

    def __init__(self, queue: str = "calendar") -> None:
        try:
            queue_cls = _QUEUES[queue]
        except KeyError:
            raise SimulationError(
                f"unknown queue backend {queue!r}; choose from {sorted(_QUEUES)}"
            ) from None
        self._queue_kind = queue
        self._queue: _HeapQueue | _CalendarQueue = queue_cls()
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        # opt-in profiling hook (repro.obs.profiler): when set, every
        # executed callback is routed through profiler.run(callback).
        # Wall-clock only — simulated time and event order are untouched.
        self._profiler: SimProfiler | None = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled)."""
        return len(self._queue)

    @property
    def queue_kind(self) -> str:
        """Name of the active queue backend (``calendar`` or ``heap``)."""
        return self._queue_kind

    def iter_pending(self) -> Iterator[Event]:
        """Iterate over queued events (including cancelled ones).

        Order is unspecified — this is an inspection hook for
        invariant checkers, not an execution preview.
        """
        return iter(self._queue)

    # ------------------------------------------------------------------
    # profiling
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> SimProfiler | None:
        return self._profiler

    def set_profiler(self, profiler: SimProfiler | None) -> None:
        """Attach (or detach, with None) a callback profiler.

        The profiler must expose ``run(callback, *args)`` that calls
        the callback exactly once; see
        :class:`repro.obs.profiler.CallbackProfiler`.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def reserve_seq(self) -> int:
        """Allocate the next tie-break sequence number without scheduling.

        Fixes an event's position in the ``(time, seq)`` total order at
        decision time so it can be scheduled later via
        ``call_at(..., seq=...)``. The batched transport reserves pop
        order for every in-flight datagram at *send* time while keeping
        a single armed event per endpoint — making its delivery
        interleaving bit-identical to one-event-per-datagram
        scheduling, including exact-time ties against unrelated events.

        Each reserved number must be used for at most one scheduled
        event; reuse would forge duplicate ``(time, seq)`` keys.
        """
        return next(self._seq)

    def call_at(
        self,
        when: float,
        callback: Callable[..., object],
        *args: object,
        seq: int | None = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Scheduling in the past raises ``SimulationError``: silent
        time-travel is a classic source of non-reproducible runs.

        ``seq`` replays a number from :meth:`reserve_seq`; by default a
        fresh one is allocated here.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when:.6f}, now is {self._now:.6f}"
            )
        if seq is None:
            seq = next(self._seq)
        event = Event(when, seq, callback, args)
        self._queue.push((when, seq, event))
        return event

    def call_after(
        self, delay: float, callback: Callable[..., object], *args: object
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next active event. Returns False when idle."""
        queue = self._queue
        while True:
            entry = queue.pop()
            if entry is None:
                return False
            event = entry[2]
            if event.cancelled:
                continue
            self._now = entry[0]
            self._events_processed += 1
            if self._profiler is None:
                event.callback(*event.args)
            else:
                self._profiler.run(event.callback, *event.args)
            return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return even if the queue drained earlier, so that
        code reading ``sim.now`` observes the full window.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            while True:
                entry = queue.pop()
                if entry is None:
                    break
                event = entry[2]
                # Single cancelled-discard path: a popped cancelled
                # event is dropped no matter where the run stops, so
                # the until/max_events boundaries never resurrect it.
                if event.cancelled:
                    continue
                if (until is not None and entry[0] > until) or (
                    max_events is not None and executed >= max_events
                ):
                    # Re-queue under the same (time, seq): order of the
                    # remaining events is untouched.
                    queue.push(entry)
                    break
                self._now = entry[0]
                self._events_processed += 1
                executed += 1
                if self._profiler is None:
                    event.callback(*event.args)
                else:
                    self._profiler.run(event.callback, *event.args)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        The tie-break sequence counter restarts too, so a reset
        simulator schedules events with the same ``(time, seq)`` keys
        — and therefore the same execution order — as a fresh one.
        """
        self._queue.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
