"""Discrete-event simulation substrate (engine, RNG streams, metrics)."""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.metrics import Counter2D, MetricsRecorder, PhaseTimes
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Counter2D",
    "MetricsRecorder",
    "PhaseTimes",
    "RngRegistry",
    "derive_seed",
]
