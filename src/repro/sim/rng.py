"""Seeded random-number stream management.

Reproducible distributed-systems simulations need *independent* RNG
streams per component: if the network and the protocol shared one
stream, changing a seeding policy would perturb packet-loss draws and
the comparison between policies would be noise, not signal.

``RngRegistry`` derives one ``random.Random`` per label from a master
seed with a stable hash, so the loss process, the latency placement,
each node's sampling choices, etc., are all decoupled.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "STREAM_OWNERS", "derive_seed"]

# Stream-ownership registry: the first label of every named stream maps
# to the module(s) allowed to draw from it (path suffixes relative to
# the source root). Stream independence is only as good as stream
# *ownership* — two components quietly sharing the "samples" stream
# would re-couple their draws and make every A/B comparison noise.
# reprolint rule RL008 enforces this mapping statically; add the label
# here (with its owner) before drawing from a new stream.
STREAM_OWNERS: dict[str, tuple[str, ...]] = {
    "faults": ("faults/adversary.py", "faults/injector.py"),
    "dht-boot": ("baselines/dht_das.py",),
    "samples": (
        "core/node.py",
        "baselines/dht_das.py",
        "baselines/gossipsub_das.py",
    ),
    "fetch": ("core/node.py", "baselines/gossipsub_das.py"),
    "gossip-mesh": ("baselines/gossipsub_das.py",),
    "peerdas-fallback": ("baselines/peerdas_das.py",),
    "peerdas-mesh": ("baselines/peerdas_das.py",),
    "churn": ("experiments/churn.py",),
    "churn-topology": ("experiments/churn.py",),
    "loss": ("experiments/scenario.py",),
    "topology": ("experiments/scenario.py",),
    "dead": ("experiments/scenario.py",),
    "view": ("experiments/scenario.py",),
    "block-mesh": ("experiments/scenario.py",),
    "proposer": ("experiments/scenario.py",),
    "pipeline-probe-topology": ("experiments/pipeline.py",),
    "pipeline-probe": ("experiments/pipeline.py",),
    "retrieval": ("core/retrieval.py",),
    "seeding": ("core/builder.py",),
}


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from a master seed and labels.

    Uses SHA-256 so that nearby master seeds or labels do not produce
    correlated children (Python's ``hash`` is neither stable across
    runs with strings nor collision-careful).
    """
    h = hashlib.sha256()
    h.update(str(master_seed).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "big")


class RngRegistry:
    """Lazily creates independent named ``random.Random`` streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[tuple[str, ...], random.Random] = {}

    def stream(self, *labels: object) -> random.Random:
        """Return the RNG for ``labels``, creating it on first use."""
        key = tuple(repr(label) for label in labels)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, *labels))
            self._streams[key] = rng
        return rng

    def fork(self, *labels: object) -> RngRegistry:
        """Return a child registry with an independent master seed."""
        return RngRegistry(derive_seed(self.master_seed, "fork", *labels))
