"""Metric collection for simulation runs.

The paper's evaluation reports, per node and per slot: the times to
seeding / consolidation / sampling, message counts, and traffic volume
(both directions). ``MetricsRecorder`` collects these as flat
counters and event marks keyed by ``(slot, node_id)``; the analysis
layer turns them into CDFs, percentiles and the rows of Table 1.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field
from statistics import mean, pstdev
from collections.abc import Hashable, Iterable, Iterator
from typing import Protocol, runtime_checkable

__all__ = ["Counter2D", "MetricsRecorder", "MetricsTap", "PhaseTimes"]


@runtime_checkable
class MetricsTap(Protocol):
    """Live observer of recorder writes (duck-typed; see
    :class:`repro.obs.telemetry.Telemetry`).

    A tap is *pure observation*: implementations must not mutate
    protocol state, draw RNG or schedule simulator events — the
    recorder's snapshot/fingerprint never includes the tap, and the
    behavior-neutrality tests pin fingerprints with and without one.
    """

    def on_phase(self, phase: str, slot: Hashable, node: Hashable, t: float) -> None: ...

    def on_shed(self, kind: str, amount: float) -> None: ...

    def on_queue_drop(self, reason: str, amount: float) -> None: ...

    def on_queue_depth(self, gauge: str, depth: float) -> None: ...

    def on_fault(self, kind: str, amount: float) -> None: ...

    def on_defense(self, kind: str, amount: float) -> None: ...


class Counter2D:
    """A ``(slot, node) -> float`` accumulator with dict ergonomics.

    Storage is a per-slot index (``slot -> node -> value``) so the
    hot extraction paths — :meth:`per_node` and :meth:`values` for one
    slot, called once per slot by every report — touch only that
    slot's entries instead of scanning every (slot, node) pair of the
    whole run.
    """

    def __init__(self) -> None:
        self._per_slot: dict[Hashable, dict[Hashable, float]] = {}
        self._size = 0

    def add(self, slot: Hashable, node: Hashable, amount: float = 1.0) -> None:
        nodes = self._per_slot.get(slot)
        if nodes is None:
            nodes = self._per_slot[slot] = {}
        prev = nodes.get(node)
        if prev is None:
            self._size += 1
            nodes[node] = amount + 0.0  # callers may pass ints; store floats
        else:
            nodes[node] = prev + amount

    def get(self, slot: Hashable, node: Hashable) -> float:
        nodes = self._per_slot.get(slot)
        if nodes is None:
            return 0.0
        return nodes.get(node, 0.0)

    def per_node(self, slot: Hashable) -> dict[Hashable, float]:
        """All values for one slot, keyed by node."""
        return dict(self._per_slot.get(slot, {}))

    def items(self) -> Iterator[tuple[tuple[Hashable, Hashable], float]]:
        """Iterate ``((slot, node), value)`` pairs, flat-dict style."""
        for slot, nodes in self._per_slot.items():
            for node, value in nodes.items():
                yield (slot, node), value

    def values(self, slot: Hashable | None = None) -> list[float]:
        if slot is None:
            return [v for nodes in self._per_slot.values() for v in nodes.values()]
        return list(self._per_slot.get(slot, {}).values())

    def total(self, slot: Hashable | None = None) -> float:
        return sum(self.values(slot))

    def __len__(self) -> int:
        return self._size

    @property
    def _data(self) -> dict[tuple[Hashable, Hashable], float]:
        """Flat ``(slot, node) -> value`` view (pre-index compatibility).

        Read-only: mutations to the returned dict are not written back.
        """
        return dict(self.items())


@dataclass
class PhaseTimes:
    """Completion timestamps (seconds from slot start) for one node/slot.

    ``None`` means the phase never completed within the simulated
    window — those entries count as deadline misses.
    """

    seeding: float | None = None
    consolidation: float | None = None
    sampling: float | None = None
    block: float | None = None


@dataclass
class MetricsRecorder:
    """Collects everything the evaluation section reports.

    All times are stored relative to the slot start, matching the
    paper's "time from the start of the slot" x-axes. The recorder is
    deliberately dumb — pure storage — so protocol code stays easy to
    audit and the analysis stays in one place.
    """

    phase_times: dict[tuple[Hashable, Hashable], PhaseTimes] = field(default_factory=dict)
    messages_sent: Counter2D = field(default_factory=Counter2D)
    messages_received: Counter2D = field(default_factory=Counter2D)
    bytes_sent: Counter2D = field(default_factory=Counter2D)
    bytes_received: Counter2D = field(default_factory=Counter2D)
    # fetch-phase traffic only (queries + responses, both directions),
    # the quantity plotted in Figures 10, 13b/c and 14b/c
    fetch_messages: Counter2D = field(default_factory=Counter2D)
    fetch_bytes: Counter2D = field(default_factory=Counter2D)
    builder_bytes_sent: dict[Hashable, float] = field(default_factory=lambda: defaultdict(float))
    builder_messages_sent: dict[Hashable, float] = field(default_factory=lambda: defaultdict(float))
    round_stats: dict[tuple[Hashable, Hashable, int], dict[str, float]] = field(
        default_factory=dict
    )
    custom: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    # realized fault events by kind (link_drop, duplicate, crash, ...),
    # recorded by the fault injector so fault figures report the actual
    # injected load, not just the configured probabilities
    fault_counts: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    # node-side defense events by kind (resp_unsolicited, cells_invalid,
    # rate_limited, quarantine, ...), recorded by PandasNode's
    # validation layer; adversarial experiments report these alongside
    # fault_counts to show how much hostile traffic was absorbed
    defense_counts: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    # --- overload control (sustained pipeline) ------------------------
    # Admission-control load shedding by kind (retrieval_admission,
    # pending_shed, ...), bounded-queue drops by reason (overflow, ...),
    # and high-water queue-depth gauges by name. All three stay empty on
    # legacy single-slot runs, and snapshot() only appends them when
    # non-empty, so pinned fingerprints of runs without overload
    # machinery are untouched.
    shed_counts: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    queue_drop_counts: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    queue_depth_peaks: dict[str, float] = field(default_factory=dict)
    # Optional live observer (repro.obs.telemetry). Excluded from
    # snapshot()/fingerprint() and from dataclass comparison: a tap is
    # a read-only mirror of writes, never part of recorded behavior.
    tap: MetricsTap | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # phase completion marks
    # ------------------------------------------------------------------
    def _times(self, slot: Hashable, node: Hashable) -> PhaseTimes:
        key = (slot, node)
        times = self.phase_times.get(key)
        if times is None:
            times = PhaseTimes()
            self.phase_times[key] = times
        return times

    def mark_seeding(self, slot: Hashable, node: Hashable, t: float) -> None:
        times = self._times(slot, node)
        if times.seeding is None:
            times.seeding = t
            if self.tap is not None:
                self.tap.on_phase("seeding", slot, node, t)

    def mark_consolidation(self, slot: Hashable, node: Hashable, t: float) -> None:
        times = self._times(slot, node)
        if times.consolidation is None:
            times.consolidation = t
            if self.tap is not None:
                self.tap.on_phase("consolidation", slot, node, t)

    def mark_sampling(self, slot: Hashable, node: Hashable, t: float) -> None:
        times = self._times(slot, node)
        if times.sampling is None:
            times.sampling = t
            if self.tap is not None:
                self.tap.on_phase("sampling", slot, node, t)

    def mark_block(self, slot: Hashable, node: Hashable, t: float) -> None:
        times = self._times(slot, node)
        if times.block is None:
            times.block = t
            if self.tap is not None:
                self.tap.on_phase("block", slot, node, t)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def record_send(self, slot: Hashable, node: Hashable, size: int) -> None:
        self.messages_sent.add(slot, node)
        self.bytes_sent.add(slot, node, size)

    def record_receive(self, slot: Hashable, node: Hashable, size: int) -> None:
        self.messages_received.add(slot, node)
        self.bytes_received.add(slot, node, size)

    def record_builder_send(self, slot: Hashable, size: int) -> None:
        self.builder_messages_sent[slot] += 1
        self.builder_bytes_sent[slot] += size

    def record_fault(self, kind: str, amount: float = 1.0) -> None:
        """Count one injected fault event of ``kind``."""
        self.fault_counts[kind] += amount
        if self.tap is not None:
            self.tap.on_fault(kind, amount)

    def record_defense(self, kind: str, amount: float = 1.0) -> None:
        """Count one node-side defense event of ``kind``."""
        self.defense_counts[kind] += amount
        if self.tap is not None:
            self.tap.on_defense(kind, amount)

    # ------------------------------------------------------------------
    # overload control (bounded queues, admission, backlog gauges)
    # ------------------------------------------------------------------
    def record_shed(self, kind: str, amount: float = 1.0) -> None:
        """Count load shed by admission control (``kind`` = what/why)."""
        self.shed_counts[kind] += amount
        if self.tap is not None:
            self.tap.on_shed(kind, amount)

    def record_queue_drop(self, reason: str, amount: float = 1.0) -> None:
        """Count one bounded-queue rejection (e.g. transport overflow)."""
        self.queue_drop_counts[reason] += amount
        if self.tap is not None:
            self.tap.on_queue_drop(reason, amount)

    def observe_queue_depth(self, gauge: str, depth: float) -> None:
        """Track the high-water mark of a named queue-depth gauge."""
        prev = self.queue_depth_peaks.get(gauge)
        if prev is None or depth > prev:
            self.queue_depth_peaks[gauge] = depth
        if self.tap is not None:
            self.tap.on_queue_depth(gauge, depth)

    # ------------------------------------------------------------------
    # fetching round telemetry (Table 1)
    # ------------------------------------------------------------------
    def record_round(
        self, slot: Hashable, node: Hashable, round_index: int, **stats: float
    ) -> None:
        key = (slot, node, round_index)
        entry = self.round_stats.setdefault(key, defaultdict(float))
        for name, value in stats.items():
            entry[name] += value

    # ------------------------------------------------------------------
    # extraction helpers
    # ------------------------------------------------------------------
    def phase_series(
        self, phase: str, slots: Iterable[Hashable] | None = None
    ) -> list[float | None]:
        """All completion times for ``phase`` across (slot, node) pairs.

        Missing completions are returned as ``None`` so callers can
        compute deadline-miss fractions honestly rather than silently
        dropping the slowest nodes.
        """
        wanted = set(slots) if slots is not None else None
        series: list[float | None] = []
        for (slot, _node), times in self.phase_times.items():
            if wanted is not None and slot not in wanted:
                continue
            series.append(getattr(times, phase))
        return series

    def snapshot(self) -> tuple[object, ...]:
        """Canonical, order-independent form of everything recorded.

        Two runs are behaviourally identical iff their snapshots are
        equal — the basis of the cross-run determinism guarantee for
        (faulty) replays.
        """

        def counter(c: Counter2D) -> tuple[object, ...]:
            return tuple(sorted(c.items()))

        base: tuple[object, ...] = (
            tuple(
                sorted(
                    (key, (t.seeding, t.consolidation, t.sampling, t.block))
                    for key, t in self.phase_times.items()
                )
            ),
            counter(self.messages_sent),
            counter(self.messages_received),
            counter(self.bytes_sent),
            counter(self.bytes_received),
            counter(self.fetch_messages),
            counter(self.fetch_bytes),
            tuple(sorted(self.builder_bytes_sent.items())),
            tuple(sorted(self.builder_messages_sent.items())),
            tuple(
                sorted(
                    (key, tuple(sorted(stats.items())))
                    for key, stats in self.round_stats.items()
                )
            ),
            tuple(sorted(self.custom.items())),
            tuple(sorted(self.fault_counts.items())),
            tuple(sorted(self.defense_counts.items())),
        )
        # The overload section rides along only when something was
        # recorded: legacy runs keep their exact historical snapshot
        # shape (and therefore their pinned fingerprints).
        overload = (
            tuple(sorted(self.shed_counts.items())),
            tuple(sorted(self.queue_drop_counts.items())),
            tuple(sorted(self.queue_depth_peaks.items())),
        )
        if any(overload):
            return base + (overload,)
        return base

    def fingerprint(self) -> str:
        """SHA-256 digest of :meth:`snapshot` for bit-identity checks."""
        return hashlib.sha256(repr(self.snapshot()).encode()).hexdigest()

    def summary(self) -> dict[str, object]:
        """Flat run totals for machine-readable reports (``--json``)."""
        slots = sorted({slot for (slot, _node) in self.phase_times})
        return {
            "slots": slots,
            "nodes_tracked": len({node for (_slot, node) in self.phase_times}),
            "messages_sent": self.messages_sent.total(),
            "messages_received": self.messages_received.total(),
            "bytes_sent": self.bytes_sent.total(),
            "bytes_received": self.bytes_received.total(),
            "fetch_messages": self.fetch_messages.total(),
            "fetch_bytes": self.fetch_bytes.total(),
            "builder_messages": sum(self.builder_messages_sent.values()),
            "builder_bytes": sum(self.builder_bytes_sent.values()),
            "faults": dict(sorted(self.fault_counts.items())),
            "defenses": dict(sorted(self.defense_counts.items())),
            "sheds": dict(sorted(self.shed_counts.items())),
            "queue_drops": dict(sorted(self.queue_drop_counts.items())),
            "queue_depth_peaks": dict(sorted(self.queue_depth_peaks.items())),
        }

    def round_table(self, max_round: int = 4) -> dict[int, dict[str, tuple[float, float]]]:
        """Aggregate round telemetry into Table-1-style (mean, std) rows."""
        per_round: dict[int, dict[str, list[float]]] = defaultdict(lambda: defaultdict(list))
        for (_slot, _node, rnd), stats in self.round_stats.items():
            if rnd > max_round:
                continue
            for name, value in stats.items():
                per_round[rnd][name].append(value)
        table: dict[int, dict[str, tuple[float, float]]] = {}
        for rnd, stats in sorted(per_round.items()):
            table[rnd] = {
                name: (mean(values), pstdev(values) if len(values) > 1 else 0.0)
                for name, values in stats.items()
            }
        return table
