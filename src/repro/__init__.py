"""PANDAS reproduction: peer-to-peer data availability sampling within
Ethereum consensus timebounds (Middleware 2025).

Public API tour:

- :mod:`repro.params` — Danksharding/PANDAS parameter presets;
- :mod:`repro.core` — the protocol: assignment, seeding policies,
  adaptive fetching, node and builder processes;
- :mod:`repro.experiments` — scenario drivers and per-figure runners;
- :mod:`repro.baselines` — GossipSub and Kademlia DAS baselines;
- :mod:`repro.das` — sampling security math;
- :mod:`repro.erasure`, :mod:`repro.crypto`, :mod:`repro.net`,
  :mod:`repro.gossip`, :mod:`repro.dht`, :mod:`repro.consensus`,
  :mod:`repro.sim` — the substrates everything runs on.
"""

from repro.params import DEADLINE_SECONDS, SLOT_SECONDS, FetchSchedule, PandasParams

__version__ = "1.0.0"

__all__ = [
    "DEADLINE_SECONDS",
    "SLOT_SECONDS",
    "FetchSchedule",
    "PandasParams",
    "__version__",
]
