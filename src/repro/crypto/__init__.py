"""Simulated cryptographic substrate (identities, KZG, RANDAO)."""

from repro.crypto.keys import SIGNATURE_BYTES, KeyPair, NodeId, Signature, node_id_from_pubkey
from repro.crypto.kzg import (
    CELL_VERIFY_SECONDS,
    COMMITMENT_BYTES,
    PROOF_BYTES,
    KzgCommitment,
    KzgProof,
    commit_blob,
    prove_cell,
    verify_cell,
)
from repro.crypto.randao import RandaoBeacon

__all__ = [
    "SIGNATURE_BYTES",
    "KeyPair",
    "NodeId",
    "Signature",
    "node_id_from_pubkey",
    "CELL_VERIFY_SECONDS",
    "COMMITMENT_BYTES",
    "PROOF_BYTES",
    "KzgCommitment",
    "KzgProof",
    "commit_blob",
    "prove_cell",
    "verify_cell",
    "RandaoBeacon",
]
