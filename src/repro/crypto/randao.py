"""RANDAO-style epoch randomness.

Ethereum consensus derives a globally verifiable pseudo-random epoch
seed from validator-contributed randomness, known one epoch (32 slots,
~6.4 minutes) in advance. PANDAS reuses that seed for its cell-to-node
assignment function so the assignment is deterministic across nodes
yet *short-lived and unpredictable* — the property that defeats
eclipse/censorship placement attacks (Section 9: an attacker cannot
crawl ENRs fast enough to position Sybils before the assignment
rotates).

We model the beacon as a seeded hash chain: unpredictable without the
master seed, identical at every honest participant — exactly the
interface the protocol consumes.
"""

from __future__ import annotations

import hashlib

__all__ = ["RandaoBeacon"]


class RandaoBeacon:
    """Deterministic per-epoch seeds derived from a chain genesis seed."""

    def __init__(self, genesis_seed: int) -> None:
        self._genesis = genesis_seed

    def epoch_seed(self, epoch: int) -> int:
        """The 256-bit seed for ``epoch`` (available one epoch early)."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        h = hashlib.sha256()
        h.update(b"randao")
        h.update(str(self._genesis).encode())
        h.update(epoch.to_bytes(8, "big"))
        return int.from_bytes(h.digest(), "big")

    def slot_seed(self, epoch: int, slot_in_epoch: int, domain: str) -> int:
        """A per-slot, per-domain sub-seed (proposer election, committees...)."""
        h = hashlib.sha256()
        h.update(self.epoch_seed(epoch).to_bytes(32, "big"))
        h.update(slot_in_epoch.to_bytes(4, "big"))
        h.update(domain.encode())
        return int.from_bytes(h.digest(), "big")
