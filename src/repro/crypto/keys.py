"""Node identities and message signatures (simulated).

Ethereum nodes are identified by the hash of their public key and
publish ENRs (id, public key, IP/port) through the discovery DHT. The
paper's messages are authenticated by digital signatures; the proposer
signs a binding of the selected builder's identity so nodes can
recognize legitimate seed traffic before the block arrives.

Real secp256k1/BLS signatures are irrelevant to DAS *timing* (only
their byte sizes and verification latency matter), so we substitute a
deterministic HMAC scheme over SHA-256: same interface, same wire
sizes, actually verifiable in tests, zero dependencies. A module-level
registry maps public keys to their HMAC secrets, standing in for the
asymmetric math; we model rational (not key-forging) adversaries, so
nothing measured depends on real unforgeability. DESIGN.md records the
substitution.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

__all__ = ["KeyPair", "NodeId", "Signature", "node_id_from_pubkey", "SIGNATURE_BYTES"]

SIGNATURE_BYTES = 64  # size of a secp256k1 signature on the wire

NodeId = int  # 256-bit integer, also the Kademlia keyspace


def node_id_from_pubkey(pubkey: bytes) -> NodeId:
    """Derive the 256-bit node ID as the hash of the public key."""
    return int.from_bytes(hashlib.sha256(pubkey).digest(), "big")


@dataclass(frozen=True)
class Signature:
    """A simulated signature (32 B tag + 32 B signer binding)."""

    tag: bytes

    @property
    def size(self) -> int:
        return SIGNATURE_BYTES


# Stands in for asymmetric verification: maps public key -> HMAC secret.
# Keyed by content (exact-key lookups only, never iterated), so stale
# entries from a prior run cannot change any later run's behaviour.
_SECRET_BY_PUBLIC: dict[bytes, bytes] = {}  # reprolint: disable=RL009 -- content-addressed crypto stand-in; write-once per key, order never observed


class KeyPair:
    """A deterministic keypair derived from an integer seed."""

    def __init__(self, seed: int) -> None:
        self._secret = hashlib.sha256(b"priv|" + str(seed).encode()).digest()
        self.public = hashlib.sha256(b"pub|" + self._secret).digest()
        self.node_id: NodeId = node_id_from_pubkey(self.public)
        _SECRET_BY_PUBLIC[self.public] = self._secret

    def sign(self, message: bytes) -> Signature:
        """Sign ``message``; the tag embeds the signer's public key."""
        tag = hmac.new(self._secret, message, hashlib.sha256).digest()
        return Signature(tag + self.public[:32])

    @staticmethod
    def verify(public: bytes, message: bytes, signature: Signature) -> bool:
        """Check ``signature`` on ``message`` under ``public``.

        Fails on: unknown key, truncated signature, signer-binding
        mismatch, or a tampered message.
        """
        if len(signature.tag) != SIGNATURE_BYTES:
            return False
        if signature.tag[32:] != public[:32]:
            return False
        secret = _SECRET_BY_PUBLIC.get(public)
        if secret is None:
            return False
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.tag[:32])
