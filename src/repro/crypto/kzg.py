"""Simulated KZG polynomial commitments (Figure 2's KZGC / KZGP).

The real scheme (Kate-Zaverucha-Goldberg over BLS12-381) binds each
cell to a 48 B commitment registered in the blob-carrying transaction
via a 48 B per-cell proof. For DAS behaviour only three properties
matter:

1. a commitment is a compact binding digest of the blob;
2. each cell ships with a constant-size proof checkable against the
   commitment (so nodes never accept corrupted cells);
3. verification has a small, configurable CPU cost.

We realize 1-2 with SHA-256 (proof = H(commitment || cell index ||
cell bytes), truncated to 48 B) and expose 3 as a constant the
consensus layer can add to its verification latency. This preserves
every measured behaviour; it is *not* succinct or hiding, which the
experiments never rely on. DESIGN.md records the substitution.
"""

from __future__ import annotations

import hashlib
import hmac
from collections.abc import Sequence
from dataclasses import dataclass

from repro.erasure.blob import ExtendedBlob

__all__ = [
    "KzgCommitment",
    "KzgProof",
    "commit_blob",
    "prove_cell",
    "verify_cell",
    "verify_cells",
]

COMMITMENT_BYTES = 48
PROOF_BYTES = 48

# CPU time to verify one cell proof, used by consensus timing models.
# Order of magnitude of a real KZG pairing check on commodity hardware.
CELL_VERIFY_SECONDS = 0.0002


@dataclass(frozen=True)
class KzgCommitment:
    """The 48 B commitment registered in the blob-carrying transaction."""

    digest: bytes

    @property
    def size(self) -> int:
        return COMMITMENT_BYTES


@dataclass(frozen=True)
class KzgProof:
    """The 48 B per-cell proof attached to every cell on the wire."""

    digest: bytes

    @property
    def size(self) -> int:
        return PROOF_BYTES


def commit_blob(blob: ExtendedBlob) -> KzgCommitment:
    """Commit to the extended blob content.

    A real deployment commits per-row polynomials; a single digest of
    all rows keeps the same interface with one object.
    """
    h = hashlib.sha384()
    h.update(b"kzg-commitment")
    h.update(blob.cells.tobytes())
    return KzgCommitment(h.digest()[:COMMITMENT_BYTES])


def prove_cell(commitment: KzgCommitment, cell_index: int, cell: bytes) -> KzgProof:
    """Produce the proof binding ``cell`` at ``cell_index`` to the commitment."""
    h = hashlib.sha384()
    h.update(b"kzg-proof")
    h.update(commitment.digest)
    h.update(cell_index.to_bytes(8, "big"))
    h.update(cell)
    return KzgProof(h.digest()[:PROOF_BYTES])


def verify_cell(
    commitment: KzgCommitment,
    cell_index: int,
    cell: bytes,
    proof: KzgProof | None,
) -> bool:
    """Check a cell+proof against the commitment. Constant time-ish."""
    if proof is None or len(proof.digest) != PROOF_BYTES:
        return False
    expected = prove_cell(commitment, cell_index, cell)
    return hmac.compare_digest(expected.digest, proof.digest)


def verify_cells(
    commitment: KzgCommitment,
    cells: Sequence[tuple[int, bytes, KzgProof | None]],
) -> list[bool]:
    """Verify a batch of ``(cell_index, cell, proof)`` against one commitment.

    Equivalent to mapping :func:`verify_cell`, but the domain tag and
    commitment digest are absorbed into the hash state once and the
    state is ``copy()``-ed per cell — a real RS node verifies whole
    response batches (up to 256 cells per line) against the same
    commitment, so the shared prefix dominates the per-cell work for
    the small cells used in reduced grids.
    """
    prefix = hashlib.sha384()
    prefix.update(b"kzg-proof")
    prefix.update(commitment.digest)
    results: list[bool] = []
    for cell_index, cell, proof in cells:
        if proof is None or len(proof.digest) != PROOF_BYTES:
            results.append(False)
            continue
        h = prefix.copy()
        h.update(cell_index.to_bytes(8, "big"))
        h.update(cell)
        results.append(hmac.compare_digest(h.digest()[:PROOF_BYTES], proof.digest))
    return results
