"""Runtime protocol-invariant checking for (faulty) scenario runs.

``tests/test_protocol_invariants.py`` asserts message-level properties
post-hoc on recorded traffic. This module is the reusable, online
version: an :class:`InvariantChecker` attaches to a live scenario and
enforces, *while the run executes and under any fault mix*:

- **I1 — causality**: no datagram is delivered before it was sent, and
  observed simulation time never goes backwards (the engine already
  refuses to schedule into the past; this catches clock misuse too);
- **I2 — bounded fetch traffic**: no node's per-slot fetch traffic
  exceeds the parameter-derived ceiling (catches retry loops that a
  fault mix could otherwise send into a meltdown);
- **I3 — honest consolidation**: a node is marked
  consolidation-complete only when every one of its custody lines is
  actually fully held or reconstructable;
- **I4 — honest sampling**: sampling success is only recorded when all
  ``params.samples`` (73 at full scale) sample cells are verified held,
  and never with a negative completion time;
- **I5 — no unbounded backlog**: whenever queue bounds are configured
  (transport ``max_inbox``, node ``pending_request_limit``, retrieval
  admission), no live queue depth ever exceeds its bound. Depth checks
  are O(1) against live gauges on every delivery, plus a final sweep
  over every endpoint/node — a leak that only shows up between
  deliveries still fails at :meth:`InvariantChecker.check_final`.

Violations raise :class:`InvariantViolation` (an ``AssertionError``
subclass, so plain pytest runs fail loudly) at the moment the bad
transition happens, which keeps the offending event on the stack.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import TYPE_CHECKING, Any

from repro.net.transport import Datagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.scenario import BaseScenario

__all__ = ["InvariantChecker", "InvariantViolation"]

_TIME_EPS = 1e-9


class InvariantViolation(AssertionError):
    """A protocol invariant was broken during a simulated run."""


class InvariantChecker:
    """Watches one scenario run; see module docstring for the checks.

    ``fetch_bound_factor`` loosens/tightens I2 relative to
    ``PandasParams.fetch_bytes_invariant_bound`` (1.0 is already
    generous: the bound is a physical ceiling, not a performance
    target).
    """

    def __init__(self, scenario: BaseScenario, fetch_bound_factor: float = 1.0) -> None:
        self.scenario = scenario
        self.fetch_bound_factor = fetch_bound_factor
        self.checks_run = 0
        self._last_seen_now: float = 0.0
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> InvariantChecker:
        """Hook transport observers and wrap the metrics marks."""
        if self._installed:
            raise RuntimeError("invariant checker already installed")
        self._installed = True
        network = self.scenario.network
        network.on_send.append(self._on_send)
        network.on_deliver.append(self._on_deliver)
        metrics = self.scenario.metrics
        self._orig_mark_consolidation = metrics.mark_consolidation
        self._orig_mark_sampling = metrics.mark_sampling
        metrics.mark_consolidation = self._checked_consolidation  # type: ignore[method-assign]
        metrics.mark_sampling = self._checked_sampling  # type: ignore[method-assign]
        return self

    # ------------------------------------------------------------------
    # I1: causality
    # ------------------------------------------------------------------
    def _observe_clock(self) -> None:
        now = self.scenario.sim.now
        if now < self._last_seen_now - _TIME_EPS:
            raise InvariantViolation(
                f"simulation time went backwards: {now:.6f} after {self._last_seen_now:.6f}"
            )
        self._last_seen_now = now

    def _on_send(self, dgram: Datagram) -> None:
        self.checks_run += 1
        self._observe_clock()

    def _on_deliver(self, dgram: Datagram) -> None:
        self.checks_run += 1
        self._observe_clock()
        if dgram.sent_at > self.scenario.sim.now + _TIME_EPS:
            raise InvariantViolation(
                f"datagram {dgram.src}->{dgram.dst} delivered at "
                f"{self.scenario.sim.now:.6f} before being sent at {dgram.sent_at:.6f}"
            )
        self._check_backlog_bounds(dgram.dst)

    # ------------------------------------------------------------------
    # I5: bounded backlog (only active when bounds are configured)
    # ------------------------------------------------------------------
    def _check_backlog_bounds(self, address: int | None = None) -> None:
        network = self.scenario.network
        max_inbox = getattr(network, "max_inbox", None)
        if max_inbox is not None:
            self.checks_run += 1
            if address is not None:
                depths = ((address, network.queue_depth(address)),)
            else:
                depths = tuple(
                    (addr, network.queue_depth(addr)) for addr in network.addresses
                )
            for addr, depth in depths:
                if depth > max_inbox:
                    raise InvariantViolation(
                        f"endpoint {addr} holds {depth} in-flight datagrams, "
                        f"bounded inbox is {max_inbox}"
                    )
        limit = getattr(self.scenario.params, "pending_request_limit", None)
        if limit is None:
            return
        nodes = getattr(self.scenario, "nodes", None)
        if not nodes:
            return
        if address is not None:
            candidates = [nodes.get(address)]
        else:
            candidates = list(nodes.values())
        for node_obj in candidates:
            if node_obj is None or not hasattr(node_obj, "pending_depth"):
                continue
            self.checks_run += 1
            slots = getattr(node_obj, "_slots", {})
            for slot in slots:
                depth = node_obj.pending_depth(slot)
                if depth > limit:
                    raise InvariantViolation(
                        f"node {getattr(node_obj, 'node_id', '?')} buffered "
                        f"{depth} request remainders for slot {slot}, "
                        f"pending_request_limit is {limit}"
                    )

    # ------------------------------------------------------------------
    # I3 / I4: completion marks must reflect real cell state
    # ------------------------------------------------------------------
    def _node_cells(self, slot: Hashable, node: Hashable) -> Any | None:
        nodes = getattr(self.scenario, "nodes", None)
        if not nodes:
            return None
        node_obj = nodes.get(node)
        if node_obj is None or not hasattr(node_obj, "slot_cells"):
            return None
        return node_obj.slot_cells(slot)

    def _checked_consolidation(self, slot: Hashable, node: Hashable, t: float) -> None:
        self.checks_run += 1
        if t < -_TIME_EPS:
            raise InvariantViolation(
                f"node {node} consolidation marked at negative time {t:.6f}"
            )
        state = self._node_cells(slot, node)
        if state is not None:
            for line in state.custody_lines:
                if not state.line_complete(line):
                    raise InvariantViolation(
                        f"node {node} marked consolidation-complete for slot {slot} "
                        f"with custody line {line} at {state.line_count(line)} cells "
                        "(not reconstructable)"
                    )
        self._orig_mark_consolidation(slot, node, t)

    def _checked_sampling(self, slot: Hashable, node: Hashable, t: float) -> None:
        self.checks_run += 1
        if t < -_TIME_EPS:
            raise InvariantViolation(
                f"node {node} sampling marked at negative time {t:.6f}"
            )
        state = self._node_cells(slot, node)
        if state is not None:
            if len(state.samples) != self.scenario.params.samples:
                raise InvariantViolation(
                    f"node {node} sampled {len(state.samples)} cells, protocol "
                    f"requires {self.scenario.params.samples}"
                )
            missing = state.missing_samples()
            if missing:
                raise InvariantViolation(
                    f"node {node} marked sampling-complete for slot {slot} with "
                    f"{len(missing)} sample cells unverified"
                )
        self._orig_mark_sampling(slot, node, t)

    # ------------------------------------------------------------------
    # end-of-run checks (I1 tail + I2)
    # ------------------------------------------------------------------
    def check_final(self) -> None:
        """Run the whole-run invariants after the last slot."""
        scenario = self.scenario
        sim = scenario.sim
        # I5 full sweep: every endpoint and every node, not just the
        # ones that happened to receive the last datagrams
        self._check_backlog_bounds()
        for event in sim.iter_pending():
            self.checks_run += 1
            if event.active and event.time < sim.now - _TIME_EPS:
                raise InvariantViolation(
                    f"pending event scheduled at {event.time:.6f}, now {sim.now:.6f}"
                )
        bound = self.fetch_bytes_bound()
        byzantine = getattr(scenario, "byzantine_nodes", set())
        for (slot, node), value in scenario.metrics.fetch_bytes.items():
            self.checks_run += 1
            if node in byzantine:
                # Byzantine nodes do not follow the protocol — a
                # flooder's egress legitimately dwarfs the honest
                # ceiling. Honest nodes stay bounded even under attack
                # (the whole point of checking I2 in adversarial runs).
                continue
            if value > bound:
                raise InvariantViolation(
                    f"node {node} fetch traffic for slot {slot} is {value:.0f} B, "
                    f"invariant ceiling is {bound:.0f} B"
                )

    def fetch_bytes_bound(self) -> float:
        """I2's ceiling for this scenario's parameters and node count."""
        scenario = self.scenario
        return self.fetch_bound_factor * scenario.params.fetch_bytes_invariant_bound(
            len(scenario.node_ids)
        )
