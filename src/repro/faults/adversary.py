"""Seeded, deterministic Byzantine node behaviors.

The paper's evaluation treats misbehaving nodes as merely *absent*
(dead or out of view). This module models nodes that actively lie —
the threat model the node-side defenses in :mod:`repro.core.node` and
:mod:`repro.core.reputation` exist for:

- **corrupt responders** serve the requested cells, but their proofs
  fail KZG verification against the slot commitment;
- **garbage flooders** push unsolicited ``CellResponse`` datagrams at
  random honest nodes throughout the slot;
- **selective withholders** answer queries normally except for one
  custody line per epoch, starving co-custodians' consolidation of
  that line while staying useful enough elsewhere to dodge cheap
  detection;
- **equivocators** answer only the first ``k`` requesters of a slot
  and ghost everyone else;
- **stalling responders** defer every reply so it lands just after the
  fetching round deadlines.

:class:`ByzantineNode` subclasses :class:`~repro.core.node.PandasNode`
and overrides only the *serving* side — Byzantine nodes still custody,
consolidate and sample like everyone else, which is exactly what makes
them hard to spot from the outside.

Determinism: victim selection (:func:`resolve_adversaries`) and every
in-run adversarial draw use dedicated ``("faults", "adversary", ...)``
RNG streams, so adversarial runs replay bit-identically from their
seed and adding adversaries never perturbs the clean run's protocol
draws (seeding shuffles, sample choices, fetcher tie-breaks).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.assignment import cells_of_line
from repro.core.context import ProtocolContext
from repro.core.messages import CellRequest, CellResponse
from repro.core.node import PandasNode
from repro.faults.plan import AdversarySpec, FaultPlan
from repro.sim.engine import Event
from repro.sim.rng import RngRegistry

__all__ = ["ByzantineNode", "resolve_adversaries"]

# how many garbage cells each flood datagram carries: enough to make
# the victim pay real verification time, small enough that the flood
# is bandwidth-plausible for the attacker
FLOOD_CELLS_PER_MESSAGE = 4


def resolve_adversaries(
    plan: FaultPlan,
    rngs: RngRegistry,
    candidates: Sequence[int],
) -> dict[int, AdversarySpec]:
    """Assign each adversary spec its victims; node -> spec.

    Victims are drawn without replacement across specs (a node runs
    exactly one behavior) from dedicated ``("faults", "adversary", i)``
    streams. Fractional shares are resolved against the *full*
    candidate pool, so ``corrupt=0.1,flood=0.1`` means 10% each.
    """
    assigned: dict[int, AdversarySpec] = {}
    for i, spec in enumerate(plan.adversaries):
        rng = rngs.stream("faults", "adversary", i)
        if spec.nodes:
            victims = list(spec.nodes)
        else:
            pool = [node for node in candidates if node not in assigned]
            count = spec.resolve_count(len(candidates))
            if count > len(pool):
                raise ValueError(
                    f"adversary spec {spec.behavior!r} wants {count} nodes, "
                    f"only {len(pool)} candidates left"
                )
            victims = rng.sample(pool, count)
        for node_id in victims:
            if node_id in assigned:
                raise ValueError(f"node {node_id} assigned two adversary behaviors")
            assigned[node_id] = spec
    return assigned


class ByzantineNode(PandasNode):
    """A PANDAS node running one :class:`AdversarySpec` behavior.

    ``victims`` is the roster of addresses a flooder may target
    (typically all other nodes); behaviors that never originate
    traffic ignore it.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        node_id: int,
        spec: AdversarySpec,
        victims: Sequence[int] = (),
        view: set[int] | None = None,
    ) -> None:
        super().__init__(ctx, node_id, view)
        self.spec = spec
        self.victims: list[int] = [v for v in victims if v != node_id]
        # all in-run adversarial randomness for this node, isolated
        # from every protocol stream
        self._adv_rng = ctx.rngs.stream("faults", "adversary", "node", node_id)
        self._flood_timer: Event | None = None
        self._served_requesters: dict[int, set[int]] = {}
        self._withheld_cache: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # scenario hook
    # ------------------------------------------------------------------
    def on_slot_begin(self, slot: int) -> None:
        """Called by the scenario right after seeding starts."""
        if self.spec.behavior == "flood" and self.victims:
            end = self.ctx.slot_start(slot) + self.ctx.params.slot_duration
            self._flood_tick(slot, end)

    def _flood_tick(self, slot: int, end: float) -> None:
        self._flood_timer = None
        sim = self.ctx.sim
        if sim.now >= end:
            return
        params = self.ctx.params
        victim = self._adv_rng.choice(self.victims)
        cells = tuple(
            sorted(
                self._adv_rng.sample(
                    range(params.total_cells),
                    min(FLOOD_CELLS_PER_MESSAGE, params.total_cells),
                )
            )
        )
        response = CellResponse(
            slot=slot,
            epoch=self.ctx.epoch_of(slot),
            cells=cells,
            invalid=frozenset(cells),
        )
        self.ctx.network.send(
            self.node_id, victim, response, response.wire_size(params)
        )
        self.ctx.metrics.record_fault("byz_flood")
        self._flood_timer = sim.call_after(
            1.0 / self.spec.rate, lambda: self._flood_tick(slot, end)
        )

    # ------------------------------------------------------------------
    # serving side overrides
    # ------------------------------------------------------------------
    def _on_request(self, src: int, msg: CellRequest) -> None:
        behavior = self.spec.behavior
        if behavior == "equivocate":
            served = self._served_requesters.setdefault(msg.slot, set())
            if src not in served and len(served) >= self.spec.first_k:
                self.ctx.metrics.record_fault("byz_equivocate_drop")
                return
            served.add(src)
        elif behavior == "withhold":
            withheld = self._withheld_cells(msg.epoch)
            starved = msg.cells & withheld
            if starved:
                self.ctx.metrics.record_fault("byz_withhold_cells", len(starved))
                remaining = msg.cells - withheld
                if not remaining:
                    return
                msg = CellRequest(slot=msg.slot, epoch=msg.epoch, cells=remaining)
        super()._on_request(src, msg)

    def _respond(self, slot: int, epoch: int, dst: int, cells: tuple[int, ...]) -> None:
        behavior = self.spec.behavior
        ctx = self.ctx
        if behavior == "corrupt":
            response = CellResponse(
                slot=slot, epoch=epoch, cells=cells, invalid=frozenset(cells)
            )
            ctx.metrics.record_fault("byz_corrupt_cells", len(cells))
            ctx.network.send(
                self.node_id, dst, response, response.wire_size(ctx.params)
            )
            return
        if behavior == "stall":
            ctx.metrics.record_fault("byz_stall")
            send = PandasNode._respond
            ctx.sim.call_after(
                self.spec.delay, lambda: send(self, slot, epoch, dst, cells)
            )
            return
        super()._respond(slot, epoch, dst, cells)

    def _withheld_cells(self, epoch: int) -> set[int]:
        """The one custody line this node starves in ``epoch``."""
        cached = self._withheld_cache.get(epoch)
        if cached is None:
            params = self.ctx.params
            lines = self.ctx.assignment.lines(self.node_id, epoch)
            rng = self.ctx.rngs.stream(
                "faults", "adversary", "withhold", self.node_id, epoch
            )
            line = rng.choice(sorted(lines))
            cached = set(cells_of_line(line, params.ext_rows, params.ext_cols))
            self._withheld_cache[epoch] = cached
        return cached

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        if self._flood_timer is not None:
            self._flood_timer.cancel()
            self._flood_timer = None
        super().crash()

    def drop_slot(self, slot: int) -> None:
        self._served_requesters.pop(slot, None)
        super().drop_slot(slot)
