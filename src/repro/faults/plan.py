"""Declarative, deterministic fault plans.

The paper's evaluation (Section 8.4) probes robustness with *static*
fault snapshots: a fixed fraction of nodes dead or out of view for the
whole run. Follow-up DAS studies show the interesting failures are
dynamic — packet loss and reordering dominate the sampling-latency
tail, and crash/recovery mid-slot is what actually stresses the
retry machinery. A :class:`FaultPlan` describes such a scenario as
pure data:

- **link faults** applied to every datagram: extra Bernoulli loss,
  probabilistic duplication, and uniform delivery jitter (reordering);
- **partition windows**: for ``[start, start+duration)`` a group of
  nodes is cut off from the rest (both directions drop silently);
- **crash windows**: nodes fail-stop at ``crash_at`` and, optionally,
  restart with empty volatile state at ``restart_at``;
- **slow responders**: nodes whose outgoing datagrams suffer a fixed
  extra delay (overloaded peers, the paper's "late builder" analogue);
- **adversaries**: Byzantine per-node behaviors (corrupt responders,
  garbage flooders, selective withholders, equivocators, stalling
  responders) executed by :mod:`repro.faults.adversary`.

The plan itself contains no randomness. Victim selection and every
probabilistic draw happen inside :class:`repro.faults.injector.
FaultInjector` / :func:`repro.faults.adversary.resolve_adversaries`
using dedicated :class:`repro.sim.rng.RngRegistry` streams, so a
faulty run replays bit-identically from its seed and never perturbs
the clean run's protocol draws.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AdversarySpec",
    "BEHAVIORS",
    "CrashWindow",
    "PartitionWindow",
    "SlowResponders",
    "FaultPlan",
]

BEHAVIORS = ("corrupt", "flood", "withhold", "equivocate", "stall")


@dataclass(frozen=True)
class CrashWindow:
    """``count`` nodes fail-stop at ``crash_at``; optional restart.

    ``nodes`` pins explicit victims; when empty, the injector draws
    ``count`` victims deterministically from its crash RNG stream.
    A ``None`` ``restart_at`` is a permanent crash.
    """

    crash_at: float
    restart_at: float | None = None
    count: int = 1
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.crash_at < 0.0:
            raise ValueError(f"crash_at must be >= 0, got {self.crash_at}")
        if self.restart_at is not None and self.restart_at <= self.crash_at:
            raise ValueError(
                f"restart_at ({self.restart_at}) must be after crash_at ({self.crash_at})"
            )
        if self.count < 1 and not self.nodes:
            raise ValueError("a crash window needs count >= 1 or explicit nodes")


@dataclass(frozen=True)
class PartitionWindow:
    """A network split over ``[start, start + duration)``.

    ``fraction`` of the eligible nodes form the minority side; traffic
    crossing the cut is dropped silently in both directions. The
    builder always stays on the majority side (a partitioned builder
    is a different experiment: a withheld block).
    """

    start: float
    duration: float
    fraction: float = 0.0
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not self.nodes and not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be in (0, 1) unless nodes are pinned")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SlowResponders:
    """``count`` nodes whose *outgoing* datagrams gain ``extra_delay``.

    Models overloaded or badly-connected peers: their replies arrive
    late, exercising the adaptive fetcher's after-round accounting and
    retry escalation. Applies for the whole run.
    """

    count: int = 1
    extra_delay: float = 0.05
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.extra_delay <= 0.0:
            raise ValueError(f"extra_delay must be positive, got {self.extra_delay}")
        if self.count < 1 and not self.nodes:
            raise ValueError("slow responders need count >= 1 or explicit nodes")


@dataclass(frozen=True)
class AdversarySpec:
    """Byzantine behavior for a group of nodes (Section 9 threat model).

    ``share`` selects how many nodes run the behavior: a value below
    1.0 is a fraction of the eligible pool, 1.0 and above is an
    absolute count. ``nodes`` pins explicit victims instead. The
    behaviors (executed by :class:`repro.faults.adversary.
    ByzantineNode`):

    - ``corrupt``    — serve requested cells whose proofs fail KZG
      verification against the slot commitment;
    - ``flood``      — push ``rate`` unsolicited garbage responses per
      second at random honest nodes throughout the slot;
    - ``withhold``   — serve normally except for one custody line per
      epoch, starving co-custodians' consolidation of that line while
      still answering sampling-sized queries elsewhere;
    - ``equivocate`` — answer only the first ``first_k`` requesters of
      a slot, ghosting everyone else;
    - ``stall``      — defer every reply by ``delay`` seconds, landing
      it just after the fetching round deadlines.
    """

    behavior: str
    share: float = 0.0
    nodes: tuple[int, ...] = ()
    rate: float = 20.0  # flood: garbage datagrams per second
    first_k: int = 1  # equivocate: requesters served per slot
    delay: float = 0.5  # stall: seconds between request and reply

    def __post_init__(self) -> None:
        if self.behavior not in BEHAVIORS:
            raise ValueError(
                f"unknown adversary behavior {self.behavior!r}; expected one of {BEHAVIORS}"
            )
        if not self.nodes and self.share <= 0.0:
            raise ValueError("an adversary spec needs share > 0 or explicit nodes")
        if self.rate <= 0.0:
            raise ValueError(f"flood rate must be positive, got {self.rate}")
        if self.first_k < 1:
            raise ValueError(f"first_k must be >= 1, got {self.first_k}")
        if self.delay <= 0.0:
            raise ValueError(f"stall delay must be positive, got {self.delay}")

    def resolve_count(self, pool_size: int) -> int:
        """How many victims this spec wants from a pool of ``pool_size``."""
        if self.nodes:
            return len(self.nodes)
        if self.share >= 1.0:
            return int(round(self.share))
        return max(1, int(round(self.share * pool_size)))


@dataclass(frozen=True)
class FaultPlan:
    """The full fault mix for one run. Pure data; see module docstring."""

    loss: float = 0.0
    duplication: float = 0.0
    jitter: float = 0.0
    crashes: tuple[CrashWindow, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    slow: tuple[SlowResponders, ...] = ()
    adversaries: tuple[AdversarySpec, ...] = ()

    def __post_init__(self) -> None:
        for name in ("loss", "duplication"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def is_empty(self) -> bool:
        return not (
            self.loss
            or self.duplication
            or self.jitter
            or self.crashes
            or self.partitions
            or self.slow
            or self.adversaries
        )

    # ------------------------------------------------------------------
    # CLI spec
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> FaultPlan:
        """Build a plan from a compact comma-separated spec.

        Grammar (entries may repeat where it makes sense)::

            loss=P                     extra per-datagram loss probability
            dup=P                      duplication probability
            jitter=S                   uniform extra delivery delay in [0, S] s
            crash=N@T1[:T2]            N nodes crash at T1, restart at T2
            partition=F@T+D            fraction F split off at T for D seconds
            slow=N@D                   N nodes answer D seconds late
            corrupt=X                  X nodes serve cells failing KZG checks
            flood=X@R                  X nodes push R garbage responses/s
            withhold=X                 X nodes starve one custody line/epoch
            equivocate=X@K             X nodes answer only K requesters/slot
            stall=X@D                  X nodes reply D seconds late

        For the adversary entries, ``X`` below 1 is a fraction of the
        eligible nodes, 1 and above an absolute count.

        Example: ``loss=0.05,crash=2@1.0:2.0,corrupt=0.1,flood=2@20``.
        """
        loss = duplication = jitter = 0.0
        crashes: list[CrashWindow] = []
        partitions: list[PartitionWindow] = []
        slow: list[SlowResponders] = []
        adversaries: list[AdversarySpec] = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(f"fault entry {entry!r} is not key=value")
            key, _, value = entry.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "loss":
                    loss = float(value)
                elif key == "dup":
                    duplication = float(value)
                elif key == "jitter":
                    jitter = float(value)
                elif key == "crash":
                    count, _, window = value.partition("@")
                    if not window:
                        raise ValueError("crash needs N@T1[:T2]")
                    crash_at, _, restart_at = window.partition(":")
                    crashes.append(
                        CrashWindow(
                            crash_at=float(crash_at),
                            restart_at=float(restart_at) if restart_at else None,
                            count=int(count),
                        )
                    )
                elif key == "partition":
                    fraction, _, window = value.partition("@")
                    start, _, duration = window.partition("+")
                    if not window or not duration:
                        raise ValueError("partition needs F@T+D")
                    partitions.append(
                        PartitionWindow(
                            start=float(start),
                            duration=float(duration),
                            fraction=float(fraction),
                        )
                    )
                elif key == "slow":
                    count, _, delay = value.partition("@")
                    if not delay:
                        raise ValueError("slow needs N@D")
                    slow.append(
                        SlowResponders(count=int(count), extra_delay=float(delay))
                    )
                elif key in ("corrupt", "withhold"):
                    adversaries.append(AdversarySpec(behavior=key, share=float(value)))
                elif key == "flood":
                    share, _, rate = value.partition("@")
                    adv = AdversarySpec(behavior=key, share=float(share))
                    if rate:
                        adv = AdversarySpec(behavior=key, share=float(share), rate=float(rate))
                    adversaries.append(adv)
                elif key == "equivocate":
                    share, _, first_k = value.partition("@")
                    adv = AdversarySpec(behavior=key, share=float(share))
                    if first_k:
                        adv = AdversarySpec(
                            behavior=key, share=float(share), first_k=int(first_k)
                        )
                    adversaries.append(adv)
                elif key == "stall":
                    share, _, delay = value.partition("@")
                    adv = AdversarySpec(behavior=key, share=float(share))
                    if delay:
                        adv = AdversarySpec(behavior=key, share=float(share), delay=float(delay))
                    adversaries.append(adv)
                else:
                    raise ValueError(f"unknown fault kind {key!r}")
            except ValueError:
                raise
            except Exception as exc:  # int()/float() conversion noise
                raise ValueError(f"malformed fault entry {entry!r}") from exc
        return cls(
            loss=loss,
            duplication=duplication,
            jitter=jitter,
            crashes=tuple(crashes),
            partitions=tuple(partitions),
            slow=tuple(slow),
            adversaries=tuple(adversaries),
        )

    def describe(self) -> str:
        """One-line human summary for CLI output and experiment logs."""
        parts = []
        if self.loss:
            parts.append(f"loss={self.loss:g}")
        if self.duplication:
            parts.append(f"dup={self.duplication:g}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:g}s")
        for crash in self.crashes:
            victims = len(crash.nodes) or crash.count
            restart = f":{crash.restart_at:g}" if crash.restart_at is not None else ""
            parts.append(f"crash={victims}@{crash.crash_at:g}{restart}")
        for part in self.partitions:
            size = len(part.nodes) or part.fraction
            parts.append(f"partition={size:g}@{part.start:g}+{part.duration:g}")
        for lag in self.slow:
            victims = len(lag.nodes) or lag.count
            parts.append(f"slow={victims}@{lag.extra_delay:g}")
        for spec in self.adversaries:
            share = len(spec.nodes) or spec.share
            extra = ""
            if spec.behavior == "flood":
                extra = f"@{spec.rate:g}"
            elif spec.behavior == "equivocate":
                extra = f"@{spec.first_k}"
            elif spec.behavior == "stall":
                extra = f"@{spec.delay:g}"
            parts.append(f"{spec.behavior}={share:g}{extra}")
        return ",".join(parts) if parts else "none"
