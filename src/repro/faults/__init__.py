"""Deterministic fault injection and protocol-invariant checking.

- :mod:`repro.faults.plan` — declarative, seed-replayable fault plans
  (link loss/duplication/jitter, partitions, crash/restart, slow
  responders, Byzantine adversaries);
- :mod:`repro.faults.injector` — executes a plan against a live
  simulator/network through dedicated RNG streams;
- :mod:`repro.faults.adversary` — Byzantine node behaviors (corrupt,
  flood, withhold, equivocate, stall) as PandasNode subclasses;
- :mod:`repro.faults.invariants` — online protocol-invariant checker
  that must hold under any fault mix.
"""

from repro.faults.adversary import ByzantineNode, resolve_adversaries
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import (
    BEHAVIORS,
    AdversarySpec,
    CrashWindow,
    FaultPlan,
    PartitionWindow,
    SlowResponders,
)

__all__ = [
    "AdversarySpec",
    "BEHAVIORS",
    "ByzantineNode",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "PartitionWindow",
    "SlowResponders",
    "resolve_adversaries",
]
