"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live run.

The injector is the only place where a fault plan meets randomness.
Every draw comes from dedicated ``RngRegistry`` streams (``("faults",
"link")`` for the per-datagram process, ``("faults", "crash", i)`` etc.
for victim selection), so fault realizations are decoupled from the
base loss process and from protocol randomness: adding a fault plan
never perturbs the seeding shuffle or the fetchers' tie-breaks, and
the same seed replays the same faults bit-identically.

Wire-level faults are applied through ``Network.fault_filter`` — a
hook :meth:`install` sets on the transport. The filter returns a tuple
of extra delivery delays, one per delivered copy of the datagram:
``()`` drops it, ``(0.0,)`` is undisturbed delivery, ``(0.0, j)`` is a
duplicate. Node-level faults (crash/restart) are plain simulator
events that toggle endpoint liveness and reset node state.

Every injected fault increments a named counter in
``MetricsRecorder.fault_counts`` so experiment reports can state the
realized fault load, not just the configured probabilities.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any

from repro.faults.plan import FaultPlan
from repro.net.transport import Datagram, Network
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.events import TraceRecorder

__all__ = ["FaultInjector"]


class FaultInjector:
    """Wires one fault plan into a simulator + network.

    ``candidates`` is the ordered pool of node addresses eligible to be
    victims (typically live honest nodes — never the builder, never
    statically dead nodes). ``node_lookup`` maps an address to the
    protocol node object, if any; objects exposing ``crash()`` /
    ``restart(slot)`` get their volatile state handled on those
    transitions (duck-typed so baselines without those methods still
    lose connectivity, just not state).
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sim: Simulator,
        network: Network,
        rngs: RngRegistry,
        metrics: MetricsRecorder,
        candidates: Sequence[int],
        node_lookup: Callable[[int], Any] | None = None,
        slot_duration: float = 12.0,
        tracer: TraceRecorder | None = None,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.network = network
        self.rngs = rngs
        self.metrics = metrics
        self.candidates = list(candidates)
        self.node_lookup = node_lookup
        self.slot_duration = slot_duration

        self.crash_targets: set[int] = set()
        self.slow_nodes: dict[int, float] = {}
        self.partition_groups: list[set[int]] = []
        self._active_partitions: list[set[int]] = []
        self._link_rng = rngs.stream("faults", "link")
        self._installed = False
        # structured tracing (repro.obs): pure observation, never
        # consulted for any fault decision
        self.tracer = tracer

    def _record(self, kind: str, **data: int) -> None:
        """Count one realized fault and mirror it into the trace."""
        self.metrics.record_fault(kind)
        tracer = self.tracer
        if tracer is not None and tracer.enabled("fault"):
            tracer.emit(
                "fault",
                t=self.sim.now,
                node=data.pop("node", -1),
                fault=kind,
                **data,
            )

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> FaultInjector:
        """Resolve victims, schedule timed faults, hook the transport."""
        if self._installed:
            raise RuntimeError("fault injector already installed")
        self._installed = True
        self._schedule_crashes()
        self._schedule_partitions()
        self._pick_slow_nodes()
        if (
            self.plan.loss
            or self.plan.duplication
            or self.plan.jitter
            or self.plan.partitions
            or self.plan.slow
        ):
            if self.network.fault_filter is not None:
                raise RuntimeError("network already has a fault filter")
            self.network.fault_filter = self._filter
        return self

    def _draw_victims(
        self, rng: random.Random, count: int, pinned: tuple[int, ...], exclude: set[int]
    ) -> list[int]:
        if pinned:
            return list(pinned)
        pool = [node for node in self.candidates if node not in exclude]
        if count > len(pool):
            raise ValueError(
                f"fault plan wants {count} victims, only {len(pool)} candidates left"
            )
        return rng.sample(pool, count)

    def _schedule_crashes(self) -> None:
        for i, window in enumerate(self.plan.crashes):
            rng = self.rngs.stream("faults", "crash", i)
            victims = self._draw_victims(rng, window.count, window.nodes, self.crash_targets)
            self.crash_targets.update(victims)
            for node_id in victims:
                self.sim.call_at(window.crash_at, lambda n=node_id: self._crash(n))
                if window.restart_at is not None:
                    self.sim.call_at(window.restart_at, lambda n=node_id: self._restart(n))

    def _schedule_partitions(self) -> None:
        for i, window in enumerate(self.plan.partitions):
            rng = self.rngs.stream("faults", "partition", i)
            if window.nodes:
                group = set(window.nodes)
            else:
                size = max(1, int(round(window.fraction * len(self.candidates))))
                group = set(rng.sample(self.candidates, min(size, len(self.candidates))))
            self.partition_groups.append(group)
            self.sim.call_at(window.start, lambda g=group: self._open_partition(g))
            self.sim.call_at(window.end, lambda g=group: self._close_partition(g))

    def _pick_slow_nodes(self) -> None:
        for i, lag in enumerate(self.plan.slow):
            rng = self.rngs.stream("faults", "slow", i)
            victims = self._draw_victims(
                rng, lag.count, lag.nodes, set(self.slow_nodes)
            )
            for node_id in victims:
                self.slow_nodes[node_id] = lag.extra_delay

    # ------------------------------------------------------------------
    # timed fault transitions
    # ------------------------------------------------------------------
    def _crash(self, node_id: int) -> None:
        self.network.kill(node_id)
        node = self.node_lookup(node_id) if self.node_lookup is not None else None
        if node is not None and hasattr(node, "crash"):
            node.crash()
        self._record("crash", node=node_id)

    def _restart(self, node_id: int) -> None:
        self.network.revive(node_id)
        node = self.node_lookup(node_id) if self.node_lookup is not None else None
        if node is not None and hasattr(node, "restart"):
            node.restart(int(self.sim.now // self.slot_duration))
        self._record("restart", node=node_id)

    def _open_partition(self, group: set[int]) -> None:
        self._active_partitions.append(group)
        self._record("partition_open", size=len(group))

    def _close_partition(self, group: set[int]) -> None:
        self._active_partitions.remove(group)
        self._record("partition_close", size=len(group))

    # ------------------------------------------------------------------
    # per-datagram filter (Network.fault_filter)
    # ------------------------------------------------------------------
    def _filter(self, dgram: Datagram, reliable: bool) -> tuple[float, ...]:
        """Decide the fate of one datagram; see module docstring.

        Draw order is fixed (loss, jitter, duplication, dup-jitter) so
        the stream consumption — and therefore the whole run — is
        deterministic. Partitions cut reliable (TCP-modelled) traffic
        too; Bernoulli loss and duplication do not, matching how the
        base transport hides loss under retransmission.
        """
        for group in self._active_partitions:
            if (dgram.src in group) != (dgram.dst in group):
                self._record("partition_drop", node=dgram.dst, src=dgram.src)
                return ()
        plan = self.plan
        rng = self._link_rng
        if not reliable and plan.loss > 0.0 and rng.random() < plan.loss:
            self._record("link_drop", node=dgram.dst, src=dgram.src)
            return ()
        delay = self.slow_nodes.get(dgram.src, 0.0)
        if delay:
            self._record("slow_delay", node=dgram.src)
        if plan.jitter > 0.0:
            delay += rng.uniform(0.0, plan.jitter)
        delays = [delay]
        if not reliable and plan.duplication > 0.0 and rng.random() < plan.duplication:
            copy_delay = delay
            if plan.jitter > 0.0:
                copy_delay += rng.uniform(0.0, plan.jitter)
            delays.append(copy_delay)
            self._record("duplicate", node=dgram.dst, src=dgram.src)
        return tuple(delays)
