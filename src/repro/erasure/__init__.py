"""Erasure-coding substrate: GF(2^m), Reed-Solomon, 2D blob extension."""

from repro.erasure.blob import Blob, BlobReconstructionError, ExtendedBlob
from repro.erasure.gf import GF256, GF65536, GaloisField
from repro.erasure.matrix import RowColumnAvailability, cell_coords, cell_id
from repro.erasure.reed_solomon import ReedSolomon

__all__ = [
    "Blob",
    "BlobReconstructionError",
    "ExtendedBlob",
    "GF256",
    "GF65536",
    "GaloisField",
    "RowColumnAvailability",
    "cell_coords",
    "cell_id",
    "ReedSolomon",
]
