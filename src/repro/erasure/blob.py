"""Blob construction and 2D Reed-Solomon extension over real bytes.

Reproduces Figure 2: layer-2 data is aggregated into a base matrix of
``base_rows x base_cols`` cells of ``cell_bytes`` bytes, then extended
with a two-dimensional Reed-Solomon code to ``2R x 2C`` so every row
and column reconstructs from any half of its cells.

Symbol layout: for grids with extended dimension <= 255 each byte
position of a cell is an independent GF(2^8) codeword across the
row/column; larger grids (the full 512x512 Danksharding grid) use
GF(2^16) over 2-byte words, which requires an even cell size (512 B
satisfies this).

The product-code property — extending rows first and then columns
yields parity-of-parity cells consistent with the column-then-row
order — holds because the code is linear; a regression test pins it.
"""

from __future__ import annotations


import numpy as np
import numpy.typing as npt

from repro.erasure.gf import GF256, GF65536
from repro.erasure.matrix import RowColumnAvailability
from repro.erasure.reed_solomon import ReedSolomon

__all__ = ["Blob", "ExtendedBlob", "BlobReconstructionError"]


class BlobReconstructionError(ValueError):
    """Raised when the supplied cells cannot recover the blob."""


class Blob:
    """The base (unextended) ``R x C`` matrix of data cells."""

    def __init__(self, cells: npt.NDArray[np.uint8]) -> None:
        if cells.ndim != 3:
            raise ValueError("cells must have shape (rows, cols, cell_bytes)")
        self.cells = np.ascontiguousarray(cells, dtype=np.uint8)

    @property
    def base_rows(self) -> int:
        return self.cells.shape[0]

    @property
    def base_cols(self) -> int:
        return self.cells.shape[1]

    @property
    def cell_bytes(self) -> int:
        return self.cells.shape[2]

    @staticmethod
    def from_bytes(data: bytes, base_rows: int, base_cols: int, cell_bytes: int) -> Blob:
        """Pack layer-2 payload bytes into the base matrix, zero-padded."""
        capacity = base_rows * base_cols * cell_bytes
        if len(data) > capacity:
            raise ValueError(f"payload of {len(data)} B exceeds blob capacity {capacity} B")
        buf = np.zeros(capacity, dtype=np.uint8)
        buf[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        return Blob(buf.reshape(base_rows, base_cols, cell_bytes))

    def to_bytes(self) -> bytes:
        return self.cells.tobytes()

    def extend(self) -> ExtendedBlob:
        """Apply the 2D code: rows first, then columns of the widened matrix."""
        return ExtendedBlob.from_blob(self)


class _SymbolCodec:
    """Maps cell bytes <-> field symbols and runs RS per symbol lane.

    ``wide`` forces 2-byte GF(2^16) symbols. The row and column codecs
    of one grid must use the SAME field: the product-code property
    (column-parity rows are themselves valid row codewords) requires
    both directions to be linear over a common field, so the choice is
    made grid-wide from the larger dimension.
    """

    def __init__(self, k: int, n: int, cell_bytes: int, wide: bool | None = None) -> None:
        if wide is None:
            wide = n > 255
        if not wide and n > 255:
            raise ValueError(f"codeword length {n} needs wide (GF(2^16)) symbols")
        if not wide:
            self.field = GF256()
            self.symbol_bytes = 1
        else:
            self.field = GF65536()
            self.symbol_bytes = 2
            if cell_bytes % 2:
                raise ValueError("cell size must be even to use GF(2^16) symbols")
        self.rs = ReedSolomon(k, n, self.field)
        self.cell_bytes = cell_bytes
        self.lanes = cell_bytes // self.symbol_bytes

    def cells_to_symbols(self, cells: npt.NDArray[np.uint8]) -> npt.NDArray[np.int64]:
        """(count, cell_bytes) uint8 -> (count, lanes) int64 symbols."""
        if self.symbol_bytes == 1:
            return cells.astype(np.int64)
        wide = cells.reshape(cells.shape[0], self.lanes, 2).astype(np.int64)
        return (wide[:, :, 0] << 8) | wide[:, :, 1]

    def symbols_to_cells(self, symbols: npt.NDArray[np.int64]) -> npt.NDArray[np.uint8]:
        if self.symbol_bytes == 1:
            return symbols.astype(np.uint8)
        out = np.zeros((symbols.shape[0], self.lanes, 2), dtype=np.uint8)
        out[:, :, 0] = (symbols >> 8) & 0xFF
        out[:, :, 1] = symbols & 0xFF
        return out.reshape(symbols.shape[0], self.cell_bytes)

    def encode_line(self, data_cells: npt.NDArray[np.uint8]) -> npt.NDArray[np.uint8]:
        """Extend k cells to n cells (returns only the n-k parity cells).

        All symbol lanes of the line are encoded in one vectorized
        Reed-Solomon call; the erasure batch suite pins equality with
        the scalar per-lane loop.
        """
        symbols = self.cells_to_symbols(data_cells)
        codeword = self.rs.encode_batch(symbols)
        return self.symbols_to_cells(codeword[self.rs.k :])

    def decode_line(self, known: dict[int, npt.NDArray[np.uint8]]) -> npt.NDArray[np.uint8]:
        """Recover all n cells of a line from >= k known (pos -> cell)."""
        positions = list(known.keys())
        stacked = np.stack([known[p] for p in positions]).astype(np.uint8)
        symbols = self.cells_to_symbols(stacked)
        full = self.rs.decode_batch(positions, symbols)
        return self.symbols_to_cells(full)


class ExtendedBlob:
    """The ``2R x 2C`` erasure-extended matrix (Figure 2's 140 MB object)."""

    def __init__(self, cells: npt.NDArray[np.uint8], base_rows: int, base_cols: int) -> None:
        self.cells = np.ascontiguousarray(cells, dtype=np.uint8)
        self.base_rows = base_rows
        self.base_cols = base_cols
        if self.cells.shape[0] != 2 * base_rows or self.cells.shape[1] != 2 * base_cols:
            raise ValueError("extended matrix shape must be (2R, 2C, cell_bytes)")

    @property
    def ext_rows(self) -> int:
        return 2 * self.base_rows

    @property
    def ext_cols(self) -> int:
        return 2 * self.base_cols

    @property
    def cell_bytes(self) -> int:
        return self.cells.shape[2]

    # ------------------------------------------------------------------
    @staticmethod
    def from_blob(blob: Blob) -> ExtendedBlob:
        rows, cols, cell_bytes = blob.base_rows, blob.base_cols, blob.cell_bytes
        wide = max(2 * rows, 2 * cols) > 255
        row_codec = _SymbolCodec(cols, 2 * cols, cell_bytes, wide=wide)
        col_codec = _SymbolCodec(rows, 2 * rows, cell_bytes, wide=wide)
        ext = np.zeros((2 * rows, 2 * cols, cell_bytes), dtype=np.uint8)
        ext[:rows, :cols] = blob.cells
        # 1) extend every original row to 2C cells
        for r in range(rows):
            ext[r, cols:] = row_codec.encode_line(ext[r, :cols])
        # 2) extend every (now 2C-wide) column to 2R cells
        for c in range(2 * cols):
            ext[rows:, c] = col_codec.encode_line(ext[:rows, c])
        return ExtendedBlob(ext, rows, cols)

    def cell(self, row: int, col: int) -> bytes:
        return self.cells[row, col].tobytes()

    def cell_by_id(self, cid: int) -> bytes:
        row, col = divmod(cid, self.ext_cols)
        return self.cell(row, col)

    def to_blob(self) -> Blob:
        """Strip the extension, returning the original data quadrant."""
        return Blob(self.cells[: self.base_rows, : self.base_cols])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExtendedBlob)
            and self.base_rows == other.base_rows
            and self.base_cols == other.base_cols
            and bool(np.array_equal(self.cells, other.cells))
        )

    # ------------------------------------------------------------------
    @staticmethod
    def reconstruct(
        known_cells: dict[int, bytes],
        base_rows: int,
        base_cols: int,
        cell_bytes: int,
    ) -> ExtendedBlob:
        """Rebuild the full extended blob from a subset of cells.

        Runs the same peeling closure as the availability tracker, but
        over real bytes: decode every row/column holding at least half
        its cells, repeat until fixpoint, and fail loudly if the grid
        is not fully recovered (the data-withholding case).
        """
        ext_rows, ext_cols = 2 * base_rows, 2 * base_cols
        availability = RowColumnAvailability(ext_rows, ext_cols)
        ext = np.zeros((ext_rows, ext_cols, cell_bytes), dtype=np.uint8)
        for cid, payload in known_cells.items():
            row, col = divmod(cid, ext_cols)
            if len(payload) != cell_bytes:
                raise ValueError(f"cell {cid} has {len(payload)} B, expected {cell_bytes}")
            ext[row, col] = np.frombuffer(payload, dtype=np.uint8)
            availability.add(cid)

        wide = max(ext_rows, ext_cols) > 255
        row_codec = _SymbolCodec(base_cols, ext_cols, cell_bytes, wide=wide)
        col_codec = _SymbolCodec(base_rows, ext_rows, cell_bytes, wide=wide)
        progress = True
        while progress:
            progress = False
            for row in range(ext_rows):
                count = availability.row_count(row)
                if count >= base_cols and count < ext_cols:
                    known = {
                        col: ext[row, col]
                        for col in range(ext_cols)
                        if availability.has(row * ext_cols + col)
                    }
                    ext[row] = row_codec.decode_line(known)
                    for col in range(ext_cols):
                        availability.add(row * ext_cols + col)
                    progress = True
            for col in range(ext_cols):
                count = availability.col_count(col)
                if count >= base_rows and count < ext_rows:
                    known = {
                        row: ext[row, col]
                        for row in range(ext_rows)
                        if availability.has(row * ext_cols + col)
                    }
                    ext[:, col] = col_codec.decode_line(known)
                    for row in range(ext_rows):
                        availability.add(row * ext_cols + col)
                    progress = True

        if not availability.fully_available():
            raise BlobReconstructionError(
                f"grid unrecoverable: {len(availability)} of {ext_rows * ext_cols} cells"
            )
        return ExtendedBlob(ext, base_rows, base_cols)
