"""Systematic Reed-Solomon erasure codec (evaluation form).

A codeword of length ``n`` with ``k`` data symbols is the evaluation of
the unique degree-<k polynomial interpolating the data at points
``0..k-1``, extended to points ``k..n-1``. Any ``k`` received symbols
determine the polynomial (Lagrange interpolation) and hence every
erased position — exactly the "any 50% of a row/column reconstructs
it" property the PANDAS blob relies on (n = 2k).

This is an *erasure* decoder (positions of missing symbols are known),
which matches DAS: cells are authenticated by their KZG proofs, so a
node never holds a wrong symbol, only missing ones.

Two code paths share the same math:

- ``encode`` / ``decode``: scalar Lagrange interpolation, O(k^2) per
  codeword — the readable reference implementation and the golden
  oracle for the batch path.
- ``encode_batch`` / ``decode_batch``: all symbol *lanes* of a line
  at once. The Lagrange basis depends only on the known *positions*,
  never on the values, so one vectorized coefficient matrix (built in
  the log domain from the field's exp/log tables) applies to every
  lane via a single GF matrix multiply. Byte-level blob extension
  runs 256-512 lanes per line, so this removes the per-lane Python
  loop that dominated :mod:`repro.erasure.blob`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.erasure.gf import GF256, GF65536, GaloisField

__all__ = ["ReedSolomon"]


class ReedSolomon:
    """RS(n, k) erasure codec over GF(2^8) or GF(2^16)."""

    def __init__(self, k: int, n: int, field: GaloisField | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if n <= k:
            raise ValueError(f"n ({n}) must exceed k ({k})")
        if field is None:
            field = GF256() if n <= 255 else GF65536()
        if n > field.order - 1:
            raise ValueError(
                f"codeword length {n} exceeds field capacity {field.order - 1}"
            )
        self.k = k
        self.n = n
        self.field = field

    # ------------------------------------------------------------------
    def encode(self, data: Sequence[int]) -> list[int]:
        """Extend ``k`` data symbols to a full ``n``-symbol codeword.

        Systematic: the first ``k`` output symbols equal the input.
        """
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {len(data)}")
        known = {i: int(symbol) for i, symbol in enumerate(data)}
        parity = self._interpolate_at(known, list(range(self.k, self.n)))
        return [int(s) for s in data] + parity

    def decode(self, known: dict[int, int]) -> list[int]:
        """Recover the full codeword from any >= k known symbols.

        ``known`` maps position (0..n-1) to symbol value. Raises
        ``ValueError`` if fewer than ``k`` positions are supplied —
        below the threshold the codeword is information-theoretically
        unrecoverable, the core fact behind the withholding analysis.
        """
        if len(known) < self.k:
            raise ValueError(
                f"need at least {self.k} symbols to decode, got {len(known)}"
            )
        for pos in known:
            if not 0 <= pos < self.n:
                raise ValueError(f"position {pos} outside codeword of length {self.n}")
        use = dict(list(known.items())[: self.k])
        missing = [i for i in range(self.n) if i not in known]
        recovered = self._interpolate_at(use, missing)
        codeword = [0] * self.n
        for pos, value in known.items():
            codeword[pos] = int(value)
        for pos, value in zip(missing, recovered, strict=True):
            codeword[pos] = value
        return codeword

    # ------------------------------------------------------------------
    # batched (vectorized) paths
    # ------------------------------------------------------------------
    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        """Extend ``(k, lanes)`` data symbols to ``(n, lanes)`` codewords.

        Each column (lane) is an independent codeword; all lanes share
        the evaluation points 0..k-1, so one coefficient matrix covers
        the whole batch. Row ``i`` of the result equals
        ``encode(data[:, lane])[i]`` for every lane — the golden test
        pins bit-equality with the scalar path.
        """
        data = np.asarray(data, dtype=np.int64)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(
                f"expected (k={self.k}, lanes) data symbols, got {data.shape}"
            )
        coeffs = self._lagrange_matrix(
            list(range(self.k)), list(range(self.k, self.n))
        )
        parity = self.field.matmul(coeffs, data)
        return np.concatenate([data, parity], axis=0)

    def decode_batch(self, positions: Sequence[int], symbols: np.ndarray) -> np.ndarray:
        """Recover ``(n, lanes)`` codewords from >= k known rows.

        ``positions[i]`` is the codeword position of row ``symbols[i]``.
        Mirrors :meth:`decode` exactly — including using only the first
        ``k`` supplied positions for interpolation — so both paths
        produce identical output on identical input.
        """
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.ndim != 2 or symbols.shape[0] != len(positions):
            raise ValueError(
                f"symbols shape {symbols.shape} does not match {len(positions)} positions"
            )
        if len(positions) < self.k:
            raise ValueError(
                f"need at least {self.k} symbols to decode, got {len(positions)}"
            )
        seen = set()
        for pos in positions:
            if not 0 <= pos < self.n:
                raise ValueError(f"position {pos} outside codeword of length {self.n}")
            seen.add(pos)
        use = list(positions[: self.k])
        missing = [i for i in range(self.n) if i not in seen]
        codeword = np.zeros((self.n, symbols.shape[1]), dtype=np.int64)
        codeword[list(positions)] = symbols
        if missing:
            coeffs = self._lagrange_matrix(use, missing)
            codeword[missing] = self.field.matmul(coeffs, symbols[: self.k])
        return codeword

    def _lagrange_matrix(self, xs: list[int], targets: list[int]) -> np.ndarray:
        """Coefficient matrix L with ``L[t, j] = L_j(target_t)``.

        Built entirely in the log domain: ``log L_j(t) = log P(t) -
        log(t - x_j) - log d_j`` where ``P`` is the full product over
        known points and ``d_j`` the basis denominator. Every pairwise
        difference is nonzero because targets are disjoint from the
        interpolation points, so no zero-masking is needed.
        """
        gf = self.field
        order = gf.order - 1
        xs_a = np.asarray(xs, dtype=np.int64)
        ts_a = np.asarray(targets, dtype=np.int64)
        # d_j = prod_{i != j} (x_j ^ x_i); the diagonal (zero) is
        # excluded by forcing its log contribution to 0
        pair = xs_a[:, None] ^ xs_a[None, :]
        log_pair = gf._log[pair]
        np.fill_diagonal(log_pair, 0)
        log_den = log_pair.sum(axis=1) % order
        diff = ts_a[:, None] ^ xs_a[None, :]
        log_diff = gf._log[diff]
        log_full = log_diff.sum(axis=1) % order
        log_coeff = (log_full[:, None] - log_diff - log_den[None, :]) % order
        result: np.ndarray = gf._exp[log_coeff]
        return result

    # ------------------------------------------------------------------
    def _interpolate_at(self, points: dict[int, int], targets: list[int]) -> list[int]:
        """Lagrange-interpolate ``points`` and evaluate at ``targets``.

        Positions double as evaluation points (the field elements
        0..n-1), which is safe because n < field order.
        """
        gf = self.field
        xs = list(points.keys())
        ys = list(points.values())
        k = len(xs)
        # Precompute denominators: d_j = prod_{i != j} (x_j - x_i)
        denominators = []
        for j in range(k):
            d = 1
            xj = xs[j]
            for i in range(k):
                if i != j:
                    d = gf.mul(d, xj ^ xs[i])
            denominators.append(d)
        results = []
        for x in targets:
            # full product P(x) = prod_i (x - x_i)
            full = 1
            for xi in xs:
                full = gf.mul(full, x ^ xi)
            acc = 0
            for j in range(k):
                if ys[j] == 0:
                    continue
                # L_j(x) = P(x) / ((x - x_j) * d_j)
                lj = gf.div(full, gf.mul(x ^ xs[j], denominators[j]))
                acc ^= gf.mul(ys[j], lj)
            results.append(acc)
        return results
