"""Systematic Reed-Solomon erasure codec (evaluation form).

A codeword of length ``n`` with ``k`` data symbols is the evaluation of
the unique degree-<k polynomial interpolating the data at points
``0..k-1``, extended to points ``k..n-1``. Any ``k`` received symbols
determine the polynomial (Lagrange interpolation) and hence every
erased position — exactly the "any 50% of a row/column reconstructs
it" property the PANDAS blob relies on (n = 2k).

This is an *erasure* decoder (positions of missing symbols are known),
which matches DAS: cells are authenticated by their KZG proofs, so a
node never holds a wrong symbol, only missing ones.

Complexity is O(k^2) per decode; fine for the unit/integration scale
(k up to 256 is exercised in tests), while the protocol simulation
layer tracks availability combinatorially and does not move real
bytes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.erasure.gf import GF256, GF65536, GaloisField

__all__ = ["ReedSolomon"]


class ReedSolomon:
    """RS(n, k) erasure codec over GF(2^8) or GF(2^16)."""

    def __init__(self, k: int, n: int, field: GaloisField | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if n <= k:
            raise ValueError(f"n ({n}) must exceed k ({k})")
        if field is None:
            field = GF256() if n <= 255 else GF65536()
        if n > field.order - 1:
            raise ValueError(
                f"codeword length {n} exceeds field capacity {field.order - 1}"
            )
        self.k = k
        self.n = n
        self.field = field

    # ------------------------------------------------------------------
    def encode(self, data: Sequence[int]) -> list[int]:
        """Extend ``k`` data symbols to a full ``n``-symbol codeword.

        Systematic: the first ``k`` output symbols equal the input.
        """
        if len(data) != self.k:
            raise ValueError(f"expected {self.k} data symbols, got {len(data)}")
        known = {i: int(symbol) for i, symbol in enumerate(data)}
        parity = self._interpolate_at(known, list(range(self.k, self.n)))
        return [int(s) for s in data] + parity

    def decode(self, known: dict[int, int]) -> list[int]:
        """Recover the full codeword from any >= k known symbols.

        ``known`` maps position (0..n-1) to symbol value. Raises
        ``ValueError`` if fewer than ``k`` positions are supplied —
        below the threshold the codeword is information-theoretically
        unrecoverable, the core fact behind the withholding analysis.
        """
        if len(known) < self.k:
            raise ValueError(
                f"need at least {self.k} symbols to decode, got {len(known)}"
            )
        for pos in known:
            if not 0 <= pos < self.n:
                raise ValueError(f"position {pos} outside codeword of length {self.n}")
        use = dict(list(known.items())[: self.k])
        missing = [i for i in range(self.n) if i not in known]
        recovered = self._interpolate_at(use, missing)
        codeword = [0] * self.n
        for pos, value in known.items():
            codeword[pos] = int(value)
        for pos, value in zip(missing, recovered, strict=True):
            codeword[pos] = value
        return codeword

    # ------------------------------------------------------------------
    def _interpolate_at(self, points: dict[int, int], targets: list[int]) -> list[int]:
        """Lagrange-interpolate ``points`` and evaluate at ``targets``.

        Positions double as evaluation points (the field elements
        0..n-1), which is safe because n < field order.
        """
        gf = self.field
        xs = list(points.keys())
        ys = list(points.values())
        k = len(xs)
        # Precompute denominators: d_j = prod_{i != j} (x_j - x_i)
        denominators = []
        for j in range(k):
            d = 1
            xj = xs[j]
            for i in range(k):
                if i != j:
                    d = gf.mul(d, xj ^ xs[i])
            denominators.append(d)
        results = []
        for x in targets:
            # full product P(x) = prod_i (x - x_i)
            full = 1
            for xi in xs:
                full = gf.mul(full, x ^ xi)
            acc = 0
            for j in range(k):
                if ys[j] == 0:
                    continue
                # L_j(x) = P(x) / ((x - x_j) * d_j)
                lj = gf.div(full, gf.mul(x ^ xs[j], denominators[j]))
                acc ^= gf.mul(ys[j], lj)
            results.append(acc)
        return results
