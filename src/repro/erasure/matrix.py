"""Cell-availability tracking over the extended 2D grid.

Cells are addressed by integer id ``row * ext_cols + col``. The
tracker answers the two questions the protocol and the analysis keep
asking:

- which rows/columns currently hold at least half their cells (and are
  therefore Reed-Solomon reconstructable), and
- what is the transitive closure of reconstruction (*peeling*): once a
  row reconstructs, its cells complete columns, which may reconstruct,
  completing further rows, and so on. Figure 3's minimal example (half
  the cells of R distinct rows recovers the entire grid) falls out of
  this closure.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["cell_id", "cell_coords", "RowColumnAvailability"]


def cell_id(row: int, col: int, ext_cols: int) -> int:
    """Flatten (row, col) to the canonical integer cell id."""
    return row * ext_cols + col


def cell_coords(cid: int, ext_cols: int) -> tuple[int, int]:
    """Inverse of :func:`cell_id`."""
    return divmod(cid, ext_cols)


class RowColumnAvailability:
    """Which cells of an ``ext_rows x ext_cols`` grid are available.

    Rows and columns are represented as integer bitmasks, so counting
    uses ``int.bit_count`` and marking a full row is a single
    assignment; this keeps whole-grid analyses (builder accounting,
    withholding experiments) fast without numpy round-trips.
    """

    def __init__(self, ext_rows: int, ext_cols: int) -> None:
        if ext_rows < 2 or ext_cols < 2:
            raise ValueError("grid must be at least 2x2")
        self.ext_rows = ext_rows
        self.ext_cols = ext_cols
        self._row_masks: list[int] = [0] * ext_rows
        self._full_row = (1 << ext_cols) - 1
        self._count = 0

    # ------------------------------------------------------------------
    # basic set operations
    # ------------------------------------------------------------------
    def add(self, cid: int) -> bool:
        """Mark a cell available; returns True if it was new."""
        row, col = divmod(cid, self.ext_cols)
        bit = 1 << col
        if self._row_masks[row] & bit:
            return False
        self._row_masks[row] |= bit
        self._count += 1
        return True

    def add_many(self, cids: Iterable[int]) -> int:
        """Add several cells; returns how many were new."""
        return sum(1 for cid in cids if self.add(cid))

    def has(self, cid: int) -> bool:
        row, col = divmod(cid, self.ext_cols)
        return bool(self._row_masks[row] & (1 << col))

    def __contains__(self, cid: int) -> bool:
        return self.has(cid)

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # row/column structure
    # ------------------------------------------------------------------
    def row_count(self, row: int) -> int:
        return self._row_masks[row].bit_count()

    def col_count(self, col: int) -> int:
        bit = 1 << col
        return sum(1 for mask in self._row_masks if mask & bit)

    def row_cells(self, row: int) -> list[int]:
        """Available cell ids in ``row``."""
        mask = self._row_masks[row]
        base = row * self.ext_cols
        return [base + col for col in range(self.ext_cols) if mask & (1 << col)]

    def col_cells(self, col: int) -> list[int]:
        bit = 1 << col
        return [
            row * self.ext_cols + col
            for row in range(self.ext_rows)
            if self._row_masks[row] & bit
        ]

    def row_reconstructable(self, row: int) -> bool:
        """A row reconstructs from any half of its cells (RS n=2k)."""
        return self.row_count(row) >= self.ext_cols // 2

    def col_reconstructable(self, col: int) -> bool:
        return self.col_count(col) >= self.ext_rows // 2

    # ------------------------------------------------------------------
    # reconstruction closure (peeling)
    # ------------------------------------------------------------------
    def close(self) -> set[int]:
        """Apply reconstruction transitively; returns newly available ids.

        Repeats until fixpoint: complete every row with >= half its
        cells, then every column, and loop while progress is made.
        """
        new_cells: set[int] = set()
        half_cols = self.ext_cols // 2
        half_rows = self.ext_rows // 2
        progress = True
        while progress:
            progress = False
            for row in range(self.ext_rows):
                mask = self._row_masks[row]
                if mask != self._full_row and mask.bit_count() >= half_cols:
                    missing = self._full_row & ~mask
                    base = row * self.ext_cols
                    for col in range(self.ext_cols):
                        if missing & (1 << col):
                            new_cells.add(base + col)
                    self._count += missing.bit_count()
                    self._row_masks[row] = self._full_row
                    progress = True
            # columns: count per column once, then fill reconstructable ones
            for col in range(self.ext_cols):
                bit = 1 << col
                have = [bool(self._row_masks[r] & bit) for r in range(self.ext_rows)]
                count = sum(have)
                if count >= half_rows and count < self.ext_rows:
                    for row in range(self.ext_rows):
                        if not have[row]:
                            self._row_masks[row] |= bit
                            new_cells.add(row * self.ext_cols + col)
                            self._count += 1
                    progress = True
        return new_cells

    def fully_available(self) -> bool:
        return self._count == self.ext_rows * self.ext_cols

    def recoverable(self) -> bool:
        """Can the *entire* grid be recovered from what is available?

        Runs the closure on a copy so the tracker itself is unchanged.
        """
        probe = RowColumnAvailability(self.ext_rows, self.ext_cols)
        probe._row_masks = list(self._row_masks)
        probe._count = self._count
        probe.close()
        return probe.fully_available()
