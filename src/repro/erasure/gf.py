"""Finite-field arithmetic GF(2^m) for Reed-Solomon coding.

Supports GF(2^8) (cells up to 255 per codeword, enough for the reduced
grids used in timing experiments) and GF(2^16) (needed for the full
512-symbol Danksharding rows/columns). Tables are built once per field
with numpy and cached.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import numpy.typing as npt

__all__ = ["GaloisField", "GF256", "GF65536"]

# every table and vector in this module holds field elements as int64
FieldArray = npt.NDArray[np.int64]

_PRIMITIVE_POLYS = {
    8: 0x11D,  # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}


class GaloisField:
    """GF(2^m) with log/antilog tables and vectorized numpy helpers."""

    def __init__(self, m: int) -> None:
        if m not in _PRIMITIVE_POLYS:
            raise ValueError(f"unsupported field degree {m} (supported: 8, 16)")
        self.m = m
        self.order = 1 << m
        self.poly = _PRIMITIVE_POLYS[m]
        size = self.order
        exp: FieldArray = np.zeros(2 * size, dtype=np.int64)
        log: FieldArray = np.zeros(size, dtype=np.int64)
        x = 1
        for i in range(size - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & size:
                x ^= self.poly
        # duplicate so exp[(a+b)] never needs an explicit modulo
        exp[size - 1 : 2 * (size - 1)] = exp[: size - 1]
        self._exp = exp
        self._log = log

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Addition (= subtraction) is XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("no inverse for 0 in GF(2^m)")
        return int(self._exp[(self.order - 1) - self._log[a]])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self._exp[self._log[a] - self._log[b] + (self.order - 1)])

    def pow(self, a: int, n: int) -> int:
        if n == 0:
            return 1
        if a == 0:
            return 0
        return int(self._exp[(self._log[a] * n) % (self.order - 1)])

    # ------------------------------------------------------------------
    # vector operations (numpy arrays of field elements)
    # ------------------------------------------------------------------
    def mul_vec(self, a: npt.ArrayLike, b: npt.ArrayLike) -> FieldArray:
        """Elementwise product of two arrays of field elements."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out: FieldArray = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = (a != 0) & (b != 0)
        if np.any(nz):
            a_b, b_b = np.broadcast_arrays(a, b)
            out[nz] = self._exp[self._log[a_b[nz]] + self._log[b_b[nz]]]
        return out

    def scale_vec(self, scalar: int, vec: npt.ArrayLike) -> FieldArray:
        """scalar * vec for an array of field elements."""
        vec = np.asarray(vec, dtype=np.int64)
        if scalar == 0:
            return np.zeros_like(vec)
        out: FieldArray = np.zeros_like(vec)
        nz = vec != 0
        out[nz] = self._exp[self._log[vec[nz]] + self._log[scalar]]
        return out

    def poly_eval(self, coeffs: npt.ArrayLike, x: int) -> int:
        """Evaluate polynomial (lowest degree first) at ``x`` (Horner)."""
        acc = 0
        for c in reversed(np.asarray(coeffs, dtype=np.int64)):
            acc = self.mul(acc, x) ^ int(c)
        return acc

    # ------------------------------------------------------------------
    # matrix operations
    # ------------------------------------------------------------------
    def matmul(self, a: npt.ArrayLike, b: npt.ArrayLike) -> FieldArray:
        """GF matrix product: ``out[i, j] = XOR_k a[i, k] * b[k, j]``.

        The workhorse of batched Reed-Solomon: one call applies a
        Lagrange coefficient matrix to every symbol lane of a line at
        once instead of re-interpolating per lane. Products are taken
        in the log domain (``exp[log a + log b]`` with zeros masked)
        and accumulated with ``bitwise_xor.reduce``.

        The intermediate product tensor is ``(rows, k, cols)``; the
        row axis is chunked so peak scratch memory stays bounded for
        full 512-symbol x 256-lane grids.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible matmul shapes {a.shape} x {b.shape}")
        rows, inner = a.shape
        cols = b.shape[1]
        out: FieldArray = np.zeros((rows, cols), dtype=np.int64)
        if inner == 0 or rows == 0 or cols == 0:
            return out
        log_b = self._log[b]
        b_zero = b == 0
        # cap the (chunk, inner, cols) scratch tensor at ~4M elements
        chunk = max(1, (1 << 22) // max(1, inner * cols))
        for start in range(0, rows, chunk):
            a_c = a[start : start + chunk]
            prod = self._exp[self._log[a_c][:, :, None] + log_b[None, :, :]]
            prod[(a_c == 0)[:, :, None] | b_zero[None, :, :]] = 0
            out[start : start + chunk] = np.bitwise_xor.reduce(prod, axis=1)
        return out


@lru_cache(maxsize=None)
def _field(m: int) -> GaloisField:
    return GaloisField(m)


def GF256() -> GaloisField:
    """The byte field GF(2^8)."""
    return _field(8)


def GF65536() -> GaloisField:
    """GF(2^16), large enough for 512-symbol codewords."""
    return _field(16)
