"""Engine benchmark runner: the recorded perf trajectory of the repo.

``python -m repro bench`` runs full PANDAS slots at a list of node
scales and writes a ``BENCH_<n>.json`` snapshot: wall-clock seconds
per slot, simulator events executed, events/sec, the metrics
fingerprint of every run (so a perf number can never silently come
from *different behaviour*), and the tracing-overhead ratio. Snapshots
are committed next to the code they measure; together they form the
scale-up record demanded by the roadmap's 20k-node goal.

Regression policy (enforced by the CI perf-smoke job via ``--check``):
a run whose events/sec falls more than 25% below the committed
baseline for the same scale fails. Fingerprints must match the
baseline exactly when both record them — a faster-but-different run is
a behaviour change, not an optimization, and must update the replay
pins deliberately.

All timing uses ``time.perf_counter`` — wall clock never feeds
simulated state, which keeps this module allowlisted for the RL002
determinism rule the same way the callback profiler is.
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.obs.events import TraceRecorder
from repro.obs.telemetry import Telemetry
from repro.params import PandasParams

__all__ = [
    "PRE_SCALE_UP_BASELINE",
    "bench_scale",
    "measure_trace_overhead",
    "measure_telemetry_overhead",
    "next_bench_path",
    "run_bench",
    "check_against_baseline",
]

SCHEMA_VERSION = 1

# The last measurement of the engine before the scale-up refactors
# (calendar queue, batched transport, slotted node state, vectorized
# candidate scan): one full-parameter 1,000-node PANDAS slot, seed 7.
# Kept here so every snapshot reports its speedup against a fixed,
# documented origin rather than a moving target.
PRE_SCALE_UP_BASELINE: dict[str, float] = {
    "nodes": 1000,
    "wall_s": 897.07,
    "events": 5_871_957,
    "events_per_sec": 6_545.69,
}


def bench_scale(
    nodes: int,
    seed: int = 7,
    reduced: int = 0,
    slot_window: float = 12.0,
) -> dict[str, Any]:
    """Run one full PANDAS slot at ``nodes`` and measure it."""
    params = PandasParams.reduced(reduced) if reduced else PandasParams.full()
    config = ScenarioConfig(
        num_nodes=nodes, params=params, seed=seed, slots=1, slot_window=slot_window
    )
    start = time.perf_counter()
    scenario = Scenario(config).run()
    wall = time.perf_counter() - start
    events = scenario.sim.events_processed
    return {
        "nodes": nodes,
        "reduced": reduced,
        "seed": seed,
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 2) if wall > 0 else 0.0,
        "fingerprint": scenario.metrics.fingerprint(),
    }


def _overhead_pair(
    make_plain: Callable[[], ScenarioConfig],
    make_instrumented: Callable[[], ScenarioConfig],
    repeats: int,
) -> tuple[float, float]:
    """Median-ratio plain/instrumented wall-clock pair.

    A single-shot comparison can swing ±25% on a busy host, and wall
    times drift within a process (CPU quota burn-down, cache
    pressure), so the two configurations run as adjacent pairs —
    drift hits both sides of a pair roughly equally — and the pair
    whose ratio is the median across ``repeats`` is reported. The
    returned walls always come from one real pair, so the recorded
    ratio is exactly ``instrumented / plain`` of the recorded times.
    """
    pairs = []
    for _ in range(max(1, repeats)):
        walls = []
        for make_config in (make_plain, make_instrumented):
            start = time.perf_counter()
            Scenario(make_config()).run()
            walls.append(time.perf_counter() - start)
        pairs.append((walls[0], walls[1]))
    pairs.sort(key=lambda pair: pair[1] / pair[0])
    return pairs[len(pairs) // 2]


def measure_trace_overhead(
    nodes: int = 100, seed: int = 7, repeats: int = 5
) -> dict[str, float]:
    """Wall-clock ratio of a traced run over an untraced one.

    Uses the in-memory ring buffer (no sink I/O) so the number isolates
    the cost of event *emission*, the part protocol code pays.
    """
    plain, traced = _overhead_pair(
        lambda: ScenarioConfig(num_nodes=nodes, seed=seed, slots=1),
        lambda: ScenarioConfig(
            num_nodes=nodes, seed=seed, slots=1, tracer=TraceRecorder()
        ),
        repeats,
    )
    return {
        "nodes": nodes,
        "plain_wall_s": round(plain, 3),
        "traced_wall_s": round(traced, 3),
        "overhead_ratio": round(traced / plain, 3) if plain > 0 else 0.0,
    }


def measure_telemetry_overhead(
    nodes: int = 100, seed: int = 7, repeats: int = 5
) -> dict[str, float]:
    """Wall-clock ratio of a telemetered run over a plain one.

    The telemetered side runs the full observability stack: metrics
    tap, per-datagram layer accounting and the cadence sampler — the
    cost a long sustained run pays for its health report.
    """
    plain, telemetered = _overhead_pair(
        lambda: ScenarioConfig(num_nodes=nodes, seed=seed, slots=1),
        lambda: ScenarioConfig(
            num_nodes=nodes, seed=seed, slots=1, telemetry=Telemetry()
        ),
        repeats,
    )
    return {
        "nodes": nodes,
        "plain_wall_s": round(plain, 3),
        "telemetry_wall_s": round(telemetered, 3),
        "overhead_ratio": round(telemetered / plain, 3) if plain > 0 else 0.0,
    }


def run_bench(
    scales: list[int],
    seed: int = 7,
    reduced: int = 0,
    trace_overhead: bool = True,
    telemetry_overhead: bool = True,
) -> dict[str, Any]:
    """Measure every scale and assemble one snapshot document."""
    results = [bench_scale(nodes, seed=seed, reduced=reduced) for nodes in scales]
    report: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scales": results,
        "pre_scale_up_baseline": PRE_SCALE_UP_BASELINE,
    }
    for row in results:
        if row["nodes"] == PRE_SCALE_UP_BASELINE["nodes"] and not row["reduced"]:
            row["speedup_vs_pre_scale_up"] = round(
                PRE_SCALE_UP_BASELINE["wall_s"] / row["wall_s"], 2
            )
    if trace_overhead:
        report["trace_overhead"] = measure_trace_overhead(seed=seed)
    if telemetry_overhead:
        report["telemetry_overhead"] = measure_telemetry_overhead(seed=seed)
    return report


def next_bench_path(root: Path) -> Path:
    """First unused ``BENCH_<n>.json`` path under ``root``."""
    n = 1
    while (root / f"BENCH_{n}.json").exists():
        n += 1
    return root / f"BENCH_{n}.json"


def check_against_baseline(
    report: dict[str, Any],
    baseline_path: Path,
    max_regression: float = 0.25,
    max_obs_overhead: float = 1.25,
) -> list[str]:
    """Compare a fresh report against a committed snapshot.

    Returns a list of human-readable failures: a missing or unreadable
    baseline snapshot (a gate pointed at nothing must fail loudly, not
    silently pass or crash), events/sec more than ``max_regression``
    below the baseline at the same (nodes, reduced) scale, a changed
    fingerprint for an identical configuration, or a *fresh* telemetry
    overhead ratio above ``max_obs_overhead`` — telemetry must stay
    cheap enough to leave on for sustained runs, so the gate bounds it
    absolutely rather than relative to the baseline. ``trace_overhead``
    is recorded for the trajectory but not gated: full per-event trace
    emission is a debugging mode, not an always-on tax. Scales present
    in only one of the two documents are ignored.
    """
    if not baseline_path.exists():
        return [
            f"baseline snapshot {baseline_path} does not exist — run "
            f"`repro bench` and commit the BENCH_<n>.json it writes"
        ]
    try:
        baseline = json.loads(baseline_path.read_text())
    except json.JSONDecodeError as exc:
        return [f"baseline snapshot {baseline_path} is not valid JSON: {exc}"]
    base_rows = {
        (row["nodes"], row.get("reduced", 0), row.get("seed", 7)): row
        for row in baseline.get("scales", [])
    }
    failures: list[str] = []
    for row in report.get("scales", []):
        key = (row["nodes"], row.get("reduced", 0), row.get("seed", 7))
        base = base_rows.get(key)
        if base is None:
            continue
        floor = base["events_per_sec"] * (1.0 - max_regression)
        if row["events_per_sec"] < floor:
            failures.append(
                f"{key[0]} nodes: {row['events_per_sec']:.0f} events/s is more than "
                f"{max_regression:.0%} below baseline {base['events_per_sec']:.0f}"
            )
        if (
            "fingerprint" in base
            and base["fingerprint"] != row["fingerprint"]
        ):
            failures.append(
                f"{key[0]} nodes: fingerprint {row['fingerprint'][:12]}… differs from "
                f"baseline {base['fingerprint'][:12]}… — behaviour changed"
            )
    overhead = report.get("telemetry_overhead")
    if overhead is not None:
        ratio = overhead.get("overhead_ratio", 0.0)
        if ratio > max_obs_overhead:
            failures.append(
                f"telemetry_overhead: measured ratio {ratio:.3f}x exceeds "
                f"the {max_obs_overhead:.2f}x observability budget"
            )
    return failures
