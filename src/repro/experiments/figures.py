"""Per-figure experiment runners (the evaluation of Section 8).

Each function reproduces one table or figure of the paper and returns
a structured result the benchmark harness prints as paper-vs-measured
rows. Scales default to laptop-friendly node counts; the paper's
scales are reached by raising ``num_nodes`` (the protocol and all
parameters are identical — only population changes).

Experiment index (also in DESIGN.md):

========  =====================================================
Fig. 9    phase-time CDFs for the three seeding policies
Fig. 10   fetch messages / traffic volume distributions
Table 1   per-round fetching telemetry
Fig. 11   adaptive vs constant fetching
Fig. 12   PANDAS vs GossipSub vs DHT at one scale
Fig. 13   PANDAS scaling across node counts
Fig. 14   baseline scaling across node counts
Fig. 15   dead-node and out-of-view fault sweeps
========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.analysis.stats import Distribution
from repro.core.seeding import MinimalSeeding, RedundantSeeding, SeedingPolicy, SingleSeeding
from repro.experiments.scenario import BaseScenario, Scenario, ScenarioConfig
from repro.params import FetchSchedule, PandasParams

__all__ = [
    "AdversarialPoint",
    "PolicyPhases",
    "run_policy_comparison",
    "run_table1",
    "run_adaptive_vs_constant",
    "run_baseline_comparison",
    "run_scaling",
    "run_size_sweep",
    "run_fault_sweep",
    "run_adversarial_sweep",
    "SEEDING_POLICIES",
]


def SEEDING_POLICIES() -> dict[str, SeedingPolicy]:
    """Fresh instances of the three policies of Figure 6."""
    return {
        "minimal": MinimalSeeding(),
        "single": SingleSeeding(),
        "redundant": RedundantSeeding(8),
    }


@dataclass
class PolicyPhases:
    """Figures 9 & 10 data for one seeding policy."""

    policy: str
    seeding: Distribution
    consolidation: Distribution
    sampling: Distribution
    fetch_messages: Distribution
    fetch_bytes: Distribution
    builder_egress_bytes: float
    block: Distribution | None = None


def _phase_result(scenario: BaseScenario, policy_name: str) -> PolicyPhases:
    phases = scenario.phase_distributions()
    block = None
    if isinstance(scenario, Scenario) and scenario.block_overlay is not None:
        block = scenario.block_distribution()
    return PolicyPhases(
        policy=policy_name,
        seeding=phases.seeding,
        consolidation=phases.consolidation,
        sampling=phases.sampling,
        fetch_messages=scenario.fetch_message_distribution(),
        fetch_bytes=scenario.fetch_bytes_distribution(),
        builder_egress_bytes=scenario.builder_egress_bytes(0),
        block=block,
    )


def _consolidation_from_seeding(scenario: BaseScenario) -> Distribution:
    """Per-node (consolidation - seeding) differences (Figure 9b)."""
    values = []
    for (_slot, node), times in scenario.metrics.phase_times.items():
        if node in scenario.dead_nodes:
            continue
        if times.consolidation is None:
            values.append(None)
        elif times.seeding is None:
            values.append(times.consolidation)
        else:
            values.append(times.consolidation - times.seeding)
    return Distribution.from_optional(values)


def run_policy_comparison(
    num_nodes: int = 300,
    slots: int = 1,
    seed: int = 7,
    include_block_gossip: bool = True,
    params: PandasParams | None = None,
) -> dict[str, PolicyPhases]:
    """Figures 9a-9d and 10: all three seeding policies, same network.

    Returns per-policy phase and traffic distributions; the special key
    ``"<policy>:from_seeding"`` carries the Figure 9b variant.
    """
    results: dict[str, PolicyPhases] = {}
    for name, policy in SEEDING_POLICIES().items():
        config = ScenarioConfig(
            num_nodes=num_nodes,
            slots=slots,
            seed=seed,
            policy=policy,
            include_block_gossip=include_block_gossip,
            params=params if params is not None else PandasParams.full(),
        )
        scenario = Scenario(config).run()
        results[name] = _phase_result(scenario, name)
        results[f"{name}:from_seeding"] = PolicyPhases(
            policy=f"{name}:from_seeding",
            seeding=results[name].seeding,
            consolidation=_consolidation_from_seeding(scenario),
            sampling=results[name].sampling,
            fetch_messages=results[name].fetch_messages,
            fetch_bytes=results[name].fetch_bytes,
            builder_egress_bytes=results[name].builder_egress_bytes,
        )
    return results


def run_table1(
    num_nodes: int = 300,
    slots: int = 1,
    seed: int = 7,
    max_round: int = 4,
    params: PandasParams | None = None,
) -> dict[int, dict[str, tuple[float, float]]]:
    """Table 1: per-round fetching telemetry under the redundant policy."""
    config = ScenarioConfig(
        num_nodes=num_nodes,
        slots=slots,
        seed=seed,
        policy=RedundantSeeding(8),
        params=params if params is not None else PandasParams.full(),
    )
    scenario = Scenario(config).run()
    return scenario.metrics.round_table(max_round)


def run_adaptive_vs_constant(
    num_nodes: int = 300,
    slots: int = 1,
    seed: int = 7,
    params: PandasParams | None = None,
) -> dict[str, PolicyPhases]:
    """Figure 11: PANDAS's schedule vs fixed t=400 ms / k=1."""
    base_params = params if params is not None else PandasParams.full()
    results: dict[str, PolicyPhases] = {}
    for name, schedule in (
        ("adaptive", FetchSchedule()),
        ("constant", FetchSchedule.constant(timeout=0.4, redundancy=1)),
    ):
        config = ScenarioConfig(
            num_nodes=num_nodes,
            slots=slots,
            seed=seed,
            policy=RedundantSeeding(8),
            params=base_params.with_schedule(schedule),
        )
        scenario = Scenario(config).run()
        results[name] = _phase_result(scenario, name)
    return results


def run_baseline_comparison(
    num_nodes: int = 300,
    slots: int = 1,
    seed: int = 7,
    params: PandasParams | None = None,
    faults=None,
) -> dict[str, PolicyPhases]:
    """Figure 12: PANDAS (redundant r=8) vs GossipSub vs DHT vs PeerDAS.

    All four systems share the seeded network construction and the
    same builder egress budget (8x the extended blob). ``faults``
    optionally applies a :class:`repro.faults.plan.FaultPlan` —
    including the PR 2 adversary mixes — identically to every system.
    """
    from repro.baselines.dht_das import DhtDasScenario
    from repro.baselines.gossipsub_das import GossipDasScenario
    from repro.baselines.peerdas_das import PeerDasScenario

    results: dict[str, PolicyPhases] = {}
    pandas_config = ScenarioConfig(
        num_nodes=num_nodes,
        slots=slots,
        seed=seed,
        policy=RedundantSeeding(8),
        params=params if params is not None else PandasParams.full(),
        faults=faults,
    )
    results["pandas"] = _phase_result(Scenario(pandas_config).run(), "pandas")
    results["gossipsub"] = _phase_result(
        GossipDasScenario(pandas_config.with_changes()).run(), "gossipsub"
    )
    results["dht"] = _phase_result(
        DhtDasScenario(pandas_config.with_changes()).run(), "dht"
    )
    results["peerdas"] = _phase_result(
        PeerDasScenario(pandas_config.with_changes()).run(), "peerdas"
    )
    return results


def run_scaling(
    node_counts: Sequence[int] = (100, 200, 400),
    slots: int = 1,
    seed: int = 7,
    system: str = "pandas",
    params: PandasParams | None = None,
) -> dict[int, PolicyPhases]:
    """Figures 13 (system='pandas') and 14 (baselines): size sweeps."""
    from repro.baselines.dht_das import DhtDasScenario
    from repro.baselines.gossipsub_das import GossipDasScenario
    from repro.baselines.peerdas_das import PeerDasScenario

    makers = {
        "pandas": Scenario,
        "gossipsub": GossipDasScenario,
        "dht": DhtDasScenario,
        "peerdas": PeerDasScenario,
    }
    if system not in makers:
        raise ValueError(f"unknown system {system!r}")
    results: dict[int, PolicyPhases] = {}
    for count in node_counts:
        config = ScenarioConfig(
            num_nodes=count,
            slots=slots,
            seed=seed,
            policy=RedundantSeeding(8),
            params=params if params is not None else PandasParams.full(),
        )
        scenario = makers[system](config).run()
        results[count] = _phase_result(scenario, f"{system}@{count}")
    return results


# the Figure 14 sweep under its conventional name
run_size_sweep = run_scaling


def _mark_sweep_point(tracer, sweep: str, **data) -> None:
    """Separate consecutive sweep points inside one shared trace."""
    if tracer is not None and tracer.enabled("sweep_point"):
        tracer.emit("sweep_point", t=0.0, sweep=sweep, **data)


def run_fault_sweep(
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    fault: str = "dead",
    num_nodes: int = 300,
    slots: int = 1,
    seed: int = 7,
    params: PandasParams | None = None,
    tracer=None,
    profiler=None,
) -> dict[float, PolicyPhases]:
    """Figure 15: dead-node (a) or out-of-view (b) sweeps.

    A ``tracer``/``profiler`` is shared across all sweep points; a
    ``sweep_point`` marker event delimits each point's events.
    """
    if fault not in ("dead", "out_of_view"):
        raise ValueError(f"unknown fault type {fault!r}")
    results: dict[float, PolicyPhases] = {}
    for fraction in fractions:
        config = ScenarioConfig(
            num_nodes=num_nodes,
            slots=slots,
            seed=seed,
            policy=RedundantSeeding(8),
            params=params if params is not None else PandasParams.full(),
            dead_fraction=fraction if fault == "dead" else 0.0,
            out_of_view_fraction=fraction if fault == "out_of_view" else 0.0,
            tracer=tracer,
            profiler=profiler,
        )
        _mark_sweep_point(tracer, fault, fraction=fraction)
        scenario = Scenario(config).run()
        results[fraction] = _phase_result(scenario, f"{fault}@{fraction:.0%}")
    return results


@dataclass
class AdversarialPoint:
    """One point of the Byzantine-fraction degradation sweep.

    ``analytic_success`` is the :mod:`repro.das.sybil` prediction of a
    single honest node's sampling success if every Byzantine custodian
    served *nothing*. The measured per-node completion rate
    (``sampling_within_deadline``) tracks it: with the node-side
    defenses active, the only honest nodes that miss the deadline are
    those sampling a cell with no honest custodian on either line —
    the censorship event the formula counts. Single-seed runs deviate
    in either direction because honest-free lines arrive in lumps
    (one empty row censors a cell with *every* empty column).
    """

    fraction: float
    behavior: str
    byzantine_count: int
    honest_count: int
    phases: PolicyPhases
    sampling_within_deadline: float
    consolidation_within_deadline: float
    analytic_success: float
    fault_counts: dict[str, float] = field(default_factory=dict)
    defense_counts: dict[str, float] = field(default_factory=dict)


def run_adversarial_sweep(
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    behavior: str = "mix",
    num_nodes: int = 300,
    slots: int = 1,
    seed: int = 7,
    params: PandasParams | None = None,
    deadline: float = 4.0,
    tracer=None,
    profiler=None,
) -> dict[float, AdversarialPoint]:
    """Honest completion vs Byzantine fraction (Section 9 threat model).

    ``behavior`` is one of :data:`repro.faults.plan.BEHAVIORS` or
    ``"mix"``, which splits the fraction evenly across all five
    behaviors. Each point runs the same seeded scenario with that
    share of nodes replaced by :class:`~repro.faults.adversary.
    ByzantineNode` instances; honest-node phase distributions, the
    realized ``byz_*`` fault counters and the triggered defense
    counters are reported next to the analytic bound from
    :func:`repro.das.sybil.sampling_success_probability`.
    """
    from repro.das.sybil import sampling_success_probability
    from repro.faults.plan import BEHAVIORS, AdversarySpec, FaultPlan

    if behavior != "mix" and behavior not in BEHAVIORS:
        raise ValueError(f"unknown adversary behavior {behavior!r}")
    base = params if params is not None else PandasParams.full()
    results: dict[float, AdversarialPoint] = {}
    for fraction in fractions:
        plan = None
        if fraction > 0.0:
            if behavior == "mix":
                specs = tuple(
                    AdversarySpec(behavior=name, share=fraction / len(BEHAVIORS))
                    for name in BEHAVIORS
                )
            else:
                specs = (AdversarySpec(behavior=behavior, share=fraction),)
            plan = FaultPlan(adversaries=specs)
        config = ScenarioConfig(
            num_nodes=num_nodes,
            slots=slots,
            seed=seed,
            policy=RedundantSeeding(8),
            params=base,
            faults=plan,
            tracer=tracer,
            profiler=profiler,
        )
        _mark_sweep_point(tracer, behavior, fraction=fraction)
        scenario = Scenario(config).run()
        honest = scenario.honest_live_count
        analytic = sampling_success_probability(
            honest_nodes=honest,
            samples=base.samples,
            custody_lines=base.custody_rows + base.custody_cols,
            total_lines=base.ext_rows + base.ext_cols,
        )
        phases = _phase_result(scenario, f"{behavior}@{fraction:.0%}")
        results[fraction] = AdversarialPoint(
            fraction=fraction,
            behavior=behavior,
            byzantine_count=len(scenario.byzantine),
            honest_count=honest,
            phases=phases,
            sampling_within_deadline=phases.sampling.fraction_within(deadline),
            consolidation_within_deadline=phases.consolidation.fraction_within(deadline),
            analytic_success=analytic,
            fault_counts=dict(scenario.metrics.fault_counts),
            defense_counts=dict(scenario.metrics.defense_counts),
        )
    return results
