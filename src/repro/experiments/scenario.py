"""Scenario drivers: build a network, run slots, extract distributions.

``BaseScenario`` owns everything protocol-independent — the simulation
engine, WAN latency model, shaped transport, topology placement, fault
injection and traffic accounting — and is shared by the PANDAS
scenario here and the two baselines in :mod:`repro.baselines`.

Defaults mirror Section 8.1: full Danksharding parameters, the
IPFS-like latency model, 25 Mbps node links, a 10 Gbps builder placed
in the best-connected 20% of vertices, 3% UDP loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable

from repro.analysis.stats import Distribution
from repro.core.assignment import AssignmentIndex, CellAssignment
from repro.core.builder import Builder
from repro.core.context import ProtocolContext
from repro.core.node import PandasNode
from repro.core.seeding import RedundantSeeding, SeedingPolicy
from repro.crypto.randao import RandaoBeacon
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import AdversarySpec, FaultPlan
from repro.net.latency import ClusteredWanModel, LatencyModel
from repro.net.topology import DEFAULT_BUILDER_PROFILE, DEFAULT_NODE_PROFILE, NodeProfile, Topology
from repro.net.transport import DEFAULT_LOSS_RATE, Datagram, Network
from repro.obs.events import TraceRecorder
from repro.obs.profiler import CallbackProfiler
from repro.obs.telemetry import Telemetry
from repro.params import PandasParams
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder
from repro.sim.rng import RngRegistry

__all__ = ["ScenarioConfig", "BaseScenario", "Scenario", "PhaseDistributions"]


@dataclass
class ScenarioConfig:
    """All knobs of one experiment."""

    num_nodes: int = 200
    params: PandasParams = field(default_factory=PandasParams.full)
    policy: SeedingPolicy = field(default_factory=RedundantSeeding)
    seed: int = 0
    loss_rate: float = DEFAULT_LOSS_RATE
    slots: int = 1
    slot_window: float = 12.0
    dead_fraction: float = 0.0
    out_of_view_fraction: float = 0.0
    node_profile: NodeProfile = DEFAULT_NODE_PROFILE
    builder_profile: NodeProfile = DEFAULT_BUILDER_PROFILE
    latency: LatencyModel | None = None  # default: ClusteredWanModel
    num_vertices: int = 2_000
    # disseminate the block over a global GossipSub channel alongside
    # DAS (Figure 9a's comparison curve); off by default so pure DAS
    # timing runs are undisturbed
    include_block_gossip: bool = False
    block_bytes: int = 120_000
    # deterministic dynamic faults (crash/restart, partitions, link
    # faults) driven by dedicated RNG streams; None leaves the
    # transport untouched
    faults: FaultPlan | None = None
    # attach the online protocol-invariant checker (repro.faults.
    # invariants) — any violation raises mid-run
    check_invariants: bool = False
    invariant_fetch_bound_factor: float = 1.0
    # structured event tracing (repro.obs): pure observation — a
    # recorder here must never change simulation behavior, and a
    # dedicated test pins MetricsRecorder.fingerprint() to be
    # bit-identical with tracing on or off
    tracer: TraceRecorder | None = None
    # opt-in wall-clock attribution of simulator callbacks
    # (module:qualname); also behavior-neutral
    profiler: CallbackProfiler | None = None
    # dimensional run-health telemetry (repro.obs.telemetry): a
    # sim-time cadence sampler over counters/gauges/histograms. Same
    # neutrality contract as the tracer — fingerprints are pinned
    # bit-identical with telemetry on or off
    telemetry: Telemetry | None = None
    # event-queue backend ("calendar" or "heap") and transport delivery
    # scheduling ("batched" or "per-datagram"): both pairs execute
    # bit-identically — the scale-regression and transport-conformance
    # suites pin it — and exist so those suites (and A/B perf runs) can
    # select either side from config
    queue: str = "calendar"
    delivery: str = "batched"
    # bounded per-endpoint transport queues (None = legacy unbounded);
    # overflowing datagrams are tail-dropped with reason "overflow" and
    # the I5 backlog invariant enforces the bound when check_invariants
    # is on (sustained-pipeline overload control)
    max_inbox: int | None = None

    def make_latency(self) -> LatencyModel:
        if self.latency is not None:
            return self.latency
        return ClusteredWanModel(num_vertices=self.num_vertices, seed=self.seed)

    def with_changes(self, **changes) -> ScenarioConfig:
        return replace(self, **changes)


@dataclass
class PhaseDistributions:
    seeding: Distribution
    consolidation: Distribution
    sampling: Distribution


class BaseScenario:
    """Protocol-independent scaffolding for one constructed network."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulator(queue=config.queue)
        self.rngs = RngRegistry(config.seed)
        self.latency = config.make_latency()
        self.network = Network(
            self.sim,
            self.latency,
            config.loss_rate,
            self.rngs.stream("loss"),
            delivery=config.delivery,
            max_inbox=config.max_inbox,
        )
        self.metrics = MetricsRecorder()
        self.params = config.params
        self.assignment = CellAssignment(self.params, RandaoBeacon(config.seed))
        self._indexes: dict[int, AssignmentIndex] = {}

        self.node_ids = list(range(config.num_nodes))
        self.builder_id = config.num_nodes

        self.tracer = config.tracer
        if config.profiler is not None:
            self.sim.set_profiler(config.profiler)

        self.ctx = ProtocolContext(
            sim=self.sim,
            network=self.network,
            params=self.params,
            assignment=self.assignment,
            metrics=self.metrics,
            rngs=self.rngs,
            index_for_epoch=self._index_for_epoch,
            builder_id=self.builder_id,
            tracer=self.tracer,
        )

        self._place_participants()
        self.dead_nodes = self._pick_dead_nodes()
        self.byzantine = self._pick_adversaries()
        self._build_participants()
        self._wire_metrics()
        self._wire_tracing()
        self._wire_telemetry()
        for dead in self.dead_nodes:
            self.network.kill(dead)
        self.fault_injector = self._install_faults()
        self.invariants = self._install_invariants()

    # ------------------------------------------------------------------
    # hooks for protocol-specific subclasses
    # ------------------------------------------------------------------
    def _build_participants(self) -> None:
        raise NotImplementedError

    def _node_handler(self, node_id: int) -> Callable[[Datagram], None]:
        raise NotImplementedError

    def _begin_slot(self, slot: int) -> None:
        """Kick off the slot (seed dissemination etc.)."""
        raise NotImplementedError

    def _end_slot(self, slot: int) -> None:
        """Release per-slot state."""

    # ------------------------------------------------------------------
    # shared construction
    # ------------------------------------------------------------------
    def _index_for_epoch(self, epoch: int) -> AssignmentIndex:
        index = self._indexes.get(epoch)
        if index is None:
            index = AssignmentIndex(self.assignment, epoch, self.node_ids)
            self._indexes[epoch] = index
        return index

    def _place_participants(self) -> None:
        rng = self.rngs.stream("topology")
        self.topology = Topology.build(
            self.latency, self.node_ids, [self.builder_id], rng
        )
        config = self.config
        for node_id in self.node_ids:
            self.network.register(
                node_id,
                self.topology.vertex_of(node_id),
                self._node_handler(node_id),
                config.node_profile.up_rate,
                config.node_profile.down_rate,
            )
        self.network.register(
            self.builder_id,
            self.topology.vertex_of(self.builder_id),
            self._builder_handler(),
            config.builder_profile.up_rate,
            config.builder_profile.down_rate,
        )

    def _builder_handler(self) -> Callable[[Datagram], None]:
        return lambda dgram: None

    def _pick_dead_nodes(self) -> set[int]:
        fraction = self.config.dead_fraction
        if fraction <= 0.0:
            return set()
        rng = self.rngs.stream("dead")
        count = int(round(fraction * len(self.node_ids)))
        return set(rng.sample(self.node_ids, count))

    def _node_view(self, node_id: int) -> set[int] | None:
        """Out-of-view fault model: a random subset of the node set."""
        fraction = self.config.out_of_view_fraction
        if fraction <= 0.0:
            return None  # complete, consistent view
        rng = self.rngs.stream("view", node_id)
        keep = int(round((1.0 - fraction) * len(self.node_ids)))
        view = set(rng.sample(self.node_ids, keep))
        view.add(node_id)
        return view

    def _pick_adversaries(self) -> dict[int, AdversarySpec]:
        """Resolve the fault plan's Byzantine roster (node -> spec).

        Resolution uses dedicated ``("faults", "adversary", i)`` RNG
        streams, so an adversarial plan never perturbs the clean run's
        draws. Statically dead nodes are not eligible — a dead
        adversary attacks nobody.
        """
        plan = self.config.faults
        if plan is None or not plan.adversaries:
            return {}
        from repro.faults.adversary import resolve_adversaries

        candidates = [n for n in self.node_ids if n not in self.dead_nodes]
        return resolve_adversaries(plan, self.rngs, candidates)

    @property
    def byzantine_nodes(self) -> set[int]:
        return set(self.byzantine)

    def _install_faults(self) -> FaultInjector | None:
        """Attach the configured fault plan (dead nodes are immune —
        they are a separate, static fault dimension)."""
        plan = self.config.faults
        if plan is None or plan.is_empty:
            return None
        # Byzantine nodes are not crash/slow candidates: each node runs
        # exactly one fault dimension, keeping realized mixes legible.
        candidates = [
            n
            for n in self.node_ids
            if n not in self.dead_nodes and n not in self.byzantine
        ]
        injector = FaultInjector(
            plan,
            sim=self.sim,
            network=self.network,
            rngs=self.rngs,
            metrics=self.metrics,
            candidates=candidates,
            node_lookup=lambda nid: getattr(self, "nodes", {}).get(nid),
            slot_duration=self.params.slot_duration,
            tracer=self.tracer,
        )
        return injector.install()

    def _install_invariants(self) -> InvariantChecker | None:
        if not self.config.check_invariants:
            return None
        checker = InvariantChecker(
            self, fetch_bound_factor=self.config.invariant_fetch_bound_factor
        )
        return checker.install()

    @property
    def crashed_nodes(self) -> set[int]:
        """Nodes the fault plan crashes at some point during the run."""
        if self.fault_injector is None:
            return set()
        return set(self.fault_injector.crash_targets)

    def _wire_metrics(self) -> None:
        """Account traffic: builder egress vs node fetch traffic.

        "Fetch" traffic is everything nodes exchange among themselves
        (queries, responses, gossip forwards, DHT RPCs) in both
        directions — the quantity of Figures 10, 12b, 13b/c, 14b/c.
        Builder-sourced seeding is tracked separately.
        """
        metrics = self.metrics
        builder_id = self.builder_id

        def on_send(dgram: Datagram) -> None:
            slot = getattr(dgram.payload, "slot", None)
            if slot is None or slot < 0:
                return
            if dgram.src == builder_id:
                metrics.record_builder_send(slot, dgram.size)
                return
            metrics.record_send(slot, dgram.src, dgram.size)
            if dgram.dst != builder_id:
                metrics.fetch_messages.add(slot, dgram.src)
                metrics.fetch_bytes.add(slot, dgram.src, dgram.size)

        def on_deliver(dgram: Datagram) -> None:
            slot = getattr(dgram.payload, "slot", None)
            if slot is None or slot < 0 or dgram.dst == builder_id:
                return
            metrics.record_receive(slot, dgram.dst, dgram.size)
            if dgram.src != builder_id:
                metrics.fetch_messages.add(slot, dgram.dst)
                metrics.fetch_bytes.add(slot, dgram.dst, dgram.size)

        def on_drop(dgram: Datagram, reason: str) -> None:
            # bounded-inbox drops (only possible when max_inbox is set)
            # feed the backlog counters the pipeline report surfaces
            if reason == "overflow":
                metrics.record_queue_drop("inbox_overflow")

        self.network.on_send.append(on_send)
        self.network.on_deliver.append(on_deliver)
        self.network.on_drop.append(on_drop)

    def _wire_tracing(self) -> None:
        """Mirror the transport's send/deliver/drop flow into the trace.

        Observers are only attached for kinds the recorder accepts, so
        a kind-filtered recorder (say, queries only) costs nothing on
        the datagram path. Tracing a 1,000-node run stays bounded: the
        recorder ring-buffers and streaming sinks write flat records.
        """
        tracer = self.tracer
        if tracer is None:
            return

        def payload_slot(dgram: Datagram) -> int:
            slot = getattr(dgram.payload, "slot", None)
            return slot if isinstance(slot, int) else -1

        def payload_kind(dgram: Datagram) -> str:
            return type(dgram.payload).__name__

        if tracer.enabled("net_send"):

            def on_send(dgram: Datagram) -> None:
                tracer.emit(
                    "net_send",
                    t=self.sim.now,
                    slot=payload_slot(dgram),
                    node=dgram.src,
                    dst=dgram.dst,
                    size=dgram.size,
                    payload=payload_kind(dgram),
                )

            self.network.on_send.append(on_send)

        if tracer.enabled("net_deliver"):

            def on_deliver(dgram: Datagram) -> None:
                tracer.emit(
                    "net_deliver",
                    t=self.sim.now,
                    slot=payload_slot(dgram),
                    node=dgram.dst,
                    src=dgram.src,
                    size=dgram.size,
                    payload=payload_kind(dgram),
                )

            self.network.on_deliver.append(on_deliver)

        if tracer.enabled("net_drop"):

            def on_drop(dgram: Datagram, reason: str) -> None:
                tracer.emit(
                    "net_drop",
                    t=self.sim.now,
                    slot=payload_slot(dgram),
                    node=dgram.dst,
                    src=dgram.src,
                    size=dgram.size,
                    payload=payload_kind(dgram),
                    reason=reason,
                )

            self.network.on_drop.append(on_drop)

        if tracer.enabled("queue_overflow"):

            def on_overflow(dgram: Datagram, reason: str) -> None:
                if reason != "overflow":
                    return
                tracer.emit(
                    "queue_overflow",
                    t=self.sim.now,
                    slot=payload_slot(dgram),
                    node=dgram.dst,
                    src=dgram.src,
                    size=dgram.size,
                )

            self.network.on_drop.append(on_overflow)

    def _wire_telemetry(self) -> None:
        """Attach the dimensional telemetry registry, if configured.

        Everything here is read-only observation: the metrics tap
        mirrors writes that already happen, the transport observer
        looks at datagrams already sent, and the gauge collector only
        reads state. The sampler's cadence ticks are extra simulator
        events, but they schedule nothing and draw no RNG, so the
        fingerprint-equality tests hold.
        """
        tel = self.config.telemetry
        self.telemetry = tel
        if tel is None:
            return
        config = self.config
        tel.configure_layers(builder_id=self.builder_id)
        tel.set_run_info(
            nodes=config.num_nodes,
            slots=config.slots,
            slot_duration=self.params.slot_duration,
            deadline=self.params.deadline,
            seed=config.seed,
        )
        tel.expected_end = config.slots * self.params.slot_duration
        self.ctx.telemetry = tel
        self.metrics.tap = tel

        def on_send(dgram: Datagram) -> None:
            tel.observe_send(dgram.src, dgram.dst, dgram.size, dgram.payload)

        self.network.on_send.append(on_send)

        network = self.network

        def collect() -> None:
            tel.set_gauge("inbox_depth_max", float(network.max_queue_depth()))
            tel.set_gauge("inbox_overflows", float(network.datagrams_overflowed))
            tel.set_gauge("datagrams_sent", float(network.datagrams_sent))
            tel.set_gauge("datagrams_delivered", float(network.datagrams_delivered))
            tel.set_gauge("datagrams_lost", float(network.datagrams_lost))
            tel.set_gauge(
                "live_nodes",
                float(sum(1 for n in self.node_ids if network.is_alive(n))),
            )
            nodes = getattr(self, "nodes", None)
            if nodes:
                quarantined = 0
                pending = 0
                for node in nodes.values():
                    reputation = getattr(node, "reputation", None)
                    if reputation is not None:
                        quarantined += reputation.quarantined_count()
                    depth = getattr(node, "pending_depth", None)
                    if depth is not None:
                        pending += depth()
                tel.set_gauge("quarantined_peers", float(quarantined))
                tel.set_gauge("pending_requests", float(pending))

        tel.add_collector(collect)
        tel.install(self.sim)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_slot(self, slot: int) -> None:
        """Run one full slot of the protocol."""
        start = slot * self.params.slot_duration
        if self.sim.now < start:
            self.sim.run(until=start)
        self.ctx.begin_slot(slot)
        self._begin_slot(slot)
        self.sim.run(until=start + self.config.slot_window)
        self._end_slot(slot)

    def run(self, slots: int | None = None) -> BaseScenario:
        for slot in range(slots if slots is not None else self.config.slots):
            self.run_slot(slot)
        if self.invariants is not None:
            self.invariants.check_final()
        if self.telemetry is not None:
            self.telemetry.finalize(
                expected_samples=len(self.ctx.slot_starts) * self.honest_live_count
            )
        return self

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    @property
    def live_node_count(self) -> int:
        return len(self.node_ids) - len(self.dead_nodes)

    @property
    def honest_live_count(self) -> int:
        """Live nodes that are not running a Byzantine behavior."""
        return len(self.node_ids) - len(self.dead_nodes | set(self.byzantine))

    def _alive_phase(self, phase: str) -> list[float | None]:
        """Phase times over live *honest* nodes; absent entries are misses.

        Byzantine nodes are excluded: they run the protocol too (which
        is what makes them hard to spot), but the paper's question —
        and the adversarial sweeps' — is whether honest nodes finish
        in time, not whether the attackers do.
        """
        values: list[float | None] = []
        byzantine = self.byzantine
        for (slot, node), times in self.metrics.phase_times.items():
            if node in self.dead_nodes or node in byzantine:
                continue
            values.append(getattr(times, phase))
        slots_run = len(self.ctx.slot_starts)
        expected = slots_run * self.honest_live_count
        values.extend([None] * max(0, expected - len(values)))
        return values

    def phase_distributions(self) -> PhaseDistributions:
        return PhaseDistributions(
            seeding=Distribution.from_optional(self._alive_phase("seeding")),
            consolidation=Distribution.from_optional(self._alive_phase("consolidation")),
            sampling=Distribution.from_optional(self._alive_phase("sampling")),
        )

    def sampling_distribution(self) -> Distribution:
        return Distribution.from_optional(self._alive_phase("sampling"))

    def fetch_message_distribution(self) -> Distribution:
        values = [
            value
            for (slot, node), value in self.metrics.fetch_messages.items()
            if node not in self.dead_nodes and node not in self.byzantine
        ]
        return Distribution(sorted(values))

    def fetch_bytes_distribution(self) -> Distribution:
        values = [
            value
            for (slot, node), value in self.metrics.fetch_bytes.items()
            if node not in self.dead_nodes and node not in self.byzantine
        ]
        return Distribution(sorted(values))

    def builder_egress_bytes(self, slot: int = 0) -> float:
        return self.metrics.builder_bytes_sent.get(slot, 0.0)


class Scenario(BaseScenario):
    """The PANDAS protocol scenario (builder seeding + adaptive fetch)."""

    def _build_participants(self) -> None:
        self.nodes: dict[int, PandasNode] = {}
        for node_id in self.node_ids:
            spec = self.byzantine.get(node_id)
            if spec is None:
                self.nodes[node_id] = PandasNode(
                    self.ctx, node_id, self._node_view(node_id)
                )
            else:
                from repro.faults.adversary import ByzantineNode

                self.nodes[node_id] = ByzantineNode(
                    self.ctx,
                    node_id,
                    spec,
                    victims=[n for n in self.node_ids if n not in self.dead_nodes],
                    view=self._node_view(node_id),
                )
        self.builder = Builder(self.ctx, self.builder_id, self.config.policy)
        self.block_overlay: GossipOverlay | None = None
        if self.config.include_block_gossip:
            from repro.gossip.pubsub import GossipOverlay

            self.block_overlay = GossipOverlay(
                self.network, self.rngs.stream("block-mesh")
            )
            self.block_overlay.create_topic(
                "blocks", self.node_ids, handler=self._on_block
            )

    def _on_block(self, member: int, message) -> None:
        self.metrics.mark_block(
            message.slot, member, self.ctx.since_slot_start(message.slot)
        )

    def _node_handler(self, node_id: int) -> Callable[[Datagram], None]:
        def handler(dgram: Datagram) -> None:
            from repro.gossip.pubsub import GossipMessage

            if isinstance(dgram.payload, GossipMessage):
                if self.block_overlay is not None:
                    self.block_overlay.on_datagram(node_id, dgram)
                return
            self.nodes[node_id].on_datagram(dgram)

        return handler

    def _begin_slot(self, slot: int) -> None:
        if self.block_overlay is not None:
            # a randomly chosen node acts as the proposer and gossips
            # the block, concurrently with the builder's seeding
            proposer = self.rngs.stream("proposer").choice(self.node_ids)
            self.metrics.mark_block(slot, proposer, 0.0)
            self.block_overlay.publish(
                publisher=proposer,
                topic="blocks",
                msg_id=("block", slot),
                payload=None,
                payload_size=self.config.block_bytes,
                slot=slot,
            )
        self.builder.seed_slot(slot)
        for node_id in self.byzantine:
            node = self.nodes[node_id]
            if hasattr(node, "on_slot_begin"):
                node.on_slot_begin(slot)

    def _end_slot(self, slot: int) -> None:
        for node in self.nodes.values():
            node.drop_slot(slot)
        if self.block_overlay is not None:
            self.block_overlay.reset_seen()

    def block_distribution(self) -> Distribution:
        return Distribution.from_optional(self._alive_phase("block"))
