"""Churn extension: nodes joining and leaving across slots.

The paper's fault scenarios are static snapshots (a fixed fraction
dead or out-of-view). Real networks *churn*: nodes leave, new nodes
join, and — because views come from periodic DHT crawls that take
about a minute (Section 4.1) — every participant works from a view
that lags reality by some number of slots. This module extends the
scenario driver with exactly that:

- after every slot, ``churn_fraction`` of the current nodes depart
  (fail-silent) and the same number of fresh nodes join;
- each slot, every node's view is the membership as it stood
  ``view_lag_slots`` slots earlier — departed nodes are still being
  queried, joiners are invisible until the next crawl completes;
- the builder, which crawls continuously, seeds the *current*
  membership (new joiners get custody immediately, exactly as the
  deterministic assignment prescribes).

This exercises the same robustness machinery as Figure 15 but in a
dynamic regime the paper leaves as discussion.
"""

from __future__ import annotations


from repro.core.assignment import AssignmentIndex
from repro.core.node import PandasNode
from repro.experiments.scenario import Scenario, ScenarioConfig

__all__ = ["ChurnScenario"]


class ChurnScenario(Scenario):
    """A PANDAS scenario with per-slot membership turnover.

    Extra knobs (constructor arguments, not ScenarioConfig fields, so
    the base config stays serializable and comparable):

    - ``churn_fraction``: fraction of current nodes replaced after
      every slot (default 0.1);
    - ``view_lag_slots``: how many slots behind reality the nodes'
      views run (default 1; 0 means perfectly fresh views).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        churn_fraction: float = 0.1,
        view_lag_slots: int = 1,
    ) -> None:
        if not 0.0 <= churn_fraction < 1.0:
            raise ValueError("churn_fraction must be in [0, 1)")
        if view_lag_slots < 0:
            raise ValueError("view_lag_slots must be non-negative")
        self.churn_fraction = churn_fraction
        self.view_lag_slots = view_lag_slots
        self.departed: set[int] = set()
        self._membership_history: list[set[int]] = []
        self._next_address: int = 0
        super().__init__(config)
        self._next_address = self.builder_id + 1
        self._membership_history.append(set(self.node_ids))

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def current_members(self) -> set[int]:
        return set(self.node_ids) - self.departed

    def _membership_at(self, slot: int) -> set[int]:
        """Membership as known by a crawl finishing ``view_lag_slots``
        slots before ``slot`` (clamped to genesis)."""
        index = max(0, min(len(self._membership_history) - 1, slot - self.view_lag_slots))
        return self._membership_history[index]

    def _apply_churn(self, completed_slot: int) -> None:
        rng = self.rngs.stream("churn", completed_slot)
        members = sorted(self.current_members)
        leave_count = int(round(self.churn_fraction * len(members)))
        if leave_count == 0:
            self._membership_history.append(self.current_members)
            return
        leavers = rng.sample(members, leave_count)
        for leaver in leavers:
            self.departed.add(leaver)
            self.network.kill(leaver)
            if self.block_overlay is not None:
                # a departed node's dedup ids and mesh edges would
                # otherwise be retained for the whole sustained run
                self.block_overlay.retire_member(leaver)
        for _ in range(leave_count):
            self._spawn_node()
        # crawls see the post-churn world from now on
        self._membership_history.append(self.current_members)
        # future epochs' custodian indexes must include the joiners
        self._indexes.clear()

    def _spawn_node(self) -> int:
        address = self._next_address
        self._next_address += 1
        vertex = self.rngs.stream("churn-topology").randrange(self.latency.num_vertices)
        self.network.register(
            address,
            vertex,
            self._node_handler(address),
            self.config.node_profile.up_rate,
            self.config.node_profile.down_rate,
        )
        self.nodes[address] = PandasNode(self.ctx, address, None)
        self.node_ids.append(address)
        return address

    # ------------------------------------------------------------------
    # scenario hooks
    # ------------------------------------------------------------------
    def _index_for_epoch(self, epoch: int) -> AssignmentIndex:
        index = self._indexes.get(epoch)
        if index is None:
            # custodianship over the *current* membership: departed
            # nodes keep appearing until peers' views catch up, which
            # is handled by the view filter, but they must not receive
            # fresh custody
            index = AssignmentIndex(self.assignment, epoch, sorted(self.current_members))
            self._indexes[epoch] = index
        return index

    def _begin_slot(self, slot: int) -> None:
        # refresh every live node's (lagged) view before the slot runs
        view = self._membership_at(slot)
        fresh = self.view_lag_slots == 0
        for node_id, node in self.nodes.items():
            if node_id in self.departed:
                continue
            node.view = None if fresh else (view | {node_id})
        self.builder.view = self.current_members
        super()._begin_slot(slot)

    def _end_slot(self, slot: int) -> None:
        super()._end_slot(slot)
        self._apply_churn(slot)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def sampling_completion_by_slot(self) -> dict[int, float]:
        """Fraction of that slot's live nodes that sampled within 4 s."""
        outcome: dict[int, float] = {}
        for slot in self.ctx.slot_starts:
            live = [
                node
                for node in self._membership_history[min(slot, len(self._membership_history) - 1)]
            ]
            if not live:
                continue
            within = 0
            for node in live:
                times = self.metrics.phase_times.get((slot, node))
                if times and times.sampling is not None and times.sampling <= 4.0:
                    within += 1
            outcome[slot] = within / len(live)
        return outcome
