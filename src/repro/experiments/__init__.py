"""Experiment drivers: scenarios, figure runners, paper-vs-measured reporting."""

from repro.experiments.figures import (
    PolicyPhases,
    run_adaptive_vs_constant,
    run_baseline_comparison,
    run_fault_sweep,
    run_policy_comparison,
    run_scaling,
    run_table1,
)
from repro.experiments.churn import ChurnScenario
from repro.experiments.scenario import BaseScenario, PhaseDistributions, Scenario, ScenarioConfig

__all__ = [
    "PolicyPhases",
    "run_adaptive_vs_constant",
    "run_baseline_comparison",
    "run_fault_sweep",
    "run_policy_comparison",
    "run_scaling",
    "run_table1",
    "BaseScenario",
    "ChurnScenario",
    "PhaseDistributions",
    "Scenario",
    "ScenarioConfig",
]
