"""Sustained multi-slot pipeline with overload control.

Every other experiment driver runs slots one at a time and lets each
drain completely before the next begins. The real protocol never gets
that luxury: slot N+1's seeding starts while slot N's stragglers are
still retrying, membership churns at epoch/slot boundaries, and layer-2
clients keep asking for data whether or not the serving tier has
capacity left. :class:`PipelineScenario` is that regime:

- **Overlapping phases**: slot N+1 begins exactly one
  ``slot_duration`` after slot N, while slot N's fetchers (and its
  probe retrievals) are still live. Per-slot state is only released
  ``retention_slots`` slots later, so work in flight is never yanked
  at an artificial barrier.
- **Churn mid-stream**: membership turns over at every slot boundary
  (``ChurnScenario`` machinery), which under overlap means nodes
  disappear *while still owing responses* for earlier slots.
- **Overload control end to end**: bounded transport inboxes
  (``ScenarioConfig.max_inbox``), bounded per-node request buffers
  (``PandasParams.pending_request_limit``), retrieval admission
  (``retrieval_admit_rate``), deadline-aware retry/backoff
  (``PandasParams.fetch_retry``) and the aggregate layer-2 load model
  (:class:`~repro.core.retrieval.AggregateRetrievalLoad`) all engage
  at once; the I5 invariant checks no queue ever exceeds its bound.
- **Measured retrieval**: a handful of *probe* ``RetrievalClient``
  instances issue real per-request retrievals each slot, giving
  measured latency percentiles to place next to the aggregate model's
  M/M/1 estimates. Sampling keeps strict priority: the aggregate
  model is only offered the capacity left over after the slot's
  sampling traffic.

Everything is seeded: two runs with the same config and knobs produce
bit-identical metrics fingerprints (``PipelineReport.fingerprint``),
which is what lets overload behaviour be regression-tested at all.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.stats import percentile
from repro.core.retrieval import AggregateRetrievalLoad, RetrievalClient, RetrievalResult
from repro.experiments.churn import ChurnScenario
from repro.experiments.scenario import ScenarioConfig

__all__ = ["PROBE_BASE_ADDRESS", "PipelineReport", "PipelineScenario"]

# Probe clients live far above any address churn can ever allocate
# (joiners are numbered up from builder_id + 1, one per departure).
PROBE_BASE_ADDRESS = 10_000_000


@dataclass
class PipelineReport:
    """Machine-readable outcome of one sustained pipeline run."""

    slots: int
    deadline_hit_rate: float
    rows: list[dict[str, object]] = field(default_factory=list)
    probe: dict[str, object] = field(default_factory=dict)
    aggregate: dict[str, object] = field(default_factory=dict)
    sheds: dict[str, float] = field(default_factory=dict)
    queue_drops: dict[str, float] = field(default_factory=dict)
    queue_depth_peaks: dict[str, int] = field(default_factory=dict)
    datagrams_overflowed: int = 0
    fingerprint: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "slots": self.slots,
            "deadline_hit_rate": self.deadline_hit_rate,
            "rows": self.rows,
            "probe": self.probe,
            "aggregate": self.aggregate,
            "sheds": self.sheds,
            "queue_drops": self.queue_drops,
            "queue_depth_peaks": self.queue_depth_peaks,
            "datagrams_overflowed": self.datagrams_overflowed,
            "fingerprint": self.fingerprint,
        }


class PipelineScenario(ChurnScenario):
    """Continuous slot pipeline over a churning, overloaded network.

    Knobs beyond :class:`ChurnScenario`:

    - ``retention_slots``: how many slots of per-node state stay live
      behind the head slot before being released (>= 1);
    - ``probes_per_slot`` / ``probe_delay`` / ``probe_rows``: measured
      retrieval probes launched ``probe_delay`` seconds into every
      slot, each asking for ``probe_rows`` full rows;
    - ``probe_max_concurrent`` / ``probe_defer_limit``: client-side
      admission control for the probes (``None`` = unbounded);
    - ``client_rate``: aggregate layer-2 arrival rate in requests/s —
      a float, or a sequence cycled per slot (to model overload
      bursts); ``service_rate``/``admit_rate_aggregate``/
      ``max_backlog`` parameterize the serving-tier fluid model
      (``service_rate=None`` disables it);
    - ``sampling_cost``: serving-tier requests/s consumed per observed
      sampling message/s (sampling's strict priority over retrieval).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        churn_fraction: float = 0.05,
        view_lag_slots: int = 1,
        retention_slots: int = 2,
        probes_per_slot: int = 2,
        probe_delay: float = 1.0,
        probe_rows: int = 1,
        probe_max_concurrent: int | None = 4,
        probe_defer_limit: int = 8,
        client_rate: float | Sequence[float] = 0.0,
        service_rate: float | None = None,
        admit_rate_aggregate: float | None = None,
        max_backlog: float | None = None,
        sampling_cost: float = 1.0,
    ) -> None:
        if retention_slots < 1:
            raise ValueError("retention_slots must be at least 1")
        if probes_per_slot < 0:
            raise ValueError("probes_per_slot must be non-negative")
        if probe_delay < 0.0:
            raise ValueError("probe_delay must be non-negative")
        if probe_rows < 1:
            raise ValueError("probe_rows must be at least 1")
        if sampling_cost < 0.0:
            raise ValueError("sampling_cost must be non-negative")
        self.retention_slots = retention_slots
        self.probes_per_slot = probes_per_slot
        self.probe_delay = probe_delay
        self.probe_rows = probe_rows
        self.client_rate = client_rate
        self.sampling_cost = sampling_cost
        self.aggregate: AggregateRetrievalLoad | None = None
        if service_rate is not None:
            self.aggregate = AggregateRetrievalLoad(
                service_rate,
                admit_rate=admit_rate_aggregate,
                max_backlog=max_backlog,
            )
        self.probe_results: list[RetrievalResult] = []
        self._slot_rows: list[dict[str, object]] = []
        self._retired = 0
        super().__init__(config, churn_fraction, view_lag_slots)
        self.probes: list[RetrievalClient] = []
        if probes_per_slot > 0:
            rng = self.rngs.stream("pipeline-probe-topology")
            for i in range(max(1, min(probes_per_slot, 4))):
                address = PROBE_BASE_ADDRESS + i
                client = RetrievalClient(
                    self.ctx,
                    address,
                    max_concurrent=probe_max_concurrent,
                    defer_limit=probe_defer_limit,
                )
                self.network.register(
                    address,
                    rng.randrange(self.latency.num_vertices),
                    client.on_datagram,
                    config.node_profile.up_rate,
                    config.node_profile.down_rate,
                )
                self.probes.append(client)

    def _wire_telemetry(self) -> None:
        """Extend the base wiring with pipeline-specific dimensions:
        probe traffic is classed as the ``retrieval`` layer and the
        aggregate fluid model's backlog/shed feed extra gauges."""
        super()._wire_telemetry()
        tel = self.telemetry
        if tel is None:
            return
        tel.configure_layers(retrieval_floor=PROBE_BASE_ADDRESS)
        tel.gauge(
            "aggregate_backlog",
            "Aggregate retrieval fluid-model backlog (requests)",
        )
        tel.gauge(
            "aggregate_shed",
            "Aggregate retrieval requests shed so far",
        )

        def collect() -> None:
            aggregate = self.aggregate
            if aggregate is not None:
                tel.set_gauge("aggregate_backlog", float(aggregate.backlog))
                tel.set_gauge("aggregate_shed", float(aggregate.shed_total))

        tel.add_collector(collect)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, slots: int | None = None) -> PipelineScenario:
        """Run the continuous pipeline: one slot begins every
        ``slot_duration`` seconds regardless of what is still in
        flight, then a final drain window lets the tail settle."""
        total = slots if slots is not None else self.config.slots
        duration = self.params.slot_duration
        for slot in range(total):
            start = slot * duration
            if self.sim.now < start:
                self.sim.run(until=start)
            if slot > 0:
                # boundary churn happens while the previous slots'
                # fetchers and probes are still live — mid-stream
                self._apply_churn(slot - 1)
            self._retire_through(slot - self.retention_slots)
            self.ctx.begin_slot(slot)
            self._begin_slot(slot)
            self._launch_probes(slot)
            self.sim.run(until=start + duration)
            self._step_aggregate(slot, duration)
            self._record_slot(slot)
        # drain: the last slots keep their state for the configured
        # window so late retries/probes can still land
        drain_until = max(
            total * duration, (total - 1) * duration + self.config.slot_window
        )
        self.sim.run(until=drain_until)
        self._retire_through(total - 1)
        if self.invariants is not None:
            self.invariants.check_final()
        if self.telemetry is not None:
            history = self._membership_history
            expected = sum(
                len(history[min(slot, len(history) - 1)])
                for slot in self.ctx.slot_starts
            )
            self.telemetry.finalize(expected_samples=expected)
        return self

    def _retire_through(self, slot: int) -> None:
        """Release per-node state for every slot up to ``slot``."""
        advanced = False
        while self._retired <= slot:
            retiring = self._retired
            self._retired += 1
            advanced = True
            for node in self.nodes.values():
                node.drop_slot(retiring)
        if advanced and self.block_overlay is not None:
            # the single-slot paths call reset_seen() between slots; a
            # sustained pipeline never ends a slot, so gossip dedup ids
            # are expired with the same retention window instead of
            # accumulating for the whole run
            self.block_overlay.expire_seen(self._retired)

    # ------------------------------------------------------------------
    # measured retrieval probes
    # ------------------------------------------------------------------
    def _launch_probes(self, slot: int) -> None:
        if not self.probes or self.probes_per_slot == 0:
            return
        rng = self.rngs.stream("pipeline-probe", slot)
        ext_rows = self.params.ext_rows
        for i in range(self.probes_per_slot):
            client = self.probes[i % len(self.probes)]
            rows = tuple(
                sorted(rng.sample(range(ext_rows), min(self.probe_rows, ext_rows)))
            )
            self.sim.call_after(
                self.probe_delay,
                lambda client=client, rows=rows: self.probe_results.append(
                    client.fetch_lines(slot, rows=rows)
                ),
            )

    # ------------------------------------------------------------------
    # aggregate layer-2 load (fluid model, sampling has priority)
    # ------------------------------------------------------------------
    def _client_rate_for(self, slot: int) -> float:
        rate = self.client_rate
        if isinstance(rate, (int, float)):
            return float(rate)
        if not rate:
            return 0.0
        return float(rate[slot % len(rate)])

    def _sampling_message_rate(self, slot: int, duration: float) -> float:
        """Observed sampling-path messages/s for the slot (both
        directions over honest fetch traffic)."""
        total = sum(
            value
            for (s, _node), value in self.metrics.fetch_messages.items()
            if s == slot
        )
        return total / duration if duration > 0 else 0.0

    def _step_aggregate(self, slot: int, duration: float) -> None:
        aggregate = self.aggregate
        if aggregate is None:
            return
        sampling_share = self.sampling_cost * self._sampling_message_rate(
            slot, duration
        )
        capacity = max(0.0, aggregate.service_rate - sampling_share)
        aggregate.offer(self._client_rate_for(slot), duration, capacity=capacity)

    # ------------------------------------------------------------------
    # per-slot bookkeeping
    # ------------------------------------------------------------------
    def _record_slot(self, slot: int) -> None:
        shed_total = sum(self.metrics.shed_counts.values())
        row: dict[str, object] = {
            "slot": slot,
            "epoch": self.ctx.epoch_of(slot),
            "live_nodes": len(self.current_members),
            "max_queue_depth": self.network.max_queue_depth(),
            "datagrams_overflowed": self.network.datagrams_overflowed,
            "shed_total": shed_total,
        }
        if self.aggregate is not None:
            row["aggregate_backlog"] = self.aggregate.backlog
            row["aggregate_shed"] = self.aggregate.shed_total
        self._slot_rows.append(row)
        self.ctx.trace(
            "pipeline_slot",
            slot=slot,
            live=row["live_nodes"],
            depth=row["max_queue_depth"],
            shed=shed_total,
        )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def deadline_hit_by_slot(self) -> dict[int, float]:
        """Fraction of each slot's live nodes that sampled within the
        protocol deadline (``params.deadline``)."""
        deadline = self.params.deadline
        outcome: dict[int, float] = {}
        history = self._membership_history
        for slot in self.ctx.slot_starts:
            live = history[min(slot, len(history) - 1)]
            if not live:
                continue
            within = 0
            for node in live:
                times = self.metrics.phase_times.get((slot, node))
                if times and times.sampling is not None and times.sampling <= deadline:
                    within += 1
            outcome[slot] = within / len(live)
        return outcome

    def _probe_summary(self) -> dict[str, object]:
        issued = len(self.probe_results)
        completed = sorted(
            r.elapsed for r in self.probe_results if r.complete and not r.shed
        )
        shed = sum(1 for r in self.probe_results if r.shed)
        summary: dict[str, object] = {
            "issued": issued,
            "completed": len(completed),
            "shed": shed,
            "client_shed": sum(c.shed_count for c in self.probes),
            "deferred_peak": max((c.deferred_peak for c in self.probes), default=0),
        }
        if completed:
            summary["latency_p50"] = percentile(completed, 50.0)
            summary["latency_p90"] = percentile(completed, 90.0)
            summary["latency_p99"] = percentile(completed, 99.0)
        return summary

    def report(self) -> PipelineReport:
        hits = self.deadline_hit_by_slot()
        overall = sum(hits.values()) / len(hits) if hits else 0.0
        aggregate: dict[str, object] = {}
        if self.aggregate is not None:
            aggregate = dict(self.aggregate.snapshot())
            for label, q in (("latency_p50", 0.5), ("latency_p99", 0.99)):
                value = self.aggregate.latency_quantile(q)
                if value is not None:
                    aggregate[label] = value
        rows: list[dict[str, object]] = []
        for row in self._slot_rows:
            slot = row["slot"]
            hit = hits.get(slot, 0.0) if isinstance(slot, int) else 0.0
            rows.append(dict(row, deadline_hit=hit))
        return PipelineReport(
            slots=len(self._slot_rows),
            deadline_hit_rate=overall,
            rows=rows,
            probe=self._probe_summary(),
            aggregate=aggregate,
            sheds={k: v for k, v in sorted(self.metrics.shed_counts.items())},
            queue_drops={k: v for k, v in sorted(self.metrics.queue_drop_counts.items())},
            queue_depth_peaks={
                k: int(v) for k, v in sorted(self.metrics.queue_depth_peaks.items())
            },
            datagrams_overflowed=self.network.datagrams_overflowed,
            fingerprint=self.metrics.fingerprint(),
        )
