"""Paper-vs-measured reporting for the benchmark harness.

Holds the reference numbers the paper reports (Section 8) and prints
each experiment's measured distributions next to them. Absolute
values are not expected to match — the substrate is a simulator at a
reduced population — but the *shape* must: orderings between
policies/systems, deadline hit-rates, and crossover directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.analysis.stats import Distribution

__all__ = [
    "PAPER",
    "format_distribution_row",
    "print_header",
    "print_row",
    "print_block",
    "print_trace_report",
    "shape_checks",
]


# Reference values transcribed from the paper (1,000-node deployment
# unless noted). Times in seconds.
PAPER: dict[str, dict[str, float]] = {
    # Figure 9d time-to-sampling per policy
    "fig9d.minimal": {"max": 3.341, "p99": 2.303, "median": 1.235, "within4s": 1.0},
    "fig9d.single": {"max": 3.062, "p99": 2.068, "median": 1.122, "within4s": 1.0},
    "fig9d.redundant": {"max": 3.009, "p99": 2.020, "median": 0.882, "within4s": 1.0},
    # Figure 9c consolidation from slot start (medians)
    "fig9c.minimal": {"median": 1.178},
    "fig9c.single": {"median": 1.072},
    "fig9c.redundant": {"median": 0.869},
    # Figure 9b consolidation from seeding (max / P99)
    "fig9b.minimal": {"max": 2.213, "p99": 1.756},
    "fig9b.single": {"max": 2.046, "p99": 1.595},
    "fig9b.redundant": {"max": 1.985, "p99": 1.558},
    # Figure 9a seeding (max / P99)
    "fig9a.minimal": {"max": 0.700, "p99": 0.698},
    "fig9a.single": {"max": 0.819, "p99": 0.705},
    "fig9a.redundant": {"max": 0.936, "p99": 0.715},
    # builder egress per policy (bytes)
    "egress.minimal": {"bytes": 36.6e6},
    "egress.single": {"bytes": 149e6},
    "egress.redundant": {"bytes": 1208e6},
    # Figure 10 max fetch traffic per node (bytes, both directions)
    "fig10.minimal": {"max_bytes": 2.26e6},
    "fig10.single": {"max_bytes": 2.0e6},
    "fig10.redundant": {"max_bytes": 1.99e6},
    # Figure 11 constant-fetching time-to-sampling
    "fig11.constant": {"max": 4.129, "p99": 3.513, "median": 1.546},
    "fig11.adaptive": {"max": 3.009, "p99": 2.020, "median": 0.882},
    # Figure 12 at 1,000 nodes
    "fig12.pandas": {"mean": 0.882, "within4s": 1.0, "msgs": 1613},
    "fig12.gossipsub": {"mean": 3.660, "within4s": 0.76, "msgs": 2370},
    "fig12.dht": {"within4s": 0.83, "msgs": 3021},
    # Figure 13: PANDAS scaling (fraction within 4 s)
    "fig13.10000": {"within4s": 1.0},
    "fig13.20000": {"within4s": 0.90},
    # Figure 15 fraction of nodes sampling within 4 s (10,000 nodes)
    "fig15.dead": {"0.0": 0.92, "0.2": 0.83, "0.4": 0.74, "0.6": 0.45, "0.8": 0.27},
    "fig15.oov": {"0.0": 0.92, "0.2": 0.83, "0.4": 0.67, "0.6": 0.47, "0.8": 0.25},
}


def format_distribution_row(
    label: str,
    dist: Distribution,
    deadline: float | None = 4.0,
    paper_key: str | None = None,
) -> str:
    """One aligned row: measured stats plus the paper's reference."""
    if dist.count == 0:
        return f"{label:<28} (no samples)"
    import math

    median = dist.median
    p99 = dist.p99
    parts = [
        f"{label:<28}",
        f"median={median * 1e3:7.0f}ms" if not math.isnan(median) else "median=   miss",
        f"p99={'miss' if p99 == math.inf else f'{p99 * 1e3:.0f}ms':>8}",
    ]
    if deadline is not None:
        parts.append(f"within{deadline:.0f}s={100 * dist.fraction_within(deadline):5.1f}%")
    if paper_key and paper_key in PAPER:
        ref = PAPER[paper_key]
        ref_bits = []
        if "median" in ref:
            ref_bits.append(f"median={ref['median'] * 1e3:.0f}ms")
        if "p99" in ref:
            ref_bits.append(f"p99={ref['p99'] * 1e3:.0f}ms")
        if "within4s" in ref:
            ref_bits.append(f"within4s={100 * ref['within4s']:.0f}%")
        if ref_bits:
            parts.append("| paper: " + " ".join(ref_bits))
    return " ".join(parts)


# Emitted lines are buffered so the benchmark conftest can replay them
# in pytest's terminal summary (per-test stdout is captured and thrown
# away for passing tests); outside pytest they print immediately.
_BUFFER: list = []  # reprolint: disable=RL009 -- human-facing print buffer; drained by the pytest reporter, never feeds sim state


def drain_buffer() -> list:
    """Return and clear all report lines emitted so far."""
    lines = list(_BUFFER)
    _BUFFER.clear()
    return lines


def _emit(text: str) -> None:
    import os
    import sys

    _BUFFER.append(text)
    if "PYTEST_CURRENT_TEST" not in os.environ:
        sys.stdout.write(text + "\n")
        sys.stdout.flush()


def print_header(title: str) -> None:
    _emit("")
    _emit("=" * 78)
    _emit(title)
    _emit("=" * 78)


def print_row(text: str) -> None:
    _emit("  " + text)


def print_block(text: str) -> None:
    """Emit a multi-line block (e.g. an ASCII CDF) indented."""
    for line in text.splitlines():
        _emit("  " + line)


def shape_checks(checks: Iterable[tuple]) -> None:
    """Print PASS/FAIL for each (description, bool) shape assertion."""
    for description, passed in checks:
        print_row(f"[{'PASS' if passed else 'FAIL'}] {description}")


def print_trace_report(
    events: Iterable,
    slot: int = 0,
    phase: str = "sampling",
    count: int = 3,
) -> None:
    """Slowest-node ranking plus a causal report for the very slowest.

    ``events`` is anything :mod:`repro.obs.timeline` accepts — live
    ``TraceEvent`` objects or dicts loaded from a JSONL trace.
    """
    from repro.obs.timeline import as_dict, causal_report, lifecycle_problems, slowest_nodes

    materialized = [as_dict(e) for e in events]
    print_header(f"Trace report: slot {slot}, slowest by {phase}")
    problems = lifecycle_problems(materialized)
    print_row(
        f"query lifecycle: {'OK' if not problems else f'{len(problems)} problem(s)'}"
    )
    for problem in problems[:5]:
        print_row(f"  !! {problem}")
    ranked = slowest_nodes(materialized, slot=slot, phase=phase, count=count)
    if not ranked:
        print_row("(no node events in this slot)")
        return
    for node, at in ranked:
        done = "miss" if at is None else f"{at * 1e3:.0f}ms"
        print_row(f"node {node:>5}: {phase} {done}")
    slowest, _at = ranked[0]
    print_row("")
    print_row(f"-- node {slowest} causal timeline --")
    for line in causal_report(materialized, slot, slowest):
        print_row(line)
