"""Ethereum consensus substrate: clock, sortition, chain, fork-choice."""

from repro.consensus.chain import (
    DEFAULT_BLOCK_BYTES,
    AggregateDecision,
    Attestation,
    BlobTransaction,
    Block,
)
from repro.consensus.clock import SlotClock, SlotPhase
from repro.consensus.forkchoice import AttestationOutcome, ForkChoiceRule, ForkChoiceSimulator
from repro.consensus.validators import SlotCommittee, ValidatorRegistry

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "AggregateDecision",
    "Attestation",
    "BlobTransaction",
    "Block",
    "SlotClock",
    "SlotPhase",
    "AttestationOutcome",
    "ForkChoiceRule",
    "ForkChoiceSimulator",
    "SlotCommittee",
    "ValidatorRegistry",
]
