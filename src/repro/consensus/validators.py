"""Validator registry and pseudo-random sortition (Section 2).

Validators stake 32 ETH and are selected per slot — one proposer plus
an attestation committee — by a globally verifiable sortition seeded
by the RANDAO epoch seed. Nodes may host zero or more validators, and
the node<->validator association must remain private (Section 4.1):
the registry exposes sortition over *validator* indices, and only the
hosting map (held by the experiment driver, never gossiped) can
resolve a validator to its node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.crypto.randao import RandaoBeacon
from repro.sim.rng import derive_seed

__all__ = ["ValidatorRegistry", "SlotCommittee"]


@dataclass(frozen=True)
class SlotCommittee:
    """The validators drawn for one slot."""

    slot: int
    proposer: int
    members: tuple


class ValidatorRegistry:
    """Validator indices, their hosting nodes, and per-slot sortition."""

    def __init__(
        self,
        beacon: RandaoBeacon,
        slots_per_epoch: int = 32,
        committee_size: int = 64,
    ) -> None:
        self.beacon = beacon
        self.slots_per_epoch = slots_per_epoch
        self.committee_size = committee_size
        self._host_of: dict[int, int] = {}  # validator index -> node id
        self._validators: list[int] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, validator_index: int, host_node: int) -> None:
        if validator_index in self._host_of:
            raise ValueError(f"validator {validator_index} already registered")
        self._host_of[validator_index] = host_node
        self._validators.append(validator_index)

    def register_many(self, count: int, host_nodes: Sequence[int], rng: random.Random) -> None:
        """Spread ``count`` validators over hosts, at most revealing the
        mapping to the caller (the experiment driver)."""
        start = len(self._validators)
        for i in range(count):
            self.register(start + i, rng.choice(list(host_nodes)))

    @property
    def validator_count(self) -> int:
        return len(self._validators)

    def host_of(self, validator_index: int) -> int:
        """Experiment-driver-only lookup (never exposed to peers)."""
        return self._host_of[validator_index]

    # ------------------------------------------------------------------
    # sortition
    # ------------------------------------------------------------------
    def committee_for_slot(self, slot: int) -> SlotCommittee:
        """Deterministic proposer + committee draw for a slot.

        Seeded from the epoch seed, so any participant computes the
        same result (the seed is public one epoch in advance).
        """
        if not self._validators:
            raise ValueError("no validators registered")
        epoch = slot // self.slots_per_epoch
        seed = derive_seed(self.beacon.epoch_seed(epoch), "committee", slot)
        rng = random.Random(seed)
        proposer = rng.choice(self._validators)
        size = min(self.committee_size, len(self._validators))
        members = tuple(rng.sample(self._validators, size))
        return SlotCommittee(slot=slot, proposer=proposer, members=members)

    def proposer_node(self, slot: int) -> int:
        """The node hosting the slot's proposer (driver-side helper)."""
        return self.host_of(self.committee_for_slot(slot).proposer)
