"""Slot/epoch timekeeping (Section 2).

Ethereum divides time into 12-second slots and 32-slot epochs; each
slot splits into three 4-second phases: block broadcast + committee
verification, attestation propagation, and aggregation. The clock
converts between simulated seconds and (epoch, slot, phase).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlotClock", "SlotPhase"]


class SlotPhase:
    """The three 4-second thirds of a slot."""

    BLOCK = 0  # proposal, verification, DAS — must finish by +4 s
    ATTESTATION = 1  # attestations propagate
    AGGREGATION = 2  # aggregators publish decisions


@dataclass(frozen=True)
class SlotClock:
    """Maps simulated time to slots, epochs and intra-slot phases."""

    slot_duration: float = 12.0
    slots_per_epoch: int = 32
    genesis_time: float = 0.0

    def slot_at(self, time: float) -> int:
        if time < self.genesis_time:
            raise ValueError(f"time {time} precedes genesis {self.genesis_time}")
        return int((time - self.genesis_time) // self.slot_duration)

    def epoch_of_slot(self, slot: int) -> int:
        return slot // self.slots_per_epoch

    def slot_start(self, slot: int) -> float:
        return self.genesis_time + slot * self.slot_duration

    def attestation_deadline(self, slot: int) -> float:
        """The 4-second mark: committee members must decide by here."""
        return self.slot_start(slot) + self.slot_duration / 3.0

    def phase_at(self, time: float) -> int:
        slot = self.slot_at(time)
        offset = time - self.slot_start(slot)
        third = self.slot_duration / 3.0
        if offset < third:
            return SlotPhase.BLOCK
        if offset < 2 * third:
            return SlotPhase.ATTESTATION
        return SlotPhase.AGGREGATION

    def epoch_at(self, time: float) -> int:
        return self.epoch_of_slot(self.slot_at(time))
