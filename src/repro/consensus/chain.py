"""Blocks, blob-carrying transactions and attestations (Sections 2-3).

Minimal but structurally faithful chain objects: a block carries
regular transactions plus blob-carrying transactions whose KZG
commitments bind the extended blob the builder seeds through PANDAS.
Sizes are modelled for gossip accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import Signature
from repro.crypto.kzg import KzgCommitment

__all__ = ["BlobTransaction", "Block", "Attestation", "AggregateDecision", "DEFAULT_BLOCK_BYTES"]

# typical mainnet block (transactions + header) for gossip sizing
DEFAULT_BLOCK_BYTES = 120_000


@dataclass(frozen=True)
class BlobTransaction:
    """A blob-carrying transaction: references blob data by commitment."""

    sender: int
    commitment: KzgCommitment
    blob_bytes: int

    @property
    def size(self) -> int:
        return 200 + self.commitment.size


@dataclass(frozen=True)
class Block:
    """One layer-1 block as gossiped to all nodes."""

    slot: int
    proposer: int
    builder_id: int
    parent_root: bytes
    blob_transactions: tuple[BlobTransaction, ...] = ()
    body_bytes: int = DEFAULT_BLOCK_BYTES
    proposer_signature: Signature | None = None

    @property
    def size(self) -> int:
        return self.body_bytes + sum(tx.size for tx in self.blob_transactions)


@dataclass(frozen=True)
class Attestation:
    """A committee member's vote on (block validity AND data availability).

    Under the tight fork-choice rule a block whose blob data could not
    be sampled by the deadline is attested *invalid* even if its
    transactions verify — that is the crux of PANDAS's integration.
    """

    slot: int
    validator: int
    block_valid: bool
    data_available: bool

    @property
    def vote(self) -> bool:
        return self.block_valid and self.data_available

    @property
    def size(self) -> int:
        return 150


@dataclass(frozen=True)
class AggregateDecision:
    """The aggregated committee outcome for a slot."""

    slot: int
    votes_for: int
    votes_against: int
    missing: int

    @property
    def accepted(self) -> bool:
        total = self.votes_for + self.votes_against + self.missing
        return total > 0 and self.votes_for * 3 >= total * 2  # 2/3 supermajority

    @property
    def size(self) -> int:
        return 300
