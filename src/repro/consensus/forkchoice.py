"""Fork-choice integration of DAS (Sections 1, 4.2 and [16]).

Two rules are modelled:

- **tight** (PANDAS's target): a committee member attests at the
  4-second mark, voting valid only if the block verified AND its 73
  samples all arrived. No consensus change is needed; blocks with
  unavailable data are simply voted down.
- **trailing**: the member attests on block validity alone at +4 s and
  availability is verified later; if sampling subsequently fails, the
  block must be *reverted* — the consensus-modifying behaviour (and
  ex-ante reorg attack surface) PANDAS exists to avoid.

``ForkChoiceSimulator`` turns per-node phase-completion times from a
scenario run into per-slot attestation outcomes for either rule, which
is how the examples demonstrate the end-to-end claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.chain import AggregateDecision, Attestation

__all__ = ["ForkChoiceRule", "AttestationOutcome", "ForkChoiceSimulator"]


class ForkChoiceRule:
    TIGHT = "tight"
    TRAILING = "trailing"


@dataclass(frozen=True)
class AttestationOutcome:
    """What one committee member's node decided for a slot."""

    slot: int
    node: int
    rule: str
    block_time: float | None
    sampling_time: float | None
    deadline: float

    @property
    def block_on_time(self) -> bool:
        return self.block_time is not None and self.block_time <= self.deadline

    @property
    def sampled_on_time(self) -> bool:
        return self.sampling_time is not None and self.sampling_time <= self.deadline

    @property
    def attests_valid(self) -> bool:
        """The vote cast at the deadline."""
        if self.rule == ForkChoiceRule.TIGHT:
            return self.block_on_time and self.sampled_on_time
        return self.block_on_time  # trailing: availability deferred

    @property
    def later_reverted(self) -> bool:
        """Trailing rule only: attested valid but data never sampled."""
        return (
            self.rule == ForkChoiceRule.TRAILING
            and self.attests_valid
            and self.sampling_time is None
        )


class ForkChoiceSimulator:
    """Aggregates committee decisions from measured phase times."""

    def __init__(self, rule: str = ForkChoiceRule.TIGHT, deadline: float = 4.0) -> None:
        if rule not in (ForkChoiceRule.TIGHT, ForkChoiceRule.TRAILING):
            raise ValueError(f"unknown fork-choice rule {rule!r}")
        self.rule = rule
        self.deadline = deadline

    def outcome_for(
        self,
        slot: int,
        node: int,
        block_time: float | None,
        sampling_time: float | None,
    ) -> AttestationOutcome:
        return AttestationOutcome(
            slot=slot,
            node=node,
            rule=self.rule,
            block_time=block_time,
            sampling_time=sampling_time,
            deadline=self.deadline,
        )

    def attestation(self, outcome: AttestationOutcome, validator: int) -> Attestation:
        return Attestation(
            slot=outcome.slot,
            validator=validator,
            block_valid=outcome.block_on_time,
            data_available=outcome.sampled_on_time,
        )

    def aggregate(self, outcomes: list[AttestationOutcome]) -> AggregateDecision:
        """The committee's 2/3-supermajority decision for one slot."""
        if not outcomes:
            raise ValueError("cannot aggregate an empty committee")
        slot = outcomes[0].slot
        votes_for = sum(1 for o in outcomes if o.attests_valid)
        votes_against = sum(
            1 for o in outcomes if not o.attests_valid and o.block_time is not None
        )
        missing = len(outcomes) - votes_for - votes_against
        return AggregateDecision(
            slot=slot, votes_for=votes_for, votes_against=votes_against, missing=missing
        )
