"""DAS baselines: GossipSub channels, Kademlia DHT put/get, PeerDAS subnets."""

from repro.baselines.dht_das import DhtDasScenario, PARCEL_CELLS, parcel_key, parcel_of_cell
from repro.baselines.gossipsub_das import GossipDasNode, GossipDasScenario, UnitAssignment
from repro.baselines.peerdas_das import PeerDasNode, PeerDasScenario, SubnetAssignment

__all__ = [
    "DhtDasScenario",
    "PARCEL_CELLS",
    "parcel_key",
    "parcel_of_cell",
    "GossipDasNode",
    "GossipDasScenario",
    "UnitAssignment",
    "PeerDasNode",
    "PeerDasScenario",
    "SubnetAssignment",
]
