"""DAS baselines: GossipSub channels and Kademlia DHT put/get."""

from repro.baselines.dht_das import DhtDasScenario, PARCEL_CELLS, parcel_key, parcel_of_cell
from repro.baselines.gossipsub_das import GossipDasNode, GossipDasScenario, UnitAssignment

__all__ = [
    "DhtDasScenario",
    "PARCEL_CELLS",
    "parcel_key",
    "parcel_of_cell",
    "GossipDasNode",
    "GossipDasScenario",
    "UnitAssignment",
]
