"""GossipSub-based DAS baseline (Section 8.1, Figures 12 & 14).

Custody is partitioned into *units*: unit ``u`` owns rows
``[u*8, (u+1)*8)`` and columns ``[u*8, (u+1)*8)`` (64 units at full
scale). Every node is deterministically hashed to one unit per epoch
and subscribes to that unit's GossipSub channel (~16 members in a
1,000-node network). The builder pushes each line of each unit into
the corresponding channel with fanout 8 — eight copies of every unit,
the same egress budget as PANDAS's redundant strategy — and the
channel's mesh gossip replaces explicit consolidation. The sampling
phase is PANDAS's adaptive fetcher restricted to sample cells, with
candidates drawn from the unit members instead of the row/column
custodians.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.assignment import Custody, cells_of_line
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher
from repro.core.messages import CellRequest, CellResponse
from repro.experiments.scenario import BaseScenario
from repro.gossip.pubsub import GossipMessage, GossipOverlay
from repro.net.transport import Datagram
from repro.sim.rng import derive_seed

__all__ = ["UnitAssignment", "GossipDasNode", "GossipDasScenario"]


class UnitAssignment:
    """Deterministic, epoch-seeded node -> unit-of-custody mapping."""

    def __init__(self, params, epoch_seed: int) -> None:
        self.params = params
        self.epoch_seed = epoch_seed
        if params.ext_rows % params.custody_rows or params.ext_cols % params.custody_cols:
            raise ValueError("grid must divide evenly into units")
        self.num_units = params.ext_rows // params.custody_rows

    def unit_of(self, node_id: int) -> int:
        return derive_seed(self.epoch_seed, "unit", node_id) % self.num_units

    def unit_custody(self, unit: int) -> Custody:
        rows_per = self.params.custody_rows
        cols_per = self.params.custody_cols
        rows = tuple(range(unit * rows_per, (unit + 1) * rows_per))
        cols = tuple(range(unit * cols_per, (unit + 1) * cols_per))
        return Custody(rows, cols)

    def unit_of_line(self, line: int) -> int:
        if line < self.params.ext_rows:
            return line // self.params.custody_rows
        return (line - self.params.ext_rows) // self.params.custody_cols


@dataclass
class _PendingRequest:
    src: int
    cells: frozenset[int]
    missing: int


@dataclass
class _GossipSlotState:
    cells: SlotCellState
    fetcher: AdaptiveFetcher
    waiting_by_cell: dict[int, list[_PendingRequest]] = field(default_factory=dict)
    started: bool = False
    consolidation_marked: bool = False
    sampling_marked: bool = False


class GossipDasNode:
    """A baseline node: custody via channel gossip, sampling via fetcher."""

    def __init__(self, scenario: GossipDasScenario, node_id: int) -> None:
        self.scenario = scenario
        self.node_id = node_id
        self._slots: dict[int, _GossipSlotState] = {}

    # ------------------------------------------------------------------
    def _slot_state(self, slot: int) -> _GossipSlotState:
        state = self._slots.get(slot)
        if state is None:
            state = self._create_slot_state(slot)
            self._slots[slot] = state
        return state

    def _create_slot_state(self, slot: int) -> _GossipSlotState:
        scenario = self.scenario
        ctx = scenario.ctx
        params = ctx.params
        unit = scenario.unit_assignment.unit_of(self.node_id)
        custody = scenario.unit_assignment.unit_custody(unit)
        sample_rng = ctx.rngs.stream("samples", self.node_id, slot)
        samples = sample_rng.sample(range(params.total_cells), params.samples)
        cells = SlotCellState(
            params,
            custody,
            samples,
            on_store=lambda cid: self._on_cell_stored(slot, cid),
        )
        fetcher = AdaptiveFetcher(
            sim=ctx.sim,
            state=cells,
            schedule=params.fetch_schedule,
            line_custodians=lambda line: scenario.members_for_line(line),
            send_query=lambda peer, cids: self._send_query(slot, peer, cids),
            rng=ctx.rngs.stream("fetch", self.node_id, slot),
            cb_boost=params.cb_boost,
            self_id=self.node_id,
            fetch_custody=False,  # gossip replaces consolidation
        )
        return _GossipSlotState(cells=cells, fetcher=fetcher)

    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if isinstance(payload, GossipMessage):
            self.scenario.overlay.on_datagram(self.node_id, dgram)
        elif isinstance(payload, CellRequest):
            self._on_request(dgram.src, payload)
        elif isinstance(payload, CellResponse):
            self._on_response(dgram.src, payload)

    def on_channel_cells(self, slot: int, cells: tuple[int, ...]) -> None:
        """Cells delivered by the unit channel's gossip."""
        state = self._slot_state(slot)
        ctx = self.scenario.ctx
        if not state.started:
            state.started = True
            ctx.metrics.mark_seeding(slot, self.node_id, ctx.since_slot_start(slot))
            state.fetcher.start()
        state.cells.add_cells(cells)
        self._after_cells_changed(slot, state)

    def _on_request(self, src: int, msg: CellRequest) -> None:
        state = self._slot_state(msg.slot)
        held = frozenset(cid for cid in msg.cells if state.cells.has_cell(cid))
        if held:
            self._respond(msg.slot, src, tuple(sorted(held)))
        remainder = msg.cells - held
        if remainder:
            record = _PendingRequest(src, remainder, len(remainder))
            for cid in remainder:
                state.waiting_by_cell.setdefault(cid, []).append(record)

    def _on_cell_stored(self, slot: int, cid: int) -> None:
        state = self._slots.get(slot)
        if state is None:
            return
        waiters = state.waiting_by_cell.pop(cid, None)
        if not waiters:
            return
        for record in waiters:
            record.missing -= 1
            if record.missing == 0:
                self._respond(slot, record.src, tuple(sorted(record.cells)))

    def _on_response(self, src: int, msg: CellResponse) -> None:
        state = self._slot_state(msg.slot)
        state.fetcher.on_response(src, msg.cells)
        self._after_cells_changed(msg.slot, state)

    # ------------------------------------------------------------------
    def _send_query(self, slot: int, peer: int, cells: frozenset[int]) -> None:
        ctx = self.scenario.ctx
        request = CellRequest(slot=slot, epoch=ctx.epoch_of(slot), cells=cells)
        ctx.network.send(self.node_id, peer, request, request.wire_size(ctx.params))

    def _respond(self, slot: int, dst: int, cells: tuple[int, ...]) -> None:
        ctx = self.scenario.ctx
        response = CellResponse(slot=slot, epoch=ctx.epoch_of(slot), cells=cells)
        ctx.network.send(self.node_id, dst, response, response.wire_size(ctx.params))

    def _after_cells_changed(self, slot: int, state: _GossipSlotState) -> None:
        ctx = self.scenario.ctx
        now_rel = ctx.since_slot_start(slot)
        if not state.consolidation_marked and state.cells.consolidation_complete:
            state.consolidation_marked = True
            ctx.metrics.mark_consolidation(slot, self.node_id, now_rel)
        if not state.sampling_marked and state.cells.sampling_complete:
            state.sampling_marked = True
            ctx.metrics.mark_sampling(slot, self.node_id, now_rel)


    def drop_slot(self, slot: int) -> None:
        state = self._slots.pop(slot, None)
        if state is not None:
            state.fetcher.stop()


class GossipDasScenario(BaseScenario):
    """Figures 12/14: DAS over per-unit GossipSub channels."""

    def _build_participants(self) -> None:
        epoch_seed = self.assignment.beacon.epoch_seed(0)
        self.unit_assignment = UnitAssignment(self.params, epoch_seed)
        self.overlay = GossipOverlay(self.network, self.rngs.stream("gossip-mesh"))
        self.nodes: dict[int, GossipDasNode] = {
            node_id: GossipDasNode(self, node_id) for node_id in self.node_ids
        }
        self._unit_members: dict[int, list[int]] = {
            unit: [] for unit in range(self.unit_assignment.num_units)
        }
        for node_id in self.node_ids:
            self._unit_members[self.unit_assignment.unit_of(node_id)].append(node_id)
        for unit, members in self._unit_members.items():
            self.overlay.create_topic(
                ("unit", unit),
                members,
                handler=self._make_channel_handler(),
            )

    def _make_channel_handler(self) -> Callable[[int, GossipMessage], None]:
        def handler(member: int, message: GossipMessage) -> None:
            self.nodes[member].on_channel_cells(message.slot, message.payload)

        return handler

    def members_for_line(self, line: int) -> list[int]:
        return self._unit_members[self.unit_assignment.unit_of_line(line)]

    def _node_handler(self, node_id: int) -> Callable[[Datagram], None]:
        return lambda dgram: self.nodes[node_id].on_datagram(dgram)

    def _begin_slot(self, slot: int) -> None:
        """Builder publishes each unit's lines into its channel (fanout 8).

        Each cell is published through its *owning* line's unit (the
        same parity rule as PANDAS seeding), so the total egress is 8x
        the extended blob — the equal-budget comparison of Figure 12.
        Every line still receives exactly half its cells, which the
        2D code reconstructs locally.
        """
        from repro.core.seeding import owned_cells_of_line

        params = self.params
        for unit in range(self.unit_assignment.num_units):
            custody = self.unit_assignment.unit_custody(unit)
            for line in custody.lines(params.ext_rows):
                cells = tuple(owned_cells_of_line(line, params))
                payload_size = len(cells) * params.cell_bytes
                self.overlay.publish(
                    publisher=self.builder_id,
                    topic=("unit", unit),
                    msg_id=(slot, line),
                    payload=cells,
                    payload_size=payload_size,
                    slot=slot,
                    fanout=8,
                )

    def _end_slot(self, slot: int) -> None:
        for node in self.nodes.values():
            node.drop_slot(slot)
        self.overlay.reset_seen()
