"""Kademlia-DHT-based DAS baseline (Section 8.1, Figures 12 & 14).

The extended blob is flattened row-major and split into parcels of 64
adjacent cells. The builder put()s every parcel under the hash of its
content, storing it at the eight closest peers — the same egress
budget as PANDAS's redundant policy. Nodes are implicitly responsible
for the key ranges near their DHT id; consolidation is disabled.
Sampling maps each of the 73 random cells to its parcel and issues
iterative get(key) lookups, retrying with a backoff while the parcel
has not yet been stored (the builder's puts race the samplers, as they
do in the paper's deployment). The multi-hop routing overhead is
exactly what makes this baseline slow and chatty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.dht.enr import EnrDirectory
from repro.dht.kademlia import KademliaNode, LookupResult
from repro.experiments.scenario import BaseScenario
from repro.net.transport import Datagram
from repro.sim.rng import derive_seed

__all__ = ["DhtDasScenario", "PARCEL_CELLS", "parcel_of_cell", "parcel_key"]

PARCEL_CELLS = 64
GET_RETRY_DELAY = 0.5
STORE_REPLICAS = 8


def parcel_of_cell(cid: int) -> int:
    """Index of the 64-cell parcel containing ``cid`` (row-major grid)."""
    return cid // PARCEL_CELLS


def parcel_key(slot: int, parcel_index: int, namespace: int = 0) -> int:
    """The DHT key of a parcel.

    The paper keys parcels by the hash of their contents; content is
    not materialized in the simulation, so a (slot, index) digest
    stands in — equally uniform over the keyspace.
    """
    return derive_seed(namespace, "parcel", slot, parcel_index) << 192


@dataclass
class _SamplerState:
    """One node's sampling progress for one slot."""

    slot: int
    wanted_parcels: set[int] = field(default_factory=set)
    fetched_parcels: set[int] = field(default_factory=set)
    done: bool = False


class DhtDasScenario(BaseScenario):
    """Figures 12/14: store/sample cells through Kademlia put/get."""

    def _build_participants(self) -> None:
        self.directory = EnrDirectory()
        for address in [*self.node_ids, self.builder_id]:
            self.directory.register(address)
        self.dht_nodes: dict[int, KademliaNode] = {}
        for address in [*self.node_ids, self.builder_id]:
            node = KademliaNode(
                self.sim,
                self.network,
                self.directory,
                address,
                rng=self.rngs.stream("dht-boot", address),
            )
            node.bootstrap_from_directory()
            self.dht_nodes[address] = node
        self._samplers: dict[int, dict[int, _SamplerState]] = {
            node_id: {} for node_id in self.node_ids
        }

    def _node_handler(self, node_id: int) -> Callable[[Datagram], None]:
        return lambda dgram: self.dht_nodes[node_id].on_datagram(dgram)

    def _builder_handler(self) -> Callable[[Datagram], None]:
        return lambda dgram: self.dht_nodes[self.builder_id].on_datagram(dgram)

    # ------------------------------------------------------------------
    def _begin_slot(self, slot: int) -> None:
        self._seed_parcels(slot)
        for node_id in self.node_ids:
            self._start_sampling(node_id, slot)

    def _seed_parcels(self, slot: int) -> None:
        """Builder put()s every parcel at its 8 closest peers."""
        params = self.params
        builder = self.dht_nodes[self.builder_id]
        parcel_size = PARCEL_CELLS * params.cell_bytes
        num_parcels = params.total_cells // PARCEL_CELLS
        for index in range(num_parcels):
            builder.store(
                parcel_key(slot, index),
                parcel_size,
                replicas=STORE_REPLICAS,
                slot=slot,
            )

    # ------------------------------------------------------------------
    def _start_sampling(self, node_id: int, slot: int) -> None:
        params = self.params
        rng = self.rngs.stream("samples", node_id, slot)
        samples = rng.sample(range(params.total_cells), params.samples)
        state = _SamplerState(slot, wanted_parcels={parcel_of_cell(c) for c in samples})
        self._samplers[node_id][slot] = state
        for parcel in sorted(state.wanted_parcels):
            self._fetch_parcel(node_id, state, parcel)

    def _fetch_parcel(self, node_id: int, state: _SamplerState, parcel: int) -> None:
        if state.done or parcel in state.fetched_parcels:
            return
        window_end = state.slot * self.params.slot_duration + self.config.slot_window

        def on_result(result: LookupResult) -> None:
            if state.done or parcel in state.fetched_parcels:
                return
            if result.found_value:
                state.fetched_parcels.add(parcel)
                if state.fetched_parcels >= state.wanted_parcels:
                    state.done = True
                    self.metrics.mark_sampling(
                        state.slot, node_id, self.ctx.since_slot_start(state.slot)
                    )
                return
            # parcel not stored yet (or holders unresponsive): retry
            # with a backoff until the slot window closes
            if self.sim.now + GET_RETRY_DELAY < window_end:
                self.sim.call_after(
                    GET_RETRY_DELAY,
                    lambda: self._fetch_parcel(node_id, state, parcel),
                )

        self.dht_nodes[node_id].get(
            parcel_key(state.slot, parcel), on_result, slot=state.slot
        )

    def _end_slot(self, slot: int) -> None:
        for node_id in self.node_ids:
            state = self._samplers[node_id].pop(slot, None)
            if state is not None:
                state.done = True
        # drop stored parcels between slots to bound memory
        for node in self.dht_nodes.values():
            node.storage.clear()
