"""PeerDAS column-subnet baseline (consensus-specs `DataColumnSidecar`).

The comparison the Ethereum community actually wants next to PANDAS is
PeerDAS (EIP-7594): the extended blob is split into *columns*, each
column travels as one sidecar over a gossip subnet, custody is a pure
function of the node id (custody-group style, epoch-independent), and
nodes accept a block once every subnet they sample for the slot has
delivered its columns. This module models that protocol on the same
harness as the GossipSub and DHT baselines so Figures 12/14 become a
four-way matrix under one bandwidth budget.

What the model includes, mapped to the spec:

- ``DATA_COLUMN_SIDECAR_SUBNET_COUNT`` subnets (default 32; reduced
  grids with fewer extended columns use one subnet per column), with
  ``column -> subnet`` by modulo, one GossipSub topic per subnet built
  on :class:`repro.gossip.pubsub.GossipOverlay` with the D_hi-style
  ``degree_cap`` bound;
- ``CUSTODY_REQUIREMENT`` custody subnets derived from the node id
  alone — re-derivable by any peer without handshakes, and stable
  across epochs, exactly like custody groups computed from the NodeID;
- subnet sampling (``SAMPLES_PER_SLOT`` expressed in subnets): each
  slot a node must observe its custody subnets plus extra per-epoch
  sampled subnets, and subscribes to all of them;
- a ``DataColumnSidecarByRoot``-style req/resp fallback: a node whose
  sampled subnets are still incomplete ``peerdas_fallback_after``
  seconds into the slot pulls missing columns directly from custodians
  of those subnets, retrying in waves until the slot window closes.
  Req/resp runs over the reliable transport path (libp2p streams, not
  gossip datagrams);
- the builder publishes every column sidecar into its subnet with
  fanout ``seeding_redundancy`` (8), i.e. exactly the 8x extended-blob
  egress budget the other baselines get.

Deliberately out of scope (documented for the figure captions): KZG
batch-verification cost per sidecar, supernode reconstruction of
missing columns from >=50% of columns, DAS on libp2p scoring/IDONTWANT
control traffic, and validator-count-scaled custody (every node runs
the minimum custody here).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.assignment import Custody, cells_of_line
from repro.core.custody import SlotCellState
from repro.experiments.scenario import BaseScenario
from repro.gossip.pubsub import DEFAULT_DEGREE_CAP, GossipMessage, GossipOverlay
from repro.net.transport import Datagram
from repro.params import PandasParams
from repro.sim.rng import derive_seed

__all__ = [
    "SubnetAssignment",
    "DataColumnsByRootRequest",
    "DataColumnsByRootResponse",
    "PeerDasNode",
    "PeerDasScenario",
]

# ByRoot request framing: the beacon block root anchoring the request
# plus one subnet-column index per requested column.
BLOCK_ROOT_BYTES = 32
COLUMN_ID_BYTES = 8


class SubnetAssignment:
    """Column -> subnet layout plus per-node custody/sampled subnets.

    Custody subnets are derived from the node id *only* (the spec's
    custody groups are a pure function of the NodeID), so any peer can
    compute any other peer's custody without interaction and the
    assignment never rotates. The extra sampled subnets rotate with the
    epoch seed, mirroring per-slot subnet sampling.
    """

    def __init__(self, params: PandasParams, epoch_seed: int) -> None:
        self.params = params
        self.epoch_seed = epoch_seed
        self.num_subnets = min(params.peerdas_subnet_count, params.ext_cols)
        if self.num_subnets < 1:
            raise ValueError("need at least one column subnet")
        self.custody_count = min(params.peerdas_custody_subnets, self.num_subnets)
        self.sample_count = min(params.peerdas_sample_subnets, self.num_subnets)
        if self.sample_count < self.custody_count:
            raise ValueError("sampled subnets must cover custody subnets")

    def subnet_of_column(self, col: int) -> int:
        return col % self.num_subnets

    def columns_of_subnet(self, subnet: int) -> list[int]:
        return list(range(subnet, self.params.ext_cols, self.num_subnets))

    def custody_subnets(self, node_id: int) -> tuple[int, ...]:
        """Epoch-independent custody subnets of ``node_id``."""
        rng = random.Random(derive_seed(0, "peerdas-custody", node_id))
        return tuple(sorted(rng.sample(range(self.num_subnets), self.custody_count)))

    def sampled_subnets(self, node_id: int) -> tuple[int, ...]:
        """Custody subnets plus the node's extra sampled subnets."""
        custody = self.custody_subnets(node_id)
        extra_needed = self.sample_count - len(custody)
        if extra_needed <= 0:
            return custody
        pool = [s for s in range(self.num_subnets) if s not in custody]
        rng = random.Random(derive_seed(self.epoch_seed, "peerdas-sample", node_id))
        extra = rng.sample(pool, extra_needed)
        return tuple(sorted(custody + tuple(extra)))

    def custody_columns(self, node_id: int) -> tuple[int, ...]:
        return tuple(
            col
            for subnet in self.custody_subnets(node_id)
            for col in self.columns_of_subnet(subnet)
        )

    def sampled_columns(self, node_id: int) -> tuple[int, ...]:
        return tuple(
            col
            for subnet in self.sampled_subnets(node_id)
            for col in self.columns_of_subnet(subnet)
        )


@dataclass(frozen=True)
class DataColumnsByRootRequest:
    """``DataColumnSidecarsByRoot``: pull named columns from a custodian."""

    slot: int
    epoch: int
    columns: frozenset[int]

    def wire_size(self, params: PandasParams) -> int:
        return (
            params.message_overhead_bytes
            + BLOCK_ROOT_BYTES
            + len(self.columns) * COLUMN_ID_BYTES
        )


@dataclass(frozen=True)
class DataColumnsByRootResponse:
    """Full column sidecars the serving custodian actually holds."""

    slot: int
    epoch: int
    columns: tuple[int, ...]

    def wire_size(self, params: PandasParams) -> int:
        return params.message_overhead_bytes + (
            len(self.columns) * params.ext_rows * params.cell_bytes
        )


@dataclass
class _PeerDasSlotState:
    cells: SlotCellState
    sampled_columns: tuple[int, ...]
    started: bool = False
    consolidation_marked: bool = False
    sampling_marked: bool = False
    fallback_wave: int = 0
    # (column, peer) pairs already asked, so waves prefer fresh custodians
    queried: set[tuple[int, int]] = field(default_factory=set)


class PeerDasNode:
    """One PeerDAS node: subnet gossip custody plus ByRoot fallback."""

    def __init__(self, scenario: PeerDasScenario, node_id: int) -> None:
        self.scenario = scenario
        self.node_id = node_id
        self._slots: dict[int, _PeerDasSlotState] = {}
        self._dropped: set[int] = set()

    # ------------------------------------------------------------------
    def _slot_state(self, slot: int) -> _PeerDasSlotState:
        state = self._slots.get(slot)
        if state is None:
            state = self._create_slot_state(slot)
            self._slots[slot] = state
        return state

    def _create_slot_state(self, slot: int) -> _PeerDasSlotState:
        scenario = self.scenario
        params = scenario.ctx.params
        subnets = scenario.subnets
        custody_cols = subnets.custody_columns(self.node_id)
        sampled_cols = subnets.sampled_columns(self.node_id)
        extra_cols = [c for c in sampled_cols if c not in set(custody_cols)]
        # Custody columns are tracked as custody lines; the extra sampled
        # subnets' columns are the "samples" — the node accepts the slot
        # once both are complete. Columns always arrive whole (sidecars),
        # so the line-reconstruction path never fires: PeerDAS columns
        # are not erasure-coded along their own axis.
        samples = [
            cid
            for col in extra_cols
            for cid in cells_of_line(params.ext_rows + col, params.ext_rows, params.ext_cols)
        ]
        cells = SlotCellState(params, Custody((), custody_cols), samples)
        return _PeerDasSlotState(cells=cells, sampled_columns=sampled_cols)

    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if isinstance(payload, GossipMessage):
            self.scenario.overlay.on_datagram(self.node_id, dgram)
        elif isinstance(payload, DataColumnsByRootRequest):
            self._on_request(dgram.src, payload)
        elif isinstance(payload, DataColumnsByRootResponse):
            self._on_response(payload)

    def on_column(self, slot: int, column: int) -> None:
        """One column sidecar delivered by its subnet's gossip."""
        if slot in self._dropped:
            return  # straggler from a retired slot; don't resurrect state
        state = self._slot_state(slot)
        ctx = self.scenario.ctx
        if not state.started:
            state.started = True
            ctx.metrics.mark_seeding(slot, self.node_id, ctx.since_slot_start(slot))
        params = ctx.params
        state.cells.add_cells(
            cells_of_line(params.ext_rows + column, params.ext_rows, params.ext_cols)
        )
        self._after_cells_changed(slot, state)

    def _on_request(self, src: int, msg: DataColumnsByRootRequest) -> None:
        """Serve the full columns we hold; the rest stays unanswered.

        ByRoot semantics: the responder returns the sidecars it has.
        The requester's next fallback wave re-queries elsewhere for
        anything missing, so there is no pending-reply buffering here.
        """
        state = self._slots.get(msg.slot)
        if state is None:
            return
        held = tuple(
            col for col in sorted(msg.columns) if self._column_complete(state, col)
        )
        if not held:
            return
        response = DataColumnsByRootResponse(
            slot=msg.slot, epoch=msg.epoch, columns=held
        )
        ctx = self.scenario.ctx
        ctx.network.send(
            self.node_id, src, response, response.wire_size(ctx.params), reliable=True
        )

    def _on_response(self, msg: DataColumnsByRootResponse) -> None:
        state = self._slots.get(msg.slot)
        if state is None:
            return
        ctx = self.scenario.ctx
        params = ctx.params
        if not state.started:
            state.started = True
            ctx.metrics.mark_seeding(msg.slot, self.node_id, ctx.since_slot_start(msg.slot))
        for col in msg.columns:
            state.cells.add_cells(
                cells_of_line(params.ext_rows + col, params.ext_rows, params.ext_cols)
            )
        self._after_cells_changed(msg.slot, state)

    def _after_cells_changed(self, slot: int, state: _PeerDasSlotState) -> None:
        ctx = self.scenario.ctx
        now_rel = ctx.since_slot_start(slot)
        if not state.consolidation_marked and state.cells.consolidation_complete:
            state.consolidation_marked = True
            ctx.metrics.mark_consolidation(slot, self.node_id, now_rel)
        # "sampling done" is block acceptance: every sampled subnet's
        # columns held (custody included), not just the extra samples
        if not state.sampling_marked and state.cells.complete:
            state.sampling_marked = True
            ctx.metrics.mark_sampling(slot, self.node_id, now_rel)

    # ------------------------------------------------------------------
    # ByRoot fallback waves
    # ------------------------------------------------------------------
    def check_fallback(self, slot: int, window_end: float) -> None:
        if slot in self._dropped:
            return
        # _slot_state, not _slots.get: a node whose subnets delivered
        # nothing at all is exactly the node that must fall back
        state = self._slot_state(slot)
        if not state.cells.complete:
            self._request_missing(slot, state)
        scenario = self.scenario
        interval = scenario.ctx.params.peerdas_fallback_interval
        if scenario.sim.now + interval < window_end:
            scenario.sim.call_after(
                interval, lambda: self.check_fallback(slot, window_end)
            )

    def _column_complete(self, state: _PeerDasSlotState, col: int) -> bool:
        """All cells of ``col`` held.

        ``SlotCellState.line_complete`` only tracks *custody* lines;
        the extra sampled subnets' columns are plain sample cells, so
        completeness is checked by membership for both kinds.
        """
        params = self.scenario.ctx.params
        return state.cells.has_all(
            cells_of_line(params.ext_rows + col, params.ext_rows, params.ext_cols)
        )

    def _missing_columns(self, state: _PeerDasSlotState) -> list[int]:
        return [
            col
            for col in state.sampled_columns
            if not self._column_complete(state, col)
        ]

    def _request_missing(self, slot: int, state: _PeerDasSlotState) -> None:
        scenario = self.scenario
        ctx = scenario.ctx
        rng = ctx.rngs.stream("peerdas-fallback", self.node_id, slot)
        # later waves widen the pull: 1 custodian per missing column at
        # first, up to 3 once earlier waves came back empty
        redundancy = min(1 + state.fallback_wave, 3)
        state.fallback_wave += 1
        by_peer: dict[int, set[int]] = {}
        for col in self._missing_columns(state):
            subnet = scenario.subnets.subnet_of_column(col)
            custodians = [
                peer
                for peer in scenario.subnet_custodians(subnet)
                if peer != self.node_id
            ]
            if not custodians:
                continue
            fresh = [p for p in custodians if (col, p) not in state.queried]
            pool = fresh if len(fresh) >= redundancy else custodians
            picks = rng.sample(pool, min(redundancy, len(pool)))
            for peer in picks:
                state.queried.add((col, peer))
                by_peer.setdefault(peer, set()).add(col)
        for peer in sorted(by_peer):
            request = DataColumnsByRootRequest(
                slot=slot,
                epoch=ctx.epoch_of(slot),
                columns=frozenset(by_peer[peer]),
            )
            ctx.network.send(
                self.node_id,
                peer,
                request,
                request.wire_size(ctx.params),
                reliable=True,
            )

    def drop_slot(self, slot: int) -> None:
        self._slots.pop(slot, None)
        self._dropped.add(slot)


class PeerDasScenario(BaseScenario):
    """Figures 12/14: DAS over PeerDAS column subnets + ByRoot fallback.

    Byzantine nodes model *withholding*: they sit in the meshes but
    their datagram handler swallows everything, so they neither forward
    sidecars nor answer ByRoot pulls — the PeerDAS failure mode that
    subnet sampling plus fallback is meant to ride out.
    """

    def _build_participants(self) -> None:
        epoch_seed = self.assignment.beacon.epoch_seed(0)
        self.subnets = SubnetAssignment(self.params, epoch_seed)
        self.overlay = GossipOverlay(
            self.network,
            self.rngs.stream("peerdas-mesh"),
            degree_cap=DEFAULT_DEGREE_CAP,
        )
        self.nodes: dict[int, PeerDasNode] = {
            node_id: PeerDasNode(self, node_id) for node_id in self.node_ids
        }
        self._subnet_members: dict[int, list[int]] = {
            subnet: [] for subnet in range(self.subnets.num_subnets)
        }
        self._subnet_custodians: dict[int, list[int]] = {
            subnet: [] for subnet in range(self.subnets.num_subnets)
        }
        for node_id in self.node_ids:
            for subnet in self.subnets.sampled_subnets(node_id):
                self._subnet_members[subnet].append(node_id)
            for subnet in self.subnets.custody_subnets(node_id):
                self._subnet_custodians[subnet].append(node_id)
        handler = self._make_subnet_handler()
        for subnet, members in self._subnet_members.items():
            self.overlay.create_topic(("col-subnet", subnet), members, handler=handler)

    def _make_subnet_handler(self) -> Callable[[int, GossipMessage], None]:
        def handler(member: int, message: GossipMessage) -> None:
            self.nodes[member].on_column(message.slot, message.payload)

        return handler

    def subnet_custodians(self, subnet: int) -> list[int]:
        """Nodes custodying ``subnet`` (the ByRoot fallback's targets)."""
        return self._subnet_custodians[subnet]

    def _node_handler(self, node_id: int) -> Callable[[Datagram], None]:
        # late-bound: handlers are registered before the Byzantine
        # roster is resolved
        def handler(dgram: Datagram) -> None:
            if node_id in self.byzantine:
                # withholding adversary: receives and drops everything
                return
            self.nodes[node_id].on_datagram(dgram)

        return handler

    def _begin_slot(self, slot: int) -> None:
        """Builder publishes every column sidecar into its subnet.

        Columns partition the grid, so fanout ``seeding_redundancy``
        makes the total egress ``seeding_redundancy`` x the extended
        blob — the same budget the PANDAS/GossipSub/DHT baselines get.
        """
        params = self.params
        start = slot * params.slot_duration
        window_end = start + self.config.slot_window
        column_bytes = params.ext_rows * params.cell_bytes
        for col in range(params.ext_cols):
            subnet = self.subnets.subnet_of_column(col)
            self.overlay.publish(
                publisher=self.builder_id,
                topic=("col-subnet", subnet),
                msg_id=(slot, "col", col),
                payload=col,
                payload_size=column_bytes,
                slot=slot,
                fanout=params.seeding_redundancy,
            )
        fallback_at = min(params.peerdas_fallback_after, self.config.slot_window)
        for node_id in self.node_ids:
            if node_id in self.dead_nodes or node_id in self.byzantine:
                continue
            node = self.nodes[node_id]
            self.sim.call_after(
                fallback_at,
                lambda node=node: node.check_fallback(slot, window_end),
            )

    def _end_slot(self, slot: int) -> None:
        for node in self.nodes.values():
            node.drop_slot(slot)
        self.overlay.reset_seen()
