"""Sybil-attack analysis (Section 9 "Discussion").

PANDAS defeats *placement* attacks by rotating the assignment with
the epoch seed faster than ENR crawling, and *presence* attacks by
redundancy. These helpers quantify the residual risk:

- an attacker who controls a fraction ``f`` of the node identities can
  censor a cell only by being the *sole* custodian population of both
  its row and its column — otherwise honest custodians serve it;
- even then, the attacker must position those identities before the
  assignment rotates, which the short-liveness of ``S`` prevents.

All formulas treat honest nodes as assigned independently at random
(exactly how ``S`` behaves) and are validated against Monte-Carlo
sampling in the tests.
"""

from __future__ import annotations

__all__ = [
    "line_assignment_probability",
    "line_without_honest_custodian_probability",
    "cell_censorship_probability",
    "expected_censorable_cells",
    "sampling_success_probability",
    "rotation_safety_factor",
]


def line_assignment_probability(custody_lines: int, total_lines: int) -> float:
    """P[a uniformly assigned node custodies one given line].

    With 8 rows + 8 columns over 512 + 512 lines this is ~1/64 for a
    line of each kind; we approximate rows and columns jointly by the
    aggregate ratio, which is exact when custody_rows = custody_cols
    and the grid is square.
    """
    if custody_lines <= 0 or total_lines <= 0 or custody_lines > total_lines:
        raise ValueError("invalid custody/total line counts")
    return custody_lines / total_lines


def line_without_honest_custodian_probability(
    honest_nodes: int, custody_lines: int = 16, total_lines: int = 1024
) -> float:
    """P[no honest node custodies a given line].

    This is the event an attacker needs per line to make it
    unfetchable (all its would-be servers are Sybils or absent).
    """
    if honest_nodes < 0:
        raise ValueError("honest_nodes must be non-negative")
    q = line_assignment_probability(custody_lines, total_lines)
    # each line of a node's custody is one of custody_rows draws among
    # rows (resp. columns); the per-node miss probability is (1 - q)
    # to first order, exact enough for q << 1 (validated by tests)
    return (1.0 - q) ** honest_nodes


def cell_censorship_probability(
    honest_nodes: int, custody_lines: int = 16, total_lines: int = 1024
) -> float:
    """P[a given cell has no honest custodian on either of its lines].

    The row and column custodian populations are independent draws, so
    censorship of one targeted cell requires both to be honest-free.
    """
    p_line = line_without_honest_custodian_probability(
        honest_nodes, custody_lines, total_lines
    )
    return p_line * p_line


def expected_censorable_cells(
    honest_nodes: int,
    total_cells: int = 512 * 512,
    custody_lines: int = 16,
    total_lines: int = 1024,
) -> float:
    """Expected number of cells with no honest custodian at all."""
    return total_cells * cell_censorship_probability(
        honest_nodes, custody_lines, total_lines
    )


def sampling_success_probability(
    honest_nodes: int,
    samples: int = 73,
    custody_lines: int = 16,
    total_lines: int = 1024,
) -> float:
    """P[all ``samples`` random sample cells have an honest custodian].

    The analytic cross-check for the adversarial degradation sweeps
    (``experiments.figures.run_adversarial_sweep``): it models the
    case where every Byzantine custodian serves *nothing*, which the
    node-side defenses reduce the real behaviors to (corrupt cells
    are dropped on verification, withheld cells never arrive). The
    measured honest completion rate tracks this prediction in
    expectation; any single seed deviates because honest-free lines
    arrive in lumps (one empty row censors a cell with every empty
    column). Sample cells are treated as independent uniform draws,
    validated by Monte-Carlo in the tests.
    """
    if samples < 0:
        raise ValueError("samples must be non-negative")
    p_cell = cell_censorship_probability(honest_nodes, custody_lines, total_lines)
    return (1.0 - p_cell) ** samples


def rotation_safety_factor(
    crawl_seconds: float = 60.0,
    slots_per_epoch: int = 32,
    slot_seconds: float = 12.0,
) -> float:
    """How many full ENR crawls fit in one assignment epoch.

    The paper's argument: S rotates every ~6.4 minutes while crawling
    the DHT for the current node set takes about a minute, so an
    attacker cannot learn who custodies a target line, spin up Sybil
    identities, *and* have them crawled into victims' views before the
    assignment changes. A factor much above 1 still leaves no slack
    because identities must also be registered and discovered — the
    factor is reported for the analysis in the docs/tests.
    """
    if crawl_seconds <= 0:
        raise ValueError("crawl_seconds must be positive")
    epoch_seconds = slots_per_epoch * slot_seconds
    return epoch_seconds / crawl_seconds
