"""Data-availability-sampling security math (Section 3)."""

from repro.das.sybil import (
    cell_censorship_probability,
    expected_censorable_cells,
    line_assignment_probability,
    line_without_honest_custodian_probability,
    rotation_safety_factor,
)
from repro.das.security import (
    false_positive_probability,
    max_unreconstructable_cells,
    min_reconstructable_cells,
    required_samples,
)

__all__ = [
    "cell_censorship_probability",
    "expected_censorable_cells",
    "line_assignment_probability",
    "line_without_honest_custodian_probability",
    "rotation_safety_factor",
    "false_positive_probability",
    "max_unreconstructable_cells",
    "min_reconstructable_cells",
    "required_samples",
]
