"""Data-availability-sampling security math (Section 3 of the paper).

The adversary's best data-withholding strategy against a 2D
Reed-Solomon-extended blob of ``2R x 2C`` cells is to withhold exactly
an ``(R+1) x (C+1)`` sub-matrix: one fewer withheld row or column would
let honest nodes erasure-reconstruct everything (Figure 3). Sampling
``s`` random distinct cells misses that sub-matrix — i.e., returns a
false "available" verdict — with probability

    FP(s) = prod_{i=0}^{s-1} (1 - (R+1)(C+1) / (2R*2C - i))

For the Danksharding grid (R=C=256) the community-discussed s=73 gives
FP < 1e-9; ``required_samples`` inverts the bound for arbitrary grids,
which is how the ``reduced()`` preset keeps the same security level at
laptop scale.
"""

from __future__ import annotations

import math

__all__ = [
    "false_positive_probability",
    "required_samples",
    "min_reconstructable_cells",
    "max_unreconstructable_cells",
]


def false_positive_probability(samples: int, ext_rows: int = 512, ext_cols: int = 512) -> float:
    """Upper bound on P[all samples hit, data not reconstructable].

    ``ext_rows``/``ext_cols`` are the *extended* grid dimensions
    (2R x 2C). Sampling is without replacement, matching the paper's
    product bound.
    """
    if samples < 0:
        raise ValueError("samples must be non-negative")
    if ext_rows < 2 or ext_cols < 2 or ext_rows % 2 or ext_cols % 2:
        raise ValueError("extended grid dimensions must be even and >= 2")
    total = ext_rows * ext_cols
    if samples > total:
        raise ValueError("cannot sample more cells than exist")
    withheld = (ext_rows // 2 + 1) * (ext_cols // 2 + 1)
    # log-space product for numerical stability at large s
    log_p = 0.0
    for i in range(samples):
        available_fraction = 1.0 - withheld / (total - i)
        if available_fraction <= 0.0:
            return 0.0
        log_p += math.log(available_fraction)
    return math.exp(log_p)


def required_samples(ext_rows: int = 512, ext_cols: int = 512, target: float = 1e-9) -> int:
    """Smallest sample count whose false-positive bound is below ``target``."""
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    total = ext_rows * ext_cols
    withheld = (ext_rows // 2 + 1) * (ext_cols // 2 + 1)
    log_p = 0.0
    log_target = math.log(target)
    for s in range(total):
        available_fraction = 1.0 - withheld / (total - s)
        if available_fraction <= 0.0:
            return s + 1
        log_p += math.log(available_fraction)
        if log_p < log_target:
            return s + 1
    raise ValueError("target unreachable even sampling every cell")


def min_reconstructable_cells(ext_rows: int = 512, ext_cols: int = 512) -> int:
    """Fewest cells that *can* guarantee full reconstruction (Fig. 3 left).

    Half of the cells of R distinct rows (or C distinct columns): each
    such row reconstructs fully, yielding R complete rows = half of
    every column, after which every column (hence the grid)
    reconstructs.
    """
    return (ext_rows // 2) * (ext_cols // 2)


def max_unreconstructable_cells(ext_rows: int = 512, ext_cols: int = 512) -> int:
    """Most cells an adversary can release while blocking reconstruction
    (Fig. 3 right): everything except an (R+1) x (C+1) sub-matrix."""
    return ext_rows * ext_cols - (ext_rows // 2 + 1) * (ext_cols // 2 + 1)
