"""Command-line interface: ``python -m repro <command>``.

Gives the experiment layer a shell entry point, mirroring how the
original system's reproducibility material drives its simulator:

- ``slot``       run PANDAS slots and print phase distributions;
- ``figure``     regenerate one of the paper's figures/tables;
- ``baselines``  the four-system comparison at one scale;
- ``faults``     dead-node / out-of-view sweeps;
- ``adversary``  Byzantine-fraction degradation sweeps;
- ``security``   the Section 3 sampling math for a given grid;
- ``trace``      run with structured tracing and write/analyze a trace;
- ``profile``    run with callback profiling and print hot sites;
- ``bench``      measure full slots at several scales, write BENCH_<n>.json;
- ``pipeline``   sustained multi-slot pipeline with churn and overload control;
- ``health``     analyze a telemetry series against run-health SLOs.

Examples::

    python -m repro slot --nodes 350 --policy redundant --slots 2
    python -m repro slot --nodes 200 --faults 'corrupt=0.1,flood=2@20'
    python -m repro slot --nodes 200 --json
    python -m repro figure fig9 --nodes 300
    python -m repro faults --fault dead --nodes 300
    python -m repro adversary --behavior corrupt --fractions 0,0.1,0.2
    python -m repro security --grid 512 --target 1e-9
    python -m repro trace --nodes 200 --slots 1 --out trace.jsonl
    python -m repro trace --nodes 100 --chrome trace.json --report
    python -m repro profile --nodes 200 --top 15
    python -m repro bench --scales 100,1000
    python -m repro bench --scales 100 --check BENCH_1.json
    python -m repro pipeline --nodes 60 --reduced 32 --slots 4 --churn 0.1
    python -m repro pipeline --nodes 60 --reduced 32 --check-invariants --json
    python -m repro pipeline --nodes 60 --reduced 32 --telemetry series.jsonl
    python -m repro health series.jsonl --min-deadline-hit 0.9 --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.plotting import ascii_cdf
from repro.analysis.stats import summarize
from repro.core.seeding import policy_by_name
from repro.params import PandasParams

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PANDAS reproduction: run slots, figures and sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    slot = sub.add_parser("slot", help="run PANDAS slots and print phase stats")
    _common_scale_args(slot)
    slot.add_argument("--policy", default="redundant", help="minimal|single|redundant")
    slot.add_argument("--redundancy", type=int, default=8, help="r for the redundant policy")
    slot.add_argument("--slots", type=int, default=1)
    slot.add_argument("--dead", type=float, default=0.0, help="fraction of dead nodes")
    slot.add_argument("--out-of-view", type=float, default=0.0, help="fraction out of view")
    slot.add_argument("--block-gossip", action="store_true", help="also gossip the block")
    slot.add_argument("--plot", action="store_true", help="render the sampling CDF")
    slot.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault plan, e.g. "
            "'loss=0.05,crash=2@1.0:2.0,partition=0.2@1.0+0.5' "
            "(kinds: loss, dup, jitter, crash=N@T1[:T2], "
            "partition=F@T+D, slow=N@D; Byzantine: corrupt=X, "
            "flood=X@R, withhold=X, equivocate=X@K, stall=X@D — "
            "X below 1 is a fraction, otherwise a node count)"
        ),
    )
    slot.add_argument(
        "--check-invariants",
        action="store_true",
        help="enforce protocol invariants online; violations abort the run",
    )
    slot.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON object instead of text",
    )
    _obs_args(slot)
    _telemetry_args(slot)

    figure = sub.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument(
        "which",
        choices=["fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1"],
    )
    _common_scale_args(figure)
    figure.add_argument("--scales", default="250,350,500", help="node counts for fig13/14")

    baselines = sub.add_parser("baselines", help="PANDAS vs GossipSub vs DHT vs PeerDAS")
    _common_scale_args(baselines)

    faults = sub.add_parser("faults", help="fault sweeps (Figure 15)")
    _common_scale_args(faults)
    faults.add_argument("--fault", choices=["dead", "out_of_view"], default="dead")
    faults.add_argument("--fractions", default="0,0.2,0.4,0.6,0.8")
    _obs_args(faults)

    adversary = sub.add_parser(
        "adversary", help="Byzantine-fraction degradation sweep (Section 9)"
    )
    _common_scale_args(adversary)
    adversary.add_argument(
        "--behavior",
        default="mix",
        choices=["mix", "corrupt", "flood", "withhold", "equivocate", "stall"],
        help="one behavior, or 'mix' to split the fraction across all five",
    )
    adversary.add_argument("--fractions", default="0,0.05,0.1,0.2,0.3")
    adversary.add_argument("--slots", type=int, default=1)
    adversary.add_argument(
        "--details", action="store_true",
        help="also print realized adversary and defense counters",
    )
    _obs_args(adversary)

    security = sub.add_parser("security", help="Section 3 sampling math")
    security.add_argument("--grid", type=int, default=512, help="extended grid dimension")
    security.add_argument("--samples", type=int, default=None)
    security.add_argument("--target", type=float, default=1e-9)

    trace = sub.add_parser(
        "trace", help="run slots with structured tracing; write and analyze the trace"
    )
    _common_scale_args(trace)
    trace.add_argument("--policy", default="redundant", help="minimal|single|redundant")
    trace.add_argument("--redundancy", type=int, default=8)
    trace.add_argument("--slots", type=int, default=1)
    trace.add_argument("--faults", default=None, metavar="SPEC", help="fault plan spec")
    trace.add_argument("--out", default=None, metavar="FILE", help="write JSONL trace here")
    trace.add_argument(
        "--chrome", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON (load in about://tracing / Perfetto)",
    )
    trace.add_argument(
        "--kinds", default=None,
        help="comma-separated event kinds to record (default: all)",
    )
    trace.add_argument(
        "--ring", type=int, default=1 << 20,
        help="in-memory ring buffer capacity (events); sinks see everything",
    )
    trace.add_argument(
        "--report", action="store_true",
        help="print the slowest-node causal report from the trace",
    )

    profile = sub.add_parser(
        "profile", help="run slots under the callback profiler; print hot sites"
    )
    _common_scale_args(profile)
    profile.add_argument("--policy", default="redundant", help="minimal|single|redundant")
    profile.add_argument("--redundancy", type=int, default=8)
    profile.add_argument("--slots", type=int, default=1)
    profile.add_argument("--top", type=int, default=12, help="rows of the hot-site table")

    bench = sub.add_parser(
        "bench", help="measure full slots at several scales; write BENCH_<n>.json"
    )
    bench.add_argument(
        "--scales", default="100,1000",
        help="comma-separated node counts to benchmark (default 100,1000)",
    )
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--reduced", type=int, default=0,
        help="grid reduction factor (0 = full Danksharding parameters)",
    )
    bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: next unused BENCH_<n>.json in the cwd)",
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against a committed BENCH_*.json; exit 1 on a >25%% "
        "events/sec regression or a changed fingerprint at the same scale",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed events/sec drop vs the --check baseline (default 0.25)",
    )
    bench.add_argument(
        "--no-trace-overhead", action="store_true",
        help="skip the tracing-overhead measurement",
    )
    bench.add_argument(
        "--no-telemetry-overhead", action="store_true",
        help="skip the telemetry-overhead measurement",
    )
    bench.add_argument(
        "--max-obs-overhead", type=float, default=1.25,
        help="with --check: fail if the fresh telemetry overhead ratio "
        "exceeds this bound (default 1.25; trace overhead is recorded "
        "but not gated)",
    )

    pipeline = sub.add_parser(
        "pipeline",
        help="sustained multi-slot pipeline: churn, bounded queues, load shedding",
    )
    _common_scale_args(pipeline)
    pipeline.add_argument("--policy", default="redundant", help="minimal|single|redundant")
    pipeline.add_argument("--redundancy", type=int, default=8)
    pipeline.add_argument("--slots", type=int, default=4)
    pipeline.add_argument("--churn", type=float, default=0.05, help="membership turnover per slot")
    pipeline.add_argument("--view-lag", type=int, default=1, help="slots of view staleness")
    pipeline.add_argument("--retention", type=int, default=2, help="slots of state kept behind the head")
    pipeline.add_argument("--max-inbox", type=int, default=4096, help="bounded transport inbox (0 = unbounded)")
    pipeline.add_argument("--pending-limit", type=int, default=256, help="bounded per-node request buffer (0 = unbounded)")
    pipeline.add_argument(
        "--admit-rate", type=float, default=200.0,
        help="per-node retrieval admission tokens/s (0 = unbounded)",
    )
    pipeline.add_argument(
        "--admit-burst", type=float, default=20.0,
        help="per-node retrieval admission bucket burst (tokens)",
    )
    pipeline.add_argument(
        "--no-retry", action="store_true",
        help="disable deadline-aware retry/backoff between fetch rounds",
    )
    pipeline.add_argument("--probes", type=int, default=2, help="measured retrieval probes per slot")
    pipeline.add_argument(
        "--client-rate", type=float, default=1e6,
        help="aggregate layer-2 arrival rate, requests/s",
    )
    pipeline.add_argument(
        "--service-rate", type=float, default=2e6,
        help="serving-tier capacity, requests/s (0 disables the aggregate model)",
    )
    pipeline.add_argument("--max-backlog", type=float, default=4e6, help="aggregate backlog bound")
    pipeline.add_argument(
        "--check-invariants", action="store_true",
        help="enforce protocol invariants online (I5: no unbounded backlog)",
    )
    pipeline.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON object instead of text",
    )
    _obs_args(pipeline)
    _telemetry_args(pipeline)

    health = sub.add_parser(
        "health",
        help="analyze a telemetry JSONL series against run-health SLOs",
    )
    health.add_argument("series", help="telemetry series written by --telemetry")
    health.add_argument(
        "--min-deadline-hit", type=float, default=0.9,
        help="minimum sampling deadline-hit rate to pass (default 0.9)",
    )
    health.add_argument(
        "--max-queue-p99", type=float, default=None,
        help="fail if the sampled queue-depth p99 exceeds this",
    )
    health.add_argument(
        "--max-shed", type=float, default=None,
        help="fail if total shed work exceeds this",
    )
    health.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON object instead of text",
    )

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the determinism/protocol static analysis "
        "(rule catalog: `repro lint --list-rules`)",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.analysis` "
        "(paths, --json, --list-rules, ...)",
    )

    detsan = sub.add_parser(
        "detsan",
        help="run the runtime determinism sanitizer (hash-seed sweep, "
        "scheduler/delivery/telemetry perturbations)",
    )
    detsan.add_argument(
        "detsan_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.analysis.detsan` "
        "(--scenario, --hash-seeds, --json, ...)",
    )
    return parser


def _common_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=350)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--reduced", type=int, default=0,
        help="grid reduction factor (0 = full Danksharding parameters)",
    )


def _obs_args(parser: argparse.ArgumentParser) -> None:
    """Observability riders available on the main run commands."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write a JSONL structured trace of the run(s)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also profile simulator callbacks and print the hot sites",
    )


def _telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Run-health telemetry riders (slot and pipeline commands)."""
    parser.add_argument(
        "--telemetry", default=None, metavar="FILE",
        help="sample run-health telemetry and write the JSONL series here",
    )
    parser.add_argument(
        "--telemetry-cadence", type=float, default=0.25, metavar="SECONDS",
        help="sim-time sampling cadence for --telemetry (default 0.25)",
    )
    parser.add_argument(
        "--prometheus", default=None, metavar="FILE",
        help="also write the final telemetry state as Prometheus text",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=0.0, metavar="SECONDS",
        help="print a wall-clock progress line every N seconds (0 = off; "
        "requires --telemetry)",
    )


def _params(args) -> PandasParams:
    if getattr(args, "reduced", 0):
        return PandasParams.reduced(args.reduced)
    return PandasParams.full()


def _make_obs(args):
    """(tracer, profiler) from the --trace/--profile riders, or Nones."""
    from repro.obs import CallbackProfiler, JsonlSink, TraceRecorder

    tracer = None
    if getattr(args, "trace", None):
        tracer = TraceRecorder(sinks=[JsonlSink(args.trace)])
    profiler = CallbackProfiler() if getattr(args, "profile", False) else None
    return tracer, profiler


def _finish_obs(tracer, profiler, args, top: int = 12) -> None:
    """Close the trace file and print profiler output, if active."""
    if tracer is not None:
        tracer.close()
        print(f"trace: {tracer.accepted} events -> {args.trace}")
    if profiler is not None:
        print(profiler.format(top=top))


def _make_telemetry(args):
    """A configured Telemetry from the --telemetry riders, or None."""
    if not getattr(args, "telemetry", None):
        return None
    from repro.obs import Heartbeat
    from repro.obs.telemetry import Telemetry

    heartbeat = Heartbeat(args.heartbeat) if args.heartbeat > 0 else None
    return Telemetry(cadence=args.telemetry_cadence, heartbeat=heartbeat)


def _finish_telemetry(telemetry, args) -> dict | None:
    """Write the telemetry series (and optional Prometheus text);
    returns the summary dict for JSON payloads, or None."""
    if telemetry is None:
        return None
    from repro.obs.export import write_prometheus, write_series_jsonl

    records = write_series_jsonl(telemetry, args.telemetry)
    info = {
        "file": args.telemetry,
        "records": records,
        "samples": len(telemetry.samples),
    }
    if getattr(args, "prometheus", None):
        write_prometheus(telemetry, args.prometheus)
        info["prometheus"] = args.prometheus
    return info


def _cmd_slot(args) -> int:
    from repro.experiments.scenario import Scenario, ScenarioConfig
    from repro.faults.plan import FaultPlan

    faults = FaultPlan.parse(args.faults) if args.faults else None
    tracer, profiler = _make_obs(args)
    telemetry = _make_telemetry(args)
    config = ScenarioConfig(
        num_nodes=args.nodes,
        params=_params(args),
        policy=policy_by_name(args.policy, args.redundancy),
        seed=args.seed,
        slots=args.slots,
        dead_fraction=args.dead,
        out_of_view_fraction=args.out_of_view,
        include_block_gossip=args.block_gossip,
        faults=faults,
        check_invariants=args.check_invariants,
        tracer=tracer,
        profiler=profiler,
        telemetry=telemetry,
    )
    if args.json:
        scenario = Scenario(config).run()
        phases = scenario.phase_distributions()
        payload = scenario.metrics.summary()
        payload["config"] = {
            "nodes": args.nodes,
            "slots": args.slots,
            "seed": args.seed,
            "policy": config.policy.name,
            "faults": faults.describe() if faults is not None else None,
        }
        payload["phases"] = {
            name: {
                "median": dist.median,
                "p99": dist.p99,
                "max": dist.max,
                "within_4s": dist.fraction_within(4.0),
                "count": dist.count,
            }
            for name, dist in (
                ("seeding", phases.seeding),
                ("consolidation", phases.consolidation),
                ("sampling", phases.sampling),
            )
        }
        if tracer is not None:
            tracer.close()
            payload["trace"] = {"file": args.trace, "events": tracer.accepted}
        telemetry_info = _finish_telemetry(telemetry, args)
        if telemetry_info is not None:
            payload["telemetry"] = telemetry_info
        print(json.dumps(payload, default=float))
        if profiler is not None:
            print(profiler.format(top=12), file=sys.stderr)
        return 0 if phases.sampling.fraction_within(4.0) > 0 else 1
    print(f"running {args.slots} slot(s) over {args.nodes} nodes ({config.policy.name})")
    if faults is not None:
        print(f"  fault plan     {faults.describe()}")
    scenario = Scenario(config).run()
    phases = scenario.phase_distributions()
    print(f"  seeding        {summarize(phases.seeding, 4.0)}")
    print(f"  consolidation  {summarize(phases.consolidation, 4.0)}")
    print(f"  sampling       {summarize(phases.sampling, 4.0)}")
    print(f"  builder egress {scenario.builder_egress_bytes(0) / 1e6:.1f} MB")
    fetch = scenario.fetch_bytes_distribution()
    if fetch.values:
        print(f"  fetch traffic  median {fetch.median / 1e6:.2f} MB, max {fetch.max / 1e6:.2f} MB")
    if scenario.metrics.fault_counts:
        realized = ", ".join(
            f"{kind}={int(count)}"
            for kind, count in sorted(scenario.metrics.fault_counts.items())
        )
        print(f"  faults         {realized}")
    if scenario.metrics.defense_counts:
        triggered = ", ".join(
            f"{kind}={int(count)}"
            for kind, count in sorted(scenario.metrics.defense_counts.items())
        )
        print(f"  defenses       {triggered}")
    if scenario.invariants is not None:
        print(f"  invariants     ok ({scenario.invariants.checks_run} checks)")
    if args.plot:
        print(ascii_cdf({"sampling": phases.sampling}, deadline=4.0))
    telemetry_info = _finish_telemetry(telemetry, args)
    if telemetry_info is not None:
        print(
            f"  telemetry      {telemetry_info['samples']} samples -> "
            f"{telemetry_info['file']}"
        )
    _finish_obs(tracer, profiler, args)
    return 0 if phases.sampling.fraction_within(4.0) > 0 else 1


def _cmd_figure(args) -> int:
    # benchmark modules contain the printing logic; reuse the figure
    # runners directly and keep the CLI output compact
    from repro.experiments import figures

    params = _params(args)
    if args.which == "fig9" or args.which == "fig10":
        results = figures.run_policy_comparison(num_nodes=args.nodes, seed=args.seed, params=params)
        for name in ("minimal", "single", "redundant"):
            print(f"{name:<10} sampling {summarize(results[name].sampling, 4.0)}")
            print(f"{'':<10} egress {results[name].builder_egress_bytes / 1e6:.1f} MB, "
                  f"fetch max {results[name].fetch_bytes.max / 1e6:.2f} MB")
    elif args.which == "table1":
        table = figures.run_table1(num_nodes=args.nodes, seed=args.seed, params=params)
        for rnd in sorted(table):
            stats = {k: round(v[0], 1) for k, v in sorted(table[rnd].items())}
            print(f"round {rnd}: {stats}")
    elif args.which == "fig11":
        results = figures.run_adaptive_vs_constant(
            num_nodes=args.nodes, seed=args.seed, params=params
        )
        for name, result in results.items():
            print(f"{name:<10} {summarize(result.sampling, 4.0)}")
    elif args.which == "fig12":
        results = figures.run_baseline_comparison(
            num_nodes=args.nodes, seed=args.seed, params=params
        )
        for name, result in results.items():
            print(f"{name:<10} {summarize(result.sampling, 4.0)}")
    elif args.which in ("fig13", "fig14"):
        scales = [int(s) for s in args.scales.split(",")]
        systems = (
            ["pandas"]
            if args.which == "fig13"
            else ["pandas", "gossipsub", "dht", "peerdas"]
        )
        for system in systems:
            results = figures.run_scaling(
                node_counts=scales, seed=args.seed, system=system, params=params
            )
            for count, result in results.items():
                print(f"{system:<10} {count:>6} nodes  {summarize(result.sampling, 4.0)}")
    elif args.which == "fig15":
        for fault in ("dead", "out_of_view"):
            results = figures.run_fault_sweep(
                fault=fault, num_nodes=args.nodes, seed=args.seed, params=params
            )
            for fraction, result in results.items():
                print(f"{fault:<12} {fraction:>4.0%}  {summarize(result.sampling, 4.0)}")
    return 0


def _cmd_baselines(args) -> int:
    from repro.experiments import figures

    results = figures.run_baseline_comparison(
        num_nodes=args.nodes, seed=args.seed, params=_params(args)
    )
    for name, result in results.items():
        print(f"{name:<10} {summarize(result.sampling, 4.0)}")
    print(ascii_cdf({n: r.sampling for n, r in results.items()}, deadline=4.0))
    return 0


def _cmd_faults(args) -> int:
    from repro.experiments import figures

    fractions = tuple(float(f) for f in args.fractions.split(","))
    tracer, profiler = _make_obs(args)
    results = figures.run_fault_sweep(
        fractions=fractions,
        fault=args.fault,
        num_nodes=args.nodes,
        seed=args.seed,
        params=_params(args),
        tracer=tracer,
        profiler=profiler,
    )
    for fraction, result in results.items():
        print(f"{args.fault:<12} {fraction:>4.0%}  {summarize(result.sampling, 4.0)}")
    _finish_obs(tracer, profiler, args)
    return 0


def _cmd_adversary(args) -> int:
    from repro.experiments import figures

    fractions = tuple(float(f) for f in args.fractions.split(","))
    tracer, profiler = _make_obs(args)
    results = figures.run_adversarial_sweep(
        fractions=fractions,
        behavior=args.behavior,
        num_nodes=args.nodes,
        slots=args.slots,
        seed=args.seed,
        params=_params(args),
        tracer=tracer,
        profiler=profiler,
    )
    print(f"{args.behavior} sweep over {args.nodes} nodes "
          "(measured honest completion vs sybil-model bound)")
    for fraction, point in results.items():
        print(
            f"  {fraction:>4.0%} byzantine ({point.byzantine_count:>3} nodes)  "
            f"sampling {point.sampling_within_deadline:>6.1%} <=4s "
            f"(analytic >= {point.analytic_success:.1%})  "
            f"consolidation {point.consolidation_within_deadline:>6.1%}"
        )
        if args.details:
            for label, counts in (
                ("adversary", point.fault_counts),
                ("defenses", point.defense_counts),
            ):
                if counts:
                    line = ", ".join(
                        f"{kind}={int(count)}" for kind, count in sorted(counts.items())
                    )
                    print(f"       {label:<9} {line}")
    _finish_obs(tracer, profiler, args)
    return 0


def _cmd_security(args) -> int:
    from repro.das.security import false_positive_probability, required_samples

    grid = args.grid
    needed = required_samples(grid, grid, args.target)
    print(f"grid {grid}x{grid}: {needed} samples reach FP < {args.target:g}")
    samples = args.samples if args.samples is not None else needed
    fp = false_positive_probability(samples, grid, grid)
    print(f"FP bound at s={samples}: {fp:.3e}")
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.report import drain_buffer, print_trace_report
    from repro.experiments.scenario import Scenario, ScenarioConfig
    from repro.faults.plan import FaultPlan
    from repro.obs import ChromeTraceSink, JsonlSink, TraceRecorder
    from repro.obs.timeline import lifecycle_problems

    sinks = []
    if args.out:
        sinks.append(JsonlSink(args.out))
    if args.chrome:
        sinks.append(ChromeTraceSink(args.chrome))
    kinds = None
    if args.kinds:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    tracer = TraceRecorder(capacity=args.ring, kinds=kinds, sinks=sinks)
    faults = FaultPlan.parse(args.faults) if args.faults else None
    config = ScenarioConfig(
        num_nodes=args.nodes,
        params=_params(args),
        policy=policy_by_name(args.policy, args.redundancy),
        seed=args.seed,
        slots=args.slots,
        faults=faults,
        tracer=tracer,
    )
    print(
        f"tracing {args.slots} slot(s) over {args.nodes} nodes "
        f"({config.policy.name}, kinds={'all' if kinds is None else ','.join(kinds)})"
    )
    scenario = Scenario(config).run()
    tracer.close()
    phases = scenario.phase_distributions()
    print(f"  sampling       {summarize(phases.sampling, 4.0)}")
    print(f"  events         {tracer.accepted} accepted, {tracer.filtered} filtered, "
          f"{tracer.evicted} evicted from ring")
    top = sorted(tracer.counts.items(), key=lambda kv: (-kv[1], kv[0]))[:6]
    print("  top kinds      " + ", ".join(f"{k}={n}" for k, n in top))
    events = [e.to_dict() for e in tracer.events]
    if tracer.evicted == 0:
        problems = lifecycle_problems(events)
        status = "OK" if not problems else f"{len(problems)} problem(s)"
        print(f"  lifecycle      {status}")
        for problem in problems[:5]:
            print(f"    !! {problem}")
    if args.out:
        print(f"  jsonl          {args.out}")
    if args.chrome:
        print(f"  chrome         {args.chrome} (open in about://tracing or Perfetto)")
    if args.report:
        import os

        print_trace_report(events, slot=0)
        # _emit prints immediately outside pytest; under pytest the
        # lines only land in the buffer, so replay them for capsys
        lines = drain_buffer()
        if "PYTEST_CURRENT_TEST" in os.environ:
            for line in lines:
                print(line)
    return 0


def _cmd_profile(args) -> int:
    from repro.experiments.scenario import Scenario, ScenarioConfig
    from repro.obs import CallbackProfiler

    profiler = CallbackProfiler()
    config = ScenarioConfig(
        num_nodes=args.nodes,
        params=_params(args),
        policy=policy_by_name(args.policy, args.redundancy),
        seed=args.seed,
        slots=args.slots,
        profiler=profiler,
    )
    print(f"profiling {args.slots} slot(s) over {args.nodes} nodes ({config.policy.name})")
    scenario = Scenario(config).run()
    phases = scenario.phase_distributions()
    print(f"  sampling       {summarize(phases.sampling, 4.0)}")
    print(profiler.format(top=args.top))
    return 0


def _cmd_pipeline(args) -> int:
    from dataclasses import replace

    from repro.experiments.pipeline import PipelineScenario
    from repro.experiments.scenario import ScenarioConfig
    from repro.params import RetryPolicy

    params = replace(
        _params(args),
        fetch_retry=None if args.no_retry else RetryPolicy(),
        pending_request_limit=args.pending_limit if args.pending_limit > 0 else None,
        retrieval_admit_rate=args.admit_rate if args.admit_rate > 0 else None,
        retrieval_admit_burst=args.admit_burst,
    )
    tracer, profiler = _make_obs(args)
    telemetry = _make_telemetry(args)
    config = ScenarioConfig(
        num_nodes=args.nodes,
        params=params,
        policy=policy_by_name(args.policy, args.redundancy),
        seed=args.seed,
        slots=args.slots,
        check_invariants=args.check_invariants,
        tracer=tracer,
        profiler=profiler,
        telemetry=telemetry,
        max_inbox=args.max_inbox if args.max_inbox > 0 else None,
    )
    scenario = PipelineScenario(
        config,
        churn_fraction=args.churn,
        view_lag_slots=args.view_lag,
        retention_slots=args.retention,
        probes_per_slot=args.probes,
        client_rate=args.client_rate,
        service_rate=args.service_rate if args.service_rate > 0 else None,
        max_backlog=args.max_backlog if args.max_backlog > 0 else None,
    ).run()
    report = scenario.report()
    if args.json:
        payload = report.to_dict()
        if scenario.invariants is not None:
            payload["invariants"] = {"checks_run": scenario.invariants.checks_run}
        if tracer is not None:
            tracer.close()
            payload["trace"] = {"file": args.trace, "events": tracer.accepted}
        telemetry_info = _finish_telemetry(telemetry, args)
        if telemetry_info is not None:
            payload["telemetry"] = telemetry_info
        print(json.dumps(payload, default=float))
        if profiler is not None:
            print(profiler.format(top=12), file=sys.stderr)
        return 0 if report.deadline_hit_rate > 0 else 1
    print(
        f"sustained pipeline: {args.slots} slot(s), {args.nodes} nodes, "
        f"{args.churn:.0%} churn/slot ({config.policy.name})"
    )
    for row in report.rows:
        print(
            f"  slot {row['slot']:>3} (epoch {row['epoch']:>2})  "
            f"deadline-hit {row['deadline_hit']:>6.1%}  "
            f"live {row['live_nodes']:>5}  "
            f"queue-depth {row['max_queue_depth']:>4}  "
            f"shed {row['shed_total']:>8.0f}"
        )
    print(f"  deadline-hit rate  {report.deadline_hit_rate:.1%}")
    probe = report.probe
    if probe.get("completed"):
        print(
            f"  probe retrieval    {probe['completed']}/{probe['issued']} complete, "
            f"p50 {probe['latency_p50'] * 1e3:.0f} ms, "
            f"p99 {probe['latency_p99'] * 1e3:.0f} ms "
            f"({probe['shed']} shed)"
        )
    aggregate = report.aggregate
    if aggregate:
        line = (
            f"  aggregate load     {aggregate['served']:.3g} served / "
            f"{aggregate['offered']:.3g} offered, "
            f"shed {aggregate['shed_admission'] + aggregate['shed_overflow']:.3g}, "
            f"backlog peak {aggregate['peak_backlog']:.3g}"
        )
        if "latency_p99" in aggregate:
            line += f", model p99 {aggregate['latency_p99']:.2f} s"
        print(line)
    if report.sheds:
        shed_line = ", ".join(f"{k}={v:.0f}" for k, v in report.sheds.items())
        print(f"  sheds              {shed_line}")
    if report.queue_depth_peaks:
        peaks = ", ".join(f"{k}={v}" for k, v in report.queue_depth_peaks.items())
        print(f"  queue peaks        {peaks}")
    if report.datagrams_overflowed:
        print(f"  inbox overflow     {report.datagrams_overflowed} datagrams")
    if scenario.invariants is not None:
        print(f"  invariants         ok ({scenario.invariants.checks_run} checks)")
    print(f"  fingerprint        {report.fingerprint[:16]}…")
    telemetry_info = _finish_telemetry(telemetry, args)
    if telemetry_info is not None:
        print(
            f"  telemetry          {telemetry_info['samples']} samples -> "
            f"{telemetry_info['file']}"
        )
    _finish_obs(tracer, profiler, args)
    return 0 if report.deadline_hit_rate > 0 else 1


def _cmd_health(args) -> int:
    from repro.obs.health import SloThresholds, analyze_file, format_report

    thresholds = SloThresholds(
        min_deadline_hit_rate=args.min_deadline_hit,
        max_queue_depth_p99=args.max_queue_p99,
        max_shed_total=args.max_shed,
    )
    try:
        report = analyze_file(args.series, thresholds)
    except (OSError, ValueError) as exc:
        print(f"cannot analyze {args.series}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), default=float))
    else:
        for line in format_report(report):
            print(line)
    return 0 if report.passed else 1


def _cmd_lint(args) -> int:
    from repro.analysis.reprolint.cli import run

    return run(args.lint_args)


def _cmd_detsan(args) -> int:
    from repro.analysis.detsan import run

    return run(args.detsan_args)


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.experiments.bench import (
        check_against_baseline,
        next_bench_path,
        run_bench,
    )

    scales = [int(part) for part in args.scales.split(",") if part.strip()]
    if not scales:
        print("no scales given", file=sys.stderr)
        return 2
    report = run_bench(
        scales,
        seed=args.seed,
        reduced=args.reduced,
        trace_overhead=not args.no_trace_overhead,
        telemetry_overhead=not args.no_telemetry_overhead,
    )
    for row in report["scales"]:
        speedup = row.get("speedup_vs_pre_scale_up")
        extra = f"  ({speedup}x vs pre-scale-up)" if speedup else ""
        print(
            f"{row['nodes']:>6} nodes: {row['wall_s']:>9.2f}s wall, "
            f"{row['events']:>10} events, {row['events_per_sec']:>10.0f} ev/s{extra}"
        )
    overhead = report.get("trace_overhead")
    if overhead:
        print(
            f"trace overhead @{overhead['nodes']} nodes: "
            f"{overhead['overhead_ratio']:.2f}x"
        )
    overhead = report.get("telemetry_overhead")
    if overhead:
        print(
            f"telemetry overhead @{overhead['nodes']} nodes: "
            f"{overhead['overhead_ratio']:.2f}x"
        )
    out = Path(args.out) if args.out else next_bench_path(Path.cwd())
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if args.check:
        failures = check_against_baseline(
            report,
            Path(args.check),
            max_regression=args.max_regression,
            max_obs_overhead=args.max_obs_overhead,
        )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression vs {args.check}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `lint` and `detsan` forward their whole argument list to nested
    # tools; argparse REMAINDER refuses a leading option token (e.g.
    # `repro detsan --hash-seeds ...`), so forward before parsing.
    if argv and argv[0] == "lint":
        from repro.analysis.reprolint.cli import run as lint_run

        return lint_run(argv[1:])
    if argv and argv[0] == "detsan":
        from repro.analysis.detsan import run as detsan_run

        return detsan_run(argv[1:])
    args = build_parser().parse_args(argv)
    handlers = {
        "slot": _cmd_slot,
        "figure": _cmd_figure,
        "baselines": _cmd_baselines,
        "faults": _cmd_faults,
        "adversary": _cmd_adversary,
        "security": _cmd_security,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "pipeline": _cmd_pipeline,
        "health": _cmd_health,
        "lint": _cmd_lint,
        "detsan": _cmd_detsan,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
