"""GossipSub-style topic pub/sub over the simulated network.

Used in two places, matching the paper:

- the system-wide channel that disseminates each new *block* (step 2
  of Figure 4), whose reception-time CDF Figure 9a shows next to the
  PANDAS phases;
- the GossipSub DAS baseline of Figures 12 and 14 (one channel per
  unit of custody).

The model captures what matters for dissemination timing: per-topic
meshes of bounded degree (libp2p default D=8), eager push of full
messages along mesh edges, duplicate suppression by message id, and
TCP transport (reliable, so no Bernoulli loss — retransmission is
already abstracted by the latency/bandwidth path). Control-plane
details (IHAVE/IWANT lazy gossip, heartbeat GRAFT/PRUNE churn) shift
tail behaviour only on much longer timescales than one slot, and are
deliberately out of scope; the mesh is built at subscription time and
static within a run, as in PeerSim-style evaluations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Hashable

from repro.net.transport import Datagram, Network

__all__ = ["GossipMessage", "GossipOverlay", "DEFAULT_MESH_DEGREE"]

DEFAULT_MESH_DEGREE = 8
GOSSIP_HEADER_BYTES = 80  # topic id, message id, framing


@dataclass(frozen=True)
class GossipMessage:
    """One pub/sub data frame.

    ``slot`` mirrors the protocol messages so traffic observers can
    attribute gossip bytes to a slot.
    """

    topic: Hashable
    msg_id: Hashable
    payload: object
    payload_size: int
    slot: int = -1

    @property
    def size(self) -> int:
        return self.payload_size + GOSSIP_HEADER_BYTES


class GossipOverlay:
    """All topics' meshes plus per-member routing state.

    One overlay instance serves every participant; members are network
    addresses. The owner routes incoming ``GossipMessage`` datagrams
    to :meth:`on_datagram`.
    """

    def __init__(
        self,
        network: Network,
        rng: random.Random,
        mesh_degree: int = DEFAULT_MESH_DEGREE,
    ) -> None:
        if mesh_degree < 1:
            raise ValueError("mesh degree must be positive")
        self.network = network
        self.rng = rng
        self.mesh_degree = mesh_degree
        self._mesh: dict[tuple[Hashable, int], set[int]] = {}
        self._members: dict[Hashable, list[int]] = {}
        self._seen: dict[int, set[tuple[Hashable, Hashable]]] = {}
        self._handlers: dict[Hashable, Callable[[int, GossipMessage], None]] = {}
        self.messages_forwarded = 0
        self.duplicates_suppressed = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def create_topic(
        self,
        topic: Hashable,
        members: list[int],
        handler: Callable[[int, GossipMessage], None] | None = None,
    ) -> None:
        """Subscribe ``members`` and build the topic mesh.

        Each member GRAFTs ``mesh_degree`` random peers; meshes are
        symmetric (an edge serves both directions), giving the usual
        degree distribution around 1-2x the target.
        """
        if topic in self._members:
            raise ValueError(f"topic {topic!r} already exists")
        self._members[topic] = list(members)
        if handler is not None:
            self._handlers[topic] = handler
        for member in members:
            self._mesh.setdefault((topic, member), set())
        if len(members) < 2:
            return
        for member in members:
            others = [m for m in members if m != member]
            picks = self.rng.sample(others, min(self.mesh_degree, len(others)))
            for pick in picks:
                self._mesh[(topic, member)].add(pick)
                self._mesh[(topic, pick)].add(member)

    def mesh_neighbors(self, topic: Hashable, member: int) -> set[int]:
        return self._mesh.get((topic, member), set())

    def topic_members(self, topic: Hashable) -> list[int]:
        return self._members.get(topic, [])

    def set_handler(self, topic: Hashable, handler: Callable[[int, GossipMessage], None]) -> None:
        self._handlers[topic] = handler

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def publish(
        self,
        publisher: int,
        topic: Hashable,
        msg_id: Hashable,
        payload: object,
        payload_size: int,
        slot: int = -1,
        fanout: int | None = None,
    ) -> None:
        """Inject a message.

        A publisher subscribed to the topic pushes to its mesh; an
        external publisher (e.g. the builder) pushes to ``fanout``
        random members, per GossipSub's fanout rule.
        """
        message = GossipMessage(topic, msg_id, payload, payload_size, slot)
        mesh = self._mesh.get((topic, publisher))
        if mesh is not None:
            # sorted, not raw set order: which neighbor's datagram is
            # scheduled first must be program text, not hash layout
            targets = sorted(mesh)
        else:
            members = self._members.get(topic, [])
            if not members:
                return
            count = min(fanout if fanout is not None else self.mesh_degree, len(members))
            targets = self.rng.sample(members, count)
        self._seen.setdefault(publisher, set()).add((topic, msg_id))
        for neighbor in targets:
            self._push(publisher, neighbor, message)

    def _push(self, src: int, dst: int, message: GossipMessage) -> None:
        self.messages_forwarded += 1
        self.network.send(src, dst, message, message.size, reliable=True)

    def on_datagram(self, member: int, dgram: Datagram) -> None:
        """Mesh forwarding with duplicate suppression."""
        message = dgram.payload
        if not isinstance(message, GossipMessage):
            return
        seen = self._seen.setdefault(member, set())
        key = (message.topic, message.msg_id)
        if key in seen:
            self.duplicates_suppressed += 1
            return
        seen.add(key)
        handler = self._handlers.get(message.topic)
        if handler is not None:
            handler(member, message)
        for neighbor in sorted(self._mesh.get((message.topic, member), ())):
            if neighbor != dgram.src:
                self._push(member, neighbor, message)

    def reset_seen(self) -> None:
        """Forget message ids (between slots, to bound memory)."""
        self._seen.clear()
