"""GossipSub-style topic pub/sub over the simulated network.

Used in two places, matching the paper:

- the system-wide channel that disseminates each new *block* (step 2
  of Figure 4), whose reception-time CDF Figure 9a shows next to the
  PANDAS phases;
- the GossipSub DAS baseline of Figures 12 and 14 (one channel per
  unit of custody).

The model captures what matters for dissemination timing: per-topic
meshes of bounded degree (libp2p default D=8), eager push of full
messages along mesh edges, duplicate suppression by message id, and
TCP transport (reliable, so no Bernoulli loss — retransmission is
already abstracted by the latency/bandwidth path). Control-plane
details (IHAVE/IWANT lazy gossip, heartbeat GRAFT/PRUNE churn) shift
tail behaviour only on much longer timescales than one slot, and are
deliberately out of scope; the mesh is built at subscription time and
static within a run, as in PeerSim-style evaluations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Hashable

from repro.net.transport import Datagram, Network

__all__ = [
    "GossipMessage",
    "GossipOverlay",
    "DEFAULT_MESH_DEGREE",
    "DEFAULT_DEGREE_CAP",
]

DEFAULT_MESH_DEGREE = 8
# D_hi-style upper bound on realized mesh degree. Symmetric GRAFTing
# lands each member between mesh_degree (its own picks) and whatever
# incoming edges add on top; without a cap the realized distribution
# spans 1-2x the target, and a node subscribed to many topics (the
# PeerDAS column subnets) multiplies that overshoot per topic. The cap
# is opt-in per overlay/topic so legacy meshes replay unchanged.
DEFAULT_DEGREE_CAP = 12
GOSSIP_HEADER_BYTES = 80  # topic id, message id, framing


@dataclass(frozen=True)
class GossipMessage:
    """One pub/sub data frame.

    ``slot`` mirrors the protocol messages so traffic observers can
    attribute gossip bytes to a slot.
    """

    topic: Hashable
    msg_id: Hashable
    payload: object
    payload_size: int
    slot: int = -1

    @property
    def size(self) -> int:
        return self.payload_size + GOSSIP_HEADER_BYTES


class GossipOverlay:
    """All topics' meshes plus per-member routing state.

    One overlay instance serves every participant; members are network
    addresses. The owner routes incoming ``GossipMessage`` datagrams
    to :meth:`on_datagram`.
    """

    def __init__(
        self,
        network: Network,
        rng: random.Random,
        mesh_degree: int = DEFAULT_MESH_DEGREE,
        degree_cap: int | None = None,
    ) -> None:
        if mesh_degree < 1:
            raise ValueError("mesh degree must be positive")
        if degree_cap is not None and degree_cap < mesh_degree:
            raise ValueError("degree_cap must be at least mesh_degree")
        self.network = network
        self.rng = rng
        self.mesh_degree = mesh_degree
        self.degree_cap = degree_cap
        self._mesh: dict[tuple[Hashable, int], set[int]] = {}
        self._members: dict[Hashable, list[int]] = {}
        # per-member dedup state: (topic, msg_id) -> slot of the message.
        # The slot tag is what lets sustained multi-slot runs retire
        # entries for finished slots instead of accumulating forever.
        self._seen: dict[int, dict[tuple[Hashable, Hashable], int]] = {}
        self._handlers: dict[Hashable, Callable[[int, GossipMessage], None]] = {}
        self.messages_forwarded = 0
        self.duplicates_suppressed = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def create_topic(
        self,
        topic: Hashable,
        members: list[int],
        handler: Callable[[int, GossipMessage], None] | None = None,
        degree_cap: int | None = None,
    ) -> None:
        """Subscribe ``members`` and build the topic mesh.

        Each member GRAFTs ``mesh_degree`` random peers; meshes are
        symmetric (an edge serves both directions), giving the usual
        degree distribution around 1-2x the target.

        With a ``degree_cap`` (here or on the overlay), grafting
        respects a D_hi-style bound: a member stops accepting incoming
        edges at the cap and skips grafting peers already there, so the
        realized degree distribution stays within
        ``[min(mesh_degree, len-1), degree_cap]``. The uncapped path is
        kept byte-identical (same RNG draws, same edges) so legacy
        meshes replay unchanged.
        """
        if topic in self._members:
            raise ValueError(f"topic {topic!r} already exists")
        cap = degree_cap if degree_cap is not None else self.degree_cap
        if cap is not None and cap < self.mesh_degree:
            raise ValueError("degree_cap must be at least mesh_degree")
        self._members[topic] = list(members)
        if handler is not None:
            self._handlers[topic] = handler
        for member in members:
            self._mesh.setdefault((topic, member), set())
        if len(members) < 2:
            return
        if cap is None:
            for member in members:
                others = [m for m in members if m != member]
                picks = self.rng.sample(others, min(self.mesh_degree, len(others)))
                for pick in picks:
                    self._mesh[(topic, member)].add(pick)
                    self._mesh[(topic, pick)].add(member)
            return
        mesh = self._mesh
        for member in members:
            own = mesh[(topic, member)]
            others = [m for m in members if m != member and m not in own]
            # a full random order, walked until the member holds
            # mesh_degree edges: skipped-at-cap peers cost nothing
            order = self.rng.sample(others, len(others))
            for pick in order:
                if len(own) >= self.mesh_degree:
                    break
                peer_mesh = mesh[(topic, pick)]
                if len(peer_mesh) >= cap:
                    continue
                own.add(pick)
                peer_mesh.add(member)

    def mesh_neighbors(self, topic: Hashable, member: int) -> set[int]:
        return self._mesh.get((topic, member), set())

    def topic_members(self, topic: Hashable) -> list[int]:
        return self._members.get(topic, [])

    def set_handler(self, topic: Hashable, handler: Callable[[int, GossipMessage], None]) -> None:
        self._handlers[topic] = handler

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def publish(
        self,
        publisher: int,
        topic: Hashable,
        msg_id: Hashable,
        payload: object,
        payload_size: int,
        slot: int = -1,
        fanout: int | None = None,
    ) -> None:
        """Inject a message.

        A publisher subscribed to the topic pushes to its mesh; an
        external publisher (e.g. the builder) pushes to ``fanout``
        random members, per GossipSub's fanout rule.
        """
        message = GossipMessage(topic, msg_id, payload, payload_size, slot)
        mesh = self._mesh.get((topic, publisher))
        if mesh is not None:
            # sorted, not raw set order: which neighbor's datagram is
            # scheduled first must be program text, not hash layout
            targets = sorted(mesh)
        else:
            members = self._members.get(topic, [])
            if not members:
                return
            count = min(fanout if fanout is not None else self.mesh_degree, len(members))
            targets = self.rng.sample(members, count)
        self._seen.setdefault(publisher, {})[(topic, msg_id)] = slot
        for neighbor in targets:
            self._push(publisher, neighbor, message)

    def _push(self, src: int, dst: int, message: GossipMessage) -> None:
        self.messages_forwarded += 1
        self.network.send(src, dst, message, message.size, reliable=True)

    def on_datagram(self, member: int, dgram: Datagram) -> None:
        """Mesh forwarding with duplicate suppression."""
        message = dgram.payload
        if not isinstance(message, GossipMessage):
            return
        seen = self._seen.setdefault(member, {})
        key = (message.topic, message.msg_id)
        if key in seen:
            self.duplicates_suppressed += 1
            return
        seen[key] = message.slot
        handler = self._handlers.get(message.topic)
        if handler is not None:
            handler(member, message)
        for neighbor in sorted(self._mesh.get((message.topic, member), ())):
            if neighbor != dgram.src:
                self._push(member, neighbor, message)

    def reset_seen(self) -> None:
        """Forget message ids (between slots, to bound memory)."""
        self._seen.clear()

    def expire_seen(self, min_slot: int) -> None:
        """Drop dedup entries for messages from slots before ``min_slot``.

        Sustained multi-slot runs call this at retirement time instead of
        :meth:`reset_seen`, which would also forget the *current* slot's
        ids and re-open the mesh to duplicate storms mid-dissemination.
        Entries published without a slot tag (slot ``-1``) are treated as
        slot-less housekeeping and also expire once any real slot is
        retired.
        """
        emptied = []
        for member, seen in self._seen.items():
            stale = [key for key, slot in seen.items() if slot < min_slot]
            for key in stale:
                del seen[key]
            if not seen:
                emptied.append(member)
        for member in emptied:
            del self._seen[member]

    def retire_member(self, member: int) -> None:
        """Forget all per-member state for a node leaving the overlay.

        Removes the member's dedup set, unsubscribes it from every
        topic, and detaches both directions of its mesh edges, so
        churned-out nodes cost nothing for the rest of a sustained run.
        """
        self._seen.pop(member, None)
        for topic, members in self._members.items():
            if member in members:
                members.remove(member)
            edges = self._mesh.pop((topic, member), None)
            if edges:
                for peer in sorted(edges):
                    self._mesh.get((topic, peer), set()).discard(member)

    def seen_entries(self) -> int:
        """Total dedup entries across members (memory-bound tests)."""
        return sum(len(seen) for seen in self._seen.values())
