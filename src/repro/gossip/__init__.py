"""GossipSub-style pub/sub substrate."""

from repro.gossip.pubsub import DEFAULT_MESH_DEGREE, GossipMessage, GossipOverlay

__all__ = ["DEFAULT_MESH_DEGREE", "GossipMessage", "GossipOverlay"]
