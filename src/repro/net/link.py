"""Bandwidth-limited access links.

The paper caps each node's connection at 25 Mbps and the builder's at
10 Gbps. We model each endpoint with an uplink and a downlink modelled
as FIFO serialization queues: a message of ``size`` bytes occupies the
link for ``size * 8 / rate`` seconds, and back-to-back messages queue
behind each other. This is what makes the *redundant* seeding policy
measurably heavier for the builder and what creates the contention
effects the paper reports ("reduced contention on peer bandwidth ...
speeds up the fetching operation").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessLink", "mbps", "gbps"]


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8.0


@dataclass
class AccessLink:
    """One endpoint's uplink + downlink serialization state.

    Rates are in bytes/second. ``None`` disables shaping for that
    direction (infinite capacity), useful in unit tests.
    """

    up_rate: float | None
    down_rate: float | None
    up_busy_until: float = 0.0
    down_busy_until: float = 0.0
    up_bytes: float = 0.0
    down_bytes: float = 0.0

    def reserve_uplink(self, now: float, size: int) -> float:
        """Serialize ``size`` bytes out; returns departure time."""
        self.up_bytes += size
        if self.up_rate is None:
            return now
        start = max(now, self.up_busy_until)
        self.up_busy_until = start + size / self.up_rate
        return self.up_busy_until

    def reserve_downlink(self, arrival: float, size: int) -> float:
        """Serialize ``size`` bytes in; returns full-delivery time."""
        self.down_bytes += size
        if self.down_rate is None:
            return arrival
        start = max(arrival, self.down_busy_until)
        self.down_busy_until = start + size / self.down_rate
        return self.down_busy_until

    def uplink_backlog(self, now: float) -> float:
        """Seconds of queued, not-yet-serialized outgoing traffic."""
        return max(0.0, self.up_busy_until - now)

    def downlink_backlog(self, now: float) -> float:
        """Seconds of queued, not-yet-serialized incoming traffic."""
        return max(0.0, self.down_busy_until - now)

    def reset(self) -> None:
        self.up_busy_until = 0.0
        self.down_busy_until = 0.0
        self.up_bytes = 0.0
        self.down_bytes = 0.0
