"""Topology: placing nodes and builders onto latency-model vertices.

Mirrors the paper's setup: nodes are assigned to trace vertices
randomly (with reuse when there are more nodes than vertices, exactly
as the paper does beyond 10,000 nodes); the builder is placed on a
vertex randomly chosen among the 20% with the best average latency,
modelling a cloud deployment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.net.latency import LatencyModel
from repro.net.link import gbps, mbps

__all__ = ["NodeProfile", "Topology", "DEFAULT_NODE_PROFILE", "DEFAULT_BUILDER_PROFILE"]


@dataclass(frozen=True)
class NodeProfile:
    """Link capacities for a class of participants (bytes/second)."""

    up_rate: float | None
    down_rate: float | None
    label: str = "node"


# The paper caps node connections at 25 Mbps (both directions in the
# testbed) and the builder at 10 Gbps.
DEFAULT_NODE_PROFILE = NodeProfile(up_rate=mbps(25), down_rate=mbps(25), label="node")
DEFAULT_BUILDER_PROFILE = NodeProfile(up_rate=gbps(10), down_rate=gbps(10), label="builder")


@dataclass
class Topology:
    """Assignment of simulation participants to latency vertices."""

    latency: LatencyModel
    node_vertices: dict[int, int] = field(default_factory=dict)
    builder_vertices: dict[int, int] = field(default_factory=dict)

    @staticmethod
    def build(
        latency: LatencyModel,
        node_ids: Sequence[int],
        builder_ids: Sequence[int],
        rng: random.Random,
        builder_fraction: float = 0.2,
    ) -> Topology:
        """Place nodes uniformly and builders among the best vertices."""
        topo = Topology(latency)
        num_vertices = latency.num_vertices
        for node_id in node_ids:
            topo.node_vertices[node_id] = rng.randrange(num_vertices)
        if builder_ids:
            best = _best_vertices(latency, builder_fraction)
            for builder_id in builder_ids:
                topo.builder_vertices[builder_id] = rng.choice(best)
        return topo

    def vertex_of(self, participant_id: int) -> int:
        if participant_id in self.node_vertices:
            return self.node_vertices[participant_id]
        return self.builder_vertices[participant_id]


def _best_vertices(latency: LatencyModel, fraction: float) -> list[int]:
    best_connected = getattr(latency, "best_connected", None)
    if callable(best_connected):
        return list(best_connected(fraction))
    # Fallback for simple models without a notion of "well-connected".
    count = max(1, int(latency.num_vertices * fraction))
    order = sorted(range(latency.num_vertices), key=latency.mean_one_way)
    return order[:count]
