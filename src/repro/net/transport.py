"""Lossy, connectionless (UDP-like) message transport.

PANDAS deliberately uses one-way UDP datagrams with no connection
establishment, keep-alives, or negative acknowledgments; requests and
responses "may fail silently due to packet loss or incorrect nodes".
The transport reproduces exactly that contract:

- ``send`` never fails at the caller; loss is a Bernoulli draw
  (the paper's testbed observed 3% UDP loss);
- delivery time = sender uplink serialization + propagation latency +
  receiver downlink serialization (see :mod:`repro.net.link`);
- datagrams to unregistered/destroyed addresses vanish silently, which
  models departed nodes that are still present in stale views.

Delivery scheduling has two modes (``delivery=`` constructor knob):

- ``"batched"`` (default): each endpoint keeps one sorted pending
  queue (inbox) of in-flight datagrams and at most **one** scheduled
  simulator event per link, armed at the queue head. During a seeding
  burst a receiver's downlink backlog is hundreds of datagrams;
  batching keeps the simulator queue small instead of holding one
  event per in-flight datagram.
- ``"per-datagram"``: the original one-event-per-datagram scheduling,
  kept as the conformance oracle — the batched-transport test suite
  pins that both modes produce identical metrics snapshots under
  loss, duplication, jitter and partition faults.

Batched mode is *bit-identical* to per-datagram mode, including tie
order against unrelated simulator events: every datagram copy reserves
its engine sequence number at send time (``Simulator.reserve_seq``),
exactly when per-datagram mode would have scheduled its delivery
event, and the armed event replays the head's reserved ``(time, seq)``
key. One fired event delivers a run of consecutive entries only when
nothing can sort between them — same timestamp and adjacent sequence
numbers — so handler interleaving is provably unchanged at any scale.
"""

from __future__ import annotations

import random
from bisect import insort
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.net.latency import LatencyModel
from repro.net.link import AccessLink
from repro.sim.engine import Event, Simulator

__all__ = ["Datagram", "Endpoint", "Network", "DEFAULT_LOSS_RATE", "DELIVERY_MODES"]

DEFAULT_LOSS_RATE = 0.03  # observed UDP loss in the paper's cluster

DELIVERY_MODES = ("batched", "per-datagram")

# One in-flight datagram on a link queue: (delivered_at, reserved
# engine seq, dgram). Inbox order IS global pop order for these keys.
_Pending = tuple[float, int, "Datagram"]

# Compact the consumed prefix of an inbox once it grows past this many
# entries (amortized O(1); avoids O(n) list surgery per delivery).
_COMPACT_THRESHOLD = 256


@dataclass(slots=True)
class Datagram:
    """One message on the wire. Treated as immutable once sent.

    Not ``frozen=True``: a full-parameter slot creates hundreds of
    thousands of datagrams, and the frozen ``__init__`` pays an
    ``object.__setattr__`` per field on the hottest allocation site
    in the transport.
    """

    src: int
    dst: int
    payload: Any
    size: int
    sent_at: float


@dataclass(slots=True)
class Endpoint:
    """A registered network participant."""

    address: int
    vertex: int
    link: AccessLink
    handler: Callable[[Datagram], None]
    alive: bool = True
    # batched delivery state: the sorted pending queue (valid from
    # inbox_head on) and the single armed delivery event, if any
    inbox: list[_Pending] = field(default_factory=list)
    inbox_head: int = 0
    inbox_event: Event | None = None
    # in-flight datagram count toward this endpoint — the live queue
    # depth. Maintained identically in both delivery modes (batched
    # mode's live inbox length equals it by construction), so the
    # ``max_inbox`` overflow policy drops the very same datagrams in
    # both modes and the mode-equivalence fingerprint pins still hold.
    in_flight: int = 0
    # datagrams this endpoint rejected because its queue was full
    overflowed: int = 0


class Network:
    """Connects endpoints through latency, bandwidth and loss.

    ``on_send`` / ``on_deliver`` observers let the experiment layer
    account messages and bytes without protocol code knowing about
    metrics objects.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        loss_rate: float = DEFAULT_LOSS_RATE,
        rng: random.Random | None = None,
        delivery: str = "batched",
        max_inbox: int | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if delivery not in DELIVERY_MODES:
            raise ValueError(
                f"unknown delivery mode {delivery!r}; choose from {DELIVERY_MODES}"
            )
        if max_inbox is not None and max_inbox <= 0:
            raise ValueError(f"max_inbox must be positive or None, got {max_inbox}")
        self.sim = sim
        self.latency = latency
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self.delivery = delivery
        # Bound on in-flight datagrams per endpoint. ``None`` is the
        # legacy unbounded queue; with a limit, a datagram arriving at
        # a full queue is dropped at send-resolution time with reason
        # "overflow" — real NICs tail-drop, they do not buffer forever.
        # This is the transport half of the I5 "no unbounded backlog"
        # invariant (repro.faults.invariants).
        self.max_inbox = max_inbox
        self._endpoints: dict[int, Endpoint] = {}
        self.on_send: list[Callable[[Datagram], None]] = []
        self.on_deliver: list[Callable[[Datagram], None]] = []
        # Loss observers for the tracing layer: called with the dropped
        # datagram and a reason — "dead" (destination unregistered or
        # not alive at send time), "loss" (Bernoulli draw), "fault"
        # (fault_filter returned no copies), "dead_late" (receiver died
        # while the datagram was in flight), "overflow" (receiver's
        # bounded queue was full).
        self.on_drop: list[Callable[[Datagram, str], None]] = []
        # Optional fault-injection hook (see repro.faults.injector):
        # called per datagram with (dgram, reliable), returns one extra
        # delivery delay per copy to deliver — () drops the datagram,
        # (0.0,) is undisturbed delivery, (0.0, j) adds a duplicate.
        self.fault_filter: Callable[[Datagram, bool], tuple[float, ...]] | None = None
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_lost = 0
        self.datagrams_duplicated = 0
        self.datagrams_overflowed = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(
        self,
        address: int,
        vertex: int,
        handler: Callable[[Datagram], None],
        up_rate: float | None,
        down_rate: float | None,
    ) -> Endpoint:
        """Attach a participant; ``address`` must be unique."""
        if address in self._endpoints:
            raise ValueError(f"address {address} already registered")
        endpoint = Endpoint(address, vertex, AccessLink(up_rate, down_rate), handler)
        self._endpoints[address] = endpoint
        return endpoint

    def kill(self, address: int) -> None:
        """Silence an endpoint (fail-silent crash / free-rider model).

        The endpoint stays registered so senders still pay uplink cost,
        but nothing is ever delivered to or emitted by it.
        """
        endpoint = self._endpoints.get(address)
        if endpoint is not None:
            endpoint.alive = False

    def revive(self, address: int) -> None:
        """Bring a killed endpoint back (crash/recovery fault model).

        The link's serialization state resets: a rebooted process does
        not resume the backlog its dead NIC never drained. Datagrams
        already in flight toward the endpoint are delivered if they
        arrive after the revival — to senders the outage was silent.
        """
        endpoint = self._endpoints.get(address)
        if endpoint is not None and not endpoint.alive:
            endpoint.alive = True
            endpoint.link.reset()

    def is_alive(self, address: int) -> bool:
        endpoint = self._endpoints.get(address)
        return endpoint is not None and endpoint.alive

    def endpoint(self, address: int) -> Endpoint | None:
        return self._endpoints.get(address)

    @property
    def addresses(self) -> list[int]:
        return list(self._endpoints)

    def queue_depth(self, address: int) -> int:
        """Live in-flight datagram count toward ``address`` (0 if unknown).

        Identical in both delivery modes; this is the gauge the I5
        backlog invariant and the overload metrics sample.
        """
        endpoint = self._endpoints.get(address)
        return 0 if endpoint is None else endpoint.in_flight

    def max_queue_depth(self) -> int:
        """Largest live queue depth across all endpoints."""
        if not self._endpoints:
            return 0
        return max(e.in_flight for e in self._endpoints.values())

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, payload: Any, size: int, reliable: bool = False
    ) -> None:
        """Fire-and-forget datagram from ``src`` to ``dst``.

        The sender always pays uplink serialization (bytes leave the
        NIC whether or not they arrive). Loss and dead destinations
        are resolved at delivery time, silently.

        ``reliable=True`` models a TCP stream segment (as used by
        GossipSub in libp2p): retransmission hides Bernoulli loss, so
        the loss draw is skipped; dead endpoints still receive nothing.
        """
        sender = self._endpoints.get(src)
        if sender is None:
            raise ValueError(f"unknown sender {src}")
        if size <= 0:
            raise ValueError(f"datagram size must be positive, got {size}")
        now = self.sim.now
        dgram = Datagram(src, dst, payload, size, now)
        self.datagrams_sent += 1
        for observer in self.on_send:
            observer(dgram)

        departure = sender.link.reserve_uplink(now, size)
        receiver = self._endpoints.get(dst)
        if receiver is None or not receiver.alive or not sender.alive:
            self._drop(dgram, "dead")
            return
        if not reliable and self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self._drop(dgram, "loss")
            return
        extra_delays: tuple[float, ...] = (0.0,)
        if self.fault_filter is not None:
            extra_delays = self.fault_filter(dgram, reliable)
            if not extra_delays:
                self._drop(dgram, "fault")
                return
        arrival = departure + self.latency.one_way(sender.vertex, receiver.vertex)
        batched = self.delivery == "batched"
        max_inbox = self.max_inbox
        for copy_index, extra in enumerate(extra_delays):
            if max_inbox is not None and receiver.in_flight >= max_inbox:
                # bounded queue full: tail-drop this copy. Checked per
                # copy so a duplicate can overflow while the original
                # squeaked in — exactly what a real NIC queue would do.
                receiver.overflowed += 1
                self.datagrams_overflowed += 1
                self._drop(dgram, "overflow")
                continue
            if copy_index:
                self.datagrams_duplicated += 1
            receiver.in_flight += 1
            delivered_at = receiver.link.reserve_downlink(arrival + extra, size)
            if batched:
                self._enqueue(receiver, delivered_at, dgram)
            else:
                self.sim.call_at(delivered_at, self._deliver, receiver, dgram)

    def _drop(self, dgram: Datagram, reason: str) -> None:
        """Account one lost datagram and notify drop observers."""
        self.datagrams_lost += 1
        for observer in self.on_drop:
            observer(dgram, reason)

    def _deliver(self, receiver: Endpoint, dgram: Datagram) -> None:
        receiver.in_flight -= 1
        if not receiver.alive:
            self._drop(dgram, "dead_late")
            return
        self.datagrams_delivered += 1
        for observer in self.on_deliver:
            observer(dgram)
        receiver.handler(dgram)

    # ------------------------------------------------------------------
    # batched delivery
    # ------------------------------------------------------------------
    def _enqueue(self, receiver: Endpoint, delivered_at: float, dgram: Datagram) -> None:
        """Queue one in-flight datagram on the receiver's link.

        The entry's tie-break is an engine seq reserved *now* — the
        instant per-datagram mode would have scheduled the delivery —
        so inbox order equals global pop order. Shaped links hand out
        monotone delivery times, so the common case is a plain append;
        unshaped links (unit harnesses) and jittered duplicates may
        interleave, handled by an insort into the live suffix. The
        single armed event always replays the head's (time, seq) key.
        """
        inbox = receiver.inbox
        entry = (delivered_at, self.sim.reserve_seq(), dgram)
        if inbox and entry < inbox[-1]:
            insort(inbox, entry, lo=receiver.inbox_head)
        else:
            inbox.append(entry)
        armed = receiver.inbox_event
        head_time, head_seq, _ = inbox[receiver.inbox_head]
        if armed is None:
            receiver.inbox_event = self.sim.call_at(
                head_time, self._deliver_batch, receiver, seq=head_seq
            )
        elif (head_time, head_seq) < (armed.time, armed.seq):
            # a faster copy (jitter, unshaped link) now leads the queue
            armed.cancel()
            receiver.inbox_event = self.sim.call_at(
                head_time, self._deliver_batch, receiver, seq=head_seq
            )

    def _deliver_batch(self, receiver: Endpoint) -> None:
        """Deliver the inbox head, plus any provably adjacent entries.

        A trailing entry joins the batch only if it shares the head's
        timestamp and the sequence numbers are consecutive — then no
        other simulator event can sort between the two deliveries, so
        merging them into one callback is unobservable. Anything else
        is re-armed under its own reserved (time, seq) key, preserving
        exact interleaving with unrelated same-instant events.
        """
        receiver.inbox_event = None
        inbox = receiver.inbox
        head = receiver.inbox_head
        now = self.sim.now
        size = len(inbox)
        batch_start = head
        last_seq = inbox[head][1]
        head += 1
        while head < size:
            when, seq, _ = inbox[head]
            # Exact equality is the merge correctness condition: only a
            # bit-identical instant with adjacent seqs can share one
            # event without reordering against other same-time events.
            # reprolint: disable=RL005 -- intentional exact-tie match, see above
            if when != now or seq != last_seq + 1:
                break
            last_seq = seq
            head += 1
        batch = [inbox[i][2] for i in range(batch_start, head)]
        if head >= size:
            inbox.clear()
            receiver.inbox_head = 0
        elif head >= _COMPACT_THRESHOLD:
            del inbox[:head]
            receiver.inbox_head = 0
        else:
            receiver.inbox_head = head
        for dgram in batch:
            # handlers run with the same per-datagram semantics as the
            # one-event-per-datagram mode, including late-death drops
            # and the one-at-a-time in_flight decrement (a handler that
            # sends back to this endpoint must see the same queue depth
            # in both modes, or max_inbox would drop different copies)
            receiver.in_flight -= 1
            if not receiver.alive:
                self._drop(dgram, "dead_late")
                continue
            self.datagrams_delivered += 1
            for observer in self.on_deliver:
                observer(dgram)
            receiver.handler(dgram)
        # a handler may have sent to this same endpoint and re-armed the
        # delivery event; only arm here if the queue is idle with backlog
        if receiver.inbox_event is None:
            inbox = receiver.inbox
            head = receiver.inbox_head
            if head < len(inbox):
                when, seq, _ = inbox[head]
                receiver.inbox_event = self.sim.call_at(
                    when, self._deliver_batch, receiver, seq=seq
                )
