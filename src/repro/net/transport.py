"""Lossy, connectionless (UDP-like) message transport.

PANDAS deliberately uses one-way UDP datagrams with no connection
establishment, keep-alives, or negative acknowledgments; requests and
responses "may fail silently due to packet loss or incorrect nodes".
The transport reproduces exactly that contract:

- ``send`` never fails at the caller; loss is a Bernoulli draw
  (the paper's testbed observed 3% UDP loss);
- delivery time = sender uplink serialization + propagation latency +
  receiver downlink serialization (see :mod:`repro.net.link`);
- datagrams to unregistered/destroyed addresses vanish silently, which
  models departed nodes that are still present in stale views.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from repro.net.latency import LatencyModel
from repro.net.link import AccessLink
from repro.sim.engine import Simulator

__all__ = ["Datagram", "Endpoint", "Network", "DEFAULT_LOSS_RATE"]

DEFAULT_LOSS_RATE = 0.03  # observed UDP loss in the paper's cluster


@dataclass(frozen=True)
class Datagram:
    """One message on the wire."""

    src: int
    dst: int
    payload: Any
    size: int
    sent_at: float


@dataclass
class Endpoint:
    """A registered network participant."""

    address: int
    vertex: int
    link: AccessLink
    handler: Callable[[Datagram], None]
    alive: bool = True


class Network:
    """Connects endpoints through latency, bandwidth and loss.

    ``on_send`` / ``on_deliver`` observers let the experiment layer
    account messages and bytes without protocol code knowing about
    metrics objects.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        loss_rate: float = DEFAULT_LOSS_RATE,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.latency = latency
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else random.Random(0)
        self._endpoints: dict[int, Endpoint] = {}
        self.on_send: list[Callable[[Datagram], None]] = []
        self.on_deliver: list[Callable[[Datagram], None]] = []
        # Loss observers for the tracing layer: called with the dropped
        # datagram and a reason — "dead" (destination unregistered or
        # not alive at send time), "loss" (Bernoulli draw), "fault"
        # (fault_filter returned no copies), "dead_late" (receiver died
        # while the datagram was in flight).
        self.on_drop: list[Callable[[Datagram, str], None]] = []
        # Optional fault-injection hook (see repro.faults.injector):
        # called per datagram with (dgram, reliable), returns one extra
        # delivery delay per copy to deliver — () drops the datagram,
        # (0.0,) is undisturbed delivery, (0.0, j) adds a duplicate.
        self.fault_filter: Callable[[Datagram, bool], tuple[float, ...]] | None = None
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_lost = 0
        self.datagrams_duplicated = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(
        self,
        address: int,
        vertex: int,
        handler: Callable[[Datagram], None],
        up_rate: float | None,
        down_rate: float | None,
    ) -> Endpoint:
        """Attach a participant; ``address`` must be unique."""
        if address in self._endpoints:
            raise ValueError(f"address {address} already registered")
        endpoint = Endpoint(address, vertex, AccessLink(up_rate, down_rate), handler)
        self._endpoints[address] = endpoint
        return endpoint

    def kill(self, address: int) -> None:
        """Silence an endpoint (fail-silent crash / free-rider model).

        The endpoint stays registered so senders still pay uplink cost,
        but nothing is ever delivered to or emitted by it.
        """
        endpoint = self._endpoints.get(address)
        if endpoint is not None:
            endpoint.alive = False

    def revive(self, address: int) -> None:
        """Bring a killed endpoint back (crash/recovery fault model).

        The link's serialization state resets: a rebooted process does
        not resume the backlog its dead NIC never drained. Datagrams
        already in flight toward the endpoint are delivered if they
        arrive after the revival — to senders the outage was silent.
        """
        endpoint = self._endpoints.get(address)
        if endpoint is not None and not endpoint.alive:
            endpoint.alive = True
            endpoint.link.reset()

    def is_alive(self, address: int) -> bool:
        endpoint = self._endpoints.get(address)
        return endpoint is not None and endpoint.alive

    def endpoint(self, address: int) -> Endpoint | None:
        return self._endpoints.get(address)

    @property
    def addresses(self) -> list[int]:
        return list(self._endpoints)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, payload: Any, size: int, reliable: bool = False
    ) -> None:
        """Fire-and-forget datagram from ``src`` to ``dst``.

        The sender always pays uplink serialization (bytes leave the
        NIC whether or not they arrive). Loss and dead destinations
        are resolved at delivery time, silently.

        ``reliable=True`` models a TCP stream segment (as used by
        GossipSub in libp2p): retransmission hides Bernoulli loss, so
        the loss draw is skipped; dead endpoints still receive nothing.
        """
        sender = self._endpoints.get(src)
        if sender is None:
            raise ValueError(f"unknown sender {src}")
        if size <= 0:
            raise ValueError(f"datagram size must be positive, got {size}")
        dgram = Datagram(src, dst, payload, size, self.sim.now)
        self.datagrams_sent += 1
        for observer in self.on_send:
            observer(dgram)

        departure = sender.link.reserve_uplink(self.sim.now, size)
        receiver = self._endpoints.get(dst)
        if receiver is None or not receiver.alive or not sender.alive:
            self._drop(dgram, "dead")
            return
        if not reliable and self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self._drop(dgram, "loss")
            return
        extra_delays: tuple[float, ...] = (0.0,)
        if self.fault_filter is not None:
            extra_delays = self.fault_filter(dgram, reliable)
            if not extra_delays:
                self._drop(dgram, "fault")
                return
        arrival = departure + self.latency.one_way(sender.vertex, receiver.vertex)
        for copy_index, extra in enumerate(extra_delays):
            if copy_index:
                self.datagrams_duplicated += 1
            delivered_at = receiver.link.reserve_downlink(arrival + extra, size)
            self.sim.call_at(delivered_at, lambda: self._deliver(receiver, dgram))

    def _drop(self, dgram: Datagram, reason: str) -> None:
        """Account one lost datagram and notify drop observers."""
        self.datagrams_lost += 1
        for observer in self.on_drop:
            observer(dgram, reason)

    def _deliver(self, receiver: Endpoint, dgram: Datagram) -> None:
        if not receiver.alive:
            self._drop(dgram, "dead_late")
            return
        self.datagrams_delivered += 1
        for observer in self.on_deliver:
            observer(dgram)
        receiver.handler(dgram)
