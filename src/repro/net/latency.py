"""WAN latency models.

The paper emulates WAN conditions using an all-pair RTT trace measured
on IPFS [43]: 10,000 vertices, round-trip latencies from 8 ms to
438 ms with a 64 ms average. That trace is not redistributable, so we
substitute a synthetic planetary model (``ClusteredWanModel``) that
reproduces its summary statistics and qualitative structure:

- nodes live in geographic *clusters* (think regions/metros) laid out
  on a circle; inter-cluster propagation grows with arc distance;
- every vertex additionally has a heavy-tailed *access latency*
  (last-mile + NAT effects), which produces both the well-connected
  "cloud" vertices the paper places builders in and the 400+ ms tail;
- latencies are symmetric and deterministic given the seed.

Simpler models (constant / uniform) are provided for unit tests.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from typing import Protocol

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ClusteredWanModel",
]


class LatencyModel(Protocol):
    """One-way propagation latency between two topology vertices."""

    num_vertices: int

    def one_way(self, src: int, dst: int) -> float:
        """One-way latency in seconds between vertices ``src``, ``dst``."""
        ...

    def mean_one_way(self, vertex: int) -> float:
        """Average one-way latency from ``vertex`` to all others."""
        ...


class ConstantLatency:
    """Every pair of distinct vertices is ``latency`` seconds apart."""

    def __init__(self, latency: float = 0.02, num_vertices: int = 1024) -> None:
        self.latency = latency
        self.num_vertices = num_vertices

    def one_way(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.latency

    def mean_one_way(self, vertex: int) -> float:
        return self.latency


class UniformLatency:
    """Latency drawn uniformly per pair, deterministic and symmetric."""

    def __init__(
        self,
        low: float = 0.004,
        high: float = 0.1,
        num_vertices: int = 1024,
        seed: int = 0,
    ) -> None:
        if low > high:
            raise ValueError("low must not exceed high")
        self.low = low
        self.high = high
        self.num_vertices = num_vertices
        self.seed = seed

    def one_way(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        a, b = (src, dst) if src <= dst else (dst, src)
        rng = random.Random((self.seed << 40) ^ (a << 20) ^ b)
        return rng.uniform(self.low, self.high)

    def mean_one_way(self, vertex: int) -> float:
        return (self.low + self.high) / 2.0


class ClusteredWanModel:
    """Synthetic planetary-scale latency matrix (IPFS-trace stand-in).

    Parameters are fitted so the *round-trip* statistics approximate
    the trace used in the paper: min ~8 ms, mean ~64 ms, max ~438 ms.

    Geometry: ``num_clusters`` cluster centers spread on a circle of
    circumference ``max_propagation`` (one-way seconds). A vertex's
    one-way latency to another is::

        access(src) + propagation(arc distance) + access(dst)

    where ``access`` is lognormal (median ~2 ms, occasional 100+ ms
    stragglers) and propagation includes a small intra-cluster floor.
    """

    def __init__(
        self,
        num_vertices: int = 10_000,
        num_clusters: int = 24,
        seed: int = 0,
        access_median: float = 0.0020,
        access_sigma: float = 1.05,
        access_floor: float = 0.0015,
        access_cap: float = 0.085,
        intra_cluster_floor: float = 0.0012,
        max_propagation: float = 0.048,
        straggler_fraction: float = 0.004,
    ) -> None:
        if num_vertices < 1:
            raise ValueError("need at least one vertex")
        self.num_vertices = num_vertices
        self.num_clusters = num_clusters
        self.seed = seed
        self.intra_cluster_floor = intra_cluster_floor
        self.max_propagation = max_propagation

        rng = random.Random(seed)
        # Cluster positions on [0, 1) circle; weights make some regions
        # (big metros) denser than others, like real deployments.
        self._cluster_pos: list[float] = sorted(rng.random() for _ in range(num_clusters))
        weights = [rng.uniform(0.4, 1.0) ** 2 for _ in range(num_clusters)]
        self._vertex_cluster: list[int] = rng.choices(
            range(num_clusters), weights=weights, k=num_vertices
        )
        mu = math.log(access_median)
        self._access: list[float] = []
        for _ in range(num_vertices):
            if rng.random() < straggler_fraction:
                # satellite/NAT-relay stragglers produce the trace's
                # 400+ ms RTT tail
                self._access.append(rng.uniform(0.080, 0.170))
            else:
                self._access.append(
                    min(access_cap, max(access_floor, rng.lognormvariate(mu, access_sigma)))
                )
        self._mean_cache: list[float] | None = None

    # ------------------------------------------------------------------
    def _propagation(self, cluster_a: int, cluster_b: int) -> float:
        if cluster_a == cluster_b:
            return self.intra_cluster_floor
        pos_a = self._cluster_pos[cluster_a]
        pos_b = self._cluster_pos[cluster_b]
        arc = abs(pos_a - pos_b)
        arc = min(arc, 1.0 - arc)  # shorter way around the circle
        return self.intra_cluster_floor + 2.0 * arc * self.max_propagation

    def one_way(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return (
            self._access[src]
            + self._propagation(self._vertex_cluster[src], self._vertex_cluster[dst])
            + self._access[dst]
        )

    def access_latency(self, vertex: int) -> float:
        """The vertex's last-mile component (used for placement logic)."""
        return self._access[vertex]

    def mean_one_way(self, vertex: int) -> float:
        """Mean one-way latency from ``vertex``; O(clusters) per call."""
        if self._mean_cache is None:
            # mean propagation from each cluster weighted by population
            counts = [0] * self.num_clusters
            for c in self._vertex_cluster:
                counts[c] += 1
            total = sum(self._access)
            self._cluster_mean_prop = []
            for a in range(self.num_clusters):
                acc = 0.0
                for b in range(self.num_clusters):
                    acc += counts[b] * self._propagation(a, b)
                self._cluster_mean_prop.append(acc / self.num_vertices)
            self._mean_access = total / self.num_vertices
            self._mean_cache = [
                self._access[v]
                + self._cluster_mean_prop[self._vertex_cluster[v]]
                + self._mean_access
                for v in range(self.num_vertices)
            ]
        return self._mean_cache[vertex]

    # ------------------------------------------------------------------
    def rtt_sample(self, pairs: int = 20_000, seed: int = 1) -> list[float]:
        """Round-trip latencies over random vertex pairs (for validation)."""
        rng = random.Random(seed)
        samples = []
        for _ in range(pairs):
            a = rng.randrange(self.num_vertices)
            b = rng.randrange(self.num_vertices)
            if a == b:
                continue
            samples.append(2.0 * self.one_way(a, b))
        return samples

    def best_connected(self, fraction: float = 0.2) -> Sequence[int]:
        """Vertices in the best ``fraction`` by mean latency to all others.

        The paper places the builder on a vertex randomly selected
        among the 20% with the best average latency ("likely deployed
        in a cloud").
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        order = sorted(range(self.num_vertices), key=self.mean_one_way)
        count = max(1, int(self.num_vertices * fraction))
        return order[:count]
