"""Network substrate: latency models, shaped links, lossy UDP transport."""

from repro.net.latency import ClusteredWanModel, ConstantLatency, LatencyModel, UniformLatency
from repro.net.link import AccessLink, gbps, mbps
from repro.net.topology import (
    DEFAULT_BUILDER_PROFILE,
    DEFAULT_NODE_PROFILE,
    NodeProfile,
    Topology,
)
from repro.net.transport import DEFAULT_LOSS_RATE, Datagram, Endpoint, Network

__all__ = [
    "ClusteredWanModel",
    "ConstantLatency",
    "LatencyModel",
    "UniformLatency",
    "AccessLink",
    "gbps",
    "mbps",
    "DEFAULT_BUILDER_PROFILE",
    "DEFAULT_NODE_PROFILE",
    "NodeProfile",
    "Topology",
    "DEFAULT_LOSS_RATE",
    "Datagram",
    "Endpoint",
    "Network",
]
