"""Distribution helpers and terminal rendering for experiment reports."""

from repro.analysis.plotting import ascii_bars, ascii_cdf
from repro.analysis.stats import Distribution, percentile, summarize

__all__ = ["ascii_bars", "ascii_cdf", "Distribution", "percentile", "summarize"]
