"""Terminal rendering of distributions (the paper's CDF figures).

The evaluation figures are CDFs of per-node completion times; the
benchmark harness renders the same curves as ASCII so the shape —
steps, tails, crossovers between series — is visible directly in
``bench_output.txt`` without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.stats import Distribution

__all__ = ["ascii_cdf", "ascii_bars"]

_MARKERS = "*o+x#@%&"


def ascii_cdf(
    series: dict[str, Distribution],
    width: int = 64,
    height: int = 16,
    x_max: float | None = None,
    deadline: float | None = None,
    x_label: str = "seconds",
) -> str:
    """Render one or more CDFs on a shared text canvas.

    The y-axis is the fraction of the *population* (misses keep a
    curve below 1.0 — exactly how the paper plots deadline failures).
    An optional vertical line marks the deadline.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("canvas too small")

    populated = {name: dist for name, dist in series.items() if dist.count > 0}
    if not populated:
        return "(all series empty)"
    if x_max is None:
        finite_maxima = [
            dist.values[-1] for dist in populated.values() if dist.values
        ]
        x_max = max(finite_maxima) if finite_maxima else 1.0
        if deadline is not None:
            x_max = max(x_max, deadline * 1.05)
    if x_max <= 0:
        x_max = 1.0

    canvas = [[" "] * width for _ in range(height)]

    # deadline marker
    if deadline is not None and deadline <= x_max:
        col = min(width - 1, int(deadline / x_max * (width - 1)))
        for row in range(height):
            canvas[row][col] = "|"

    for index, (name, dist) in enumerate(populated.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        if not dist.values:
            continue
        for col in range(width):
            # evaluate at the column's right edge so the final column
            # reaches x_max and completed series touch 1.0
            x = (col + 1) / width * x_max
            fraction = dist.fraction_within(x)
            if fraction <= 0:
                continue
            row = height - 1 - min(height - 1, int(fraction * (height - 1) + 1e-9))
            canvas[row][col] = marker

    lines: list[str] = []
    for row in range(height):
        fraction = 1.0 - row / (height - 1)
        prefix = f"{fraction:4.2f} " if row % 3 == 0 or row == height - 1 else "     "
        lines.append(prefix + "".join(canvas[row]))
    axis = "     " + "-" * width
    ticks = (
        f"     0{'':{width - 12}}{x_max:.2f} {x_label}"
        if width > 20
        else f"     0..{x_max:.2f}"
    )
    legend = "     " + "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(populated)
    )
    if deadline is not None:
        legend += f"   | deadline {deadline:g}s"
    return "\n".join(lines + [axis, ticks, legend])


def ascii_bars(
    rows: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart for scalar comparisons (egress, messages)."""
    if not rows:
        raise ValueError("nothing to plot")
    peak = max(value for _name, value in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(name) for name, _ in rows)
    lines = []
    for name, value in rows:
        bar = "#" * max(1, int(value / peak * width)) if value > 0 else ""
        lines.append(f"{name:<{label_width}} {bar} {value:g}{unit}")
    return "\n".join(lines)
