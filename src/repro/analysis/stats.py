"""Distribution helpers: CDFs, percentiles, deadline statistics.

The evaluation section reports results as CDFs over nodes ("fraction
of nodes" vs time), P99/median/max values, and deadline-completion
fractions. These helpers centralize that arithmetic, treating ``None``
entries (phases that never completed in the simulated window) as
misses rather than dropping them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

__all__ = ["percentile", "Distribution", "summarize"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values, q in [0, 100]."""
    if not sorted_values:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


@dataclass
class Distribution:
    """A sample of completion values, possibly with misses (None)."""

    values: list[float]
    misses: int = 0

    @staticmethod
    def from_optional(samples: Iterable[float | None]) -> Distribution:
        values: list[float] = []
        misses = 0
        for sample in samples:
            if sample is None:
                misses += 1
            else:
                values.append(sample)
        values.sort()
        return Distribution(values, misses)

    @property
    def count(self) -> int:
        return len(self.values) + self.misses

    @property
    def mean(self) -> float:
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    @property
    def median(self) -> float:
        return self.quantile(50.0)

    @property
    def p99(self) -> float:
        return self.quantile(99.0)

    @property
    def max(self) -> float:
        return self.values[-1] if self.values else math.nan

    @property
    def min(self) -> float:
        return self.values[0] if self.values else math.nan

    def quantile(self, q: float) -> float:
        """Percentile over the *full* population; misses count as +inf."""
        if not self.values and self.misses == 0:
            return math.nan
        rank = q / 100.0 * self.count
        if rank > len(self.values):
            return math.inf
        if not self.values:
            return math.inf
        return percentile(self.values, min(100.0, 100.0 * rank / len(self.values)))

    def fraction_within(self, deadline: float) -> float:
        """Fraction of the population completing by ``deadline``."""
        if self.count == 0:
            return math.nan
        within = sum(1 for value in self.values if value <= deadline)
        return within / self.count

    def cdf(self, points: int = 100) -> list[tuple[float, float]]:
        """(time, cumulative fraction of population) pairs for plotting."""
        if not self.values:
            return []
        step = max(1, len(self.values) // points)
        series = [
            (self.values[i], (i + 1) / self.count)
            for i in range(0, len(self.values), step)
        ]
        if series[-1][0] != self.values[-1]:
            series.append((self.values[-1], len(self.values) / self.count))
        return series


def summarize(dist: Distribution, deadline: float | None = None) -> str:
    """One-line human summary used by the bench harness output."""
    if dist.count == 0:
        return "no samples"
    parts = [
        f"n={dist.count}",
        f"median={dist.median * 1e3:.0f}ms",
        f"p99={dist.p99 * 1e3:.0f}ms" if dist.p99 != math.inf else "p99=miss",
        f"max={dist.max * 1e3:.0f}ms" if dist.values else "max=miss",
    ]
    if deadline is not None:
        parts.append(f"within {deadline:.0f}s: {100 * dist.fraction_within(deadline):.1f}%")
    return " ".join(parts)
