"""``python -m repro.analysis`` runs reprolint (see reprolint/cli.py)."""

from repro.analysis.reprolint.cli import main

if __name__ == "__main__":
    main()
