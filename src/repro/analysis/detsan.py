"""DetSan: a runtime determinism sanitizer for simulation scenarios.

reprolint proves properties of the *text*; DetSan tests the *process*.
It runs a scenario several times under perturbed-but-contract-legal
conditions and demands that every run lands on the identical metrics
fingerprint:

- **hash-seed sweep** — each run in a fresh subprocess with a
  different ``PYTHONHASHSEED``, the exact perturbation that turns any
  surviving set-order dependence into observable divergence;
- **scheduler swap** — ``queue="heap"`` vs ``queue="calendar"``: both
  event-queue backends are contractually bit-identical;
- **delivery swap** — ``delivery="per-datagram"`` vs ``"batched"``:
  transport delivery scheduling must not be protocol behaviour;
- **telemetry toggle** — observation must never perturb the observed.

Every run also records a structured trace
(:class:`repro.obs.events.TraceRecorder` → JSONL), so a fingerprint
mismatch is reported as a *first-divergence event diff* — the index
and both versions of the first event where the runs disagree — instead
of just two hashes.

CLI::

    repro detsan                         # both scenarios, default matrix
    repro detsan --scenario pandas-100 --hash-seeds 0,1,2
    python -m repro.analysis.detsan --json

Exit status: 0 when every fingerprint matches, 1 on divergence,
2 on usage errors. The module doubles as its own subprocess worker
(``--worker``): the parent re-invokes ``sys.executable -m
repro.analysis.detsan --worker ...`` with ``PYTHONHASHSEED`` pinned in
the child environment, because the hash seed is frozen at interpreter
start and cannot be changed in-process.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "DetSanReport",
    "Divergence",
    "RunResult",
    "SCENARIOS",
    "Variant",
    "default_variants",
    "diff_traces",
    "run",
    "run_scenario_once",
]

DEFAULT_HASH_SEEDS = (0, 1, 2)


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------
def _run_pandas_100(queue: str, delivery: str, telemetry: bool, trace_path: str | None):
    """The PR-5 acceptance scenario: 100 nodes, loss + crashes + a partition."""
    from repro.core.seeding import RedundantSeeding
    from repro.experiments.scenario import Scenario, ScenarioConfig
    from repro.faults.plan import CrashWindow, FaultPlan, PartitionWindow
    from repro.params import PandasParams

    tracer, sink = _make_tracer(trace_path)
    config = ScenarioConfig(
        num_nodes=100,
        params=PandasParams(
            base_rows=16, base_cols=16, custody_rows=2, custody_cols=2, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=11,
        slots=1,
        num_vertices=1000,
        faults=FaultPlan(
            loss=0.05,
            crashes=(CrashWindow(crash_at=1.0, restart_at=2.0, count=2),),
            partitions=(PartitionWindow(start=1.0, duration=0.5, fraction=0.2),),
        ),
        check_invariants=True,
        queue=queue,
        delivery=delivery,
        telemetry=_make_telemetry(telemetry),
        tracer=tracer,
    )
    scenario = Scenario(config).run()
    _close_sink(sink)
    return scenario.metrics.fingerprint(), scenario.sim.events_processed


def _run_pipeline_3(queue: str, delivery: str, telemetry: bool, trace_path: str | None):
    """A 3-slot sustained pipeline with churn (the PR-7 subsystem)."""
    from repro.core.seeding import RedundantSeeding
    from repro.experiments.pipeline import PipelineScenario
    from repro.experiments.scenario import ScenarioConfig
    from repro.params import PandasParams

    tracer, sink = _make_tracer(trace_path)
    config = ScenarioConfig(
        num_nodes=60,
        params=PandasParams.reduced(32),
        policy=RedundantSeeding(4),
        seed=7,
        slots=3,
        num_vertices=600,
        queue=queue,
        delivery=delivery,
        telemetry=_make_telemetry(telemetry),
        tracer=tracer,
    )
    scenario = PipelineScenario(config, churn_fraction=0.1).run()
    _close_sink(sink)
    return scenario.metrics.fingerprint(), scenario.sim.events_processed


SCENARIOS: dict[str, Callable[..., tuple[str, int]]] = {
    "pandas-100": _run_pandas_100,
    "pipeline-3": _run_pipeline_3,
}


def _make_telemetry(enabled: bool):
    if not enabled:
        return None
    from repro.obs.telemetry import Telemetry

    return Telemetry()


def _make_tracer(trace_path: str | None):
    if trace_path is None:
        return None, None
    from repro.obs.events import TraceRecorder
    from repro.obs.sinks import JsonlSink

    sink = JsonlSink(trace_path)
    # capacity=1: the JSONL sink sees every event in order; the
    # in-memory tail is irrelevant here and would double peak RSS
    return TraceRecorder(capacity=1, sinks=(sink,)), sink


def _close_sink(sink) -> None:
    if sink is not None:
        sink.close()


# ----------------------------------------------------------------------
# perturbation matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Variant:
    """One perturbed-but-contract-legal run configuration."""

    name: str
    queue: str = "calendar"
    delivery: str = "batched"
    telemetry: bool = False
    hash_seed: int = 0

    @property
    def label(self) -> str:
        return f"{self.name}/hashseed={self.hash_seed}"


def default_variants(hash_seeds: tuple[int, ...] = DEFAULT_HASH_SEEDS) -> list[Variant]:
    """Hash-seed sweep of the baseline, plus one swap per knob."""
    seeds = hash_seeds or DEFAULT_HASH_SEEDS
    variants = [Variant(name="baseline", hash_seed=s) for s in seeds]
    first = seeds[0]
    variants += [
        Variant(name="heap-queue", queue="heap", hash_seed=first),
        Variant(name="per-datagram", delivery="per-datagram", hash_seed=first),
        Variant(name="telemetry-on", telemetry=True, hash_seed=first),
    ]
    return variants


@dataclass
class RunResult:
    variant: Variant
    fingerprint: str
    events_processed: int
    trace_path: str


@dataclass
class Divergence:
    """A fingerprint mismatch, pinpointed to its first differing event."""

    scenario: str
    baseline: RunResult
    deviant: RunResult
    event_index: int | None = None
    baseline_event: dict[str, Any] | None = None
    deviant_event: dict[str, Any] | None = None

    def describe(self) -> str:
        lines = [
            f"{self.scenario}: fingerprint diverged under {self.deviant.variant.label}",
            f"  baseline {self.baseline.variant.label}: "
            f"{self.baseline.fingerprint} ({self.baseline.events_processed} events)",
            f"  deviant  {self.deviant.variant.label}: "
            f"{self.deviant.fingerprint} ({self.deviant.events_processed} events)",
        ]
        if self.event_index is not None:
            lines.append(f"  first divergence at trace event #{self.event_index}:")
            lines.append(f"    baseline: {json.dumps(self.baseline_event, sort_keys=True)}")
            lines.append(f"    deviant:  {json.dumps(self.deviant_event, sort_keys=True)}")
        else:
            lines.append("  traces are identical (divergence is outside traced events)")
        return "\n".join(lines)


@dataclass
class DetSanReport:
    """All runs plus any divergences, for --json output."""

    scenarios: dict[str, list[RunResult]] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "scenarios": {
                name: [
                    {
                        "variant": r.variant.label,
                        "fingerprint": r.fingerprint,
                        "events_processed": r.events_processed,
                    }
                    for r in runs
                ]
                for name, runs in self.scenarios.items()
            },
            "divergences": [d.describe() for d in self.divergences],
        }


# ----------------------------------------------------------------------
# first-divergence diff
# ----------------------------------------------------------------------
def diff_traces(
    baseline_path: str, deviant_path: str
) -> tuple[int, dict[str, Any], dict[str, Any]] | None:
    """(index, baseline event, deviant event) of the first difference.

    Streams both JSONL files in lockstep; returns None when they are
    identical (the divergence then lies outside traced events — e.g.
    a metric with no trace mirror).
    """
    sentinel = {"kind": "<end of trace>"}
    with open(baseline_path, encoding="utf-8") as fa, open(
        deviant_path, encoding="utf-8"
    ) as fb:
        for index, (line_a, line_b) in enumerate(_zip_longest_lines(fa, fb)):
            event_a = json.loads(line_a) if line_a is not None else sentinel
            event_b = json.loads(line_b) if line_b is not None else sentinel
            if event_a != event_b:
                return index, event_a, event_b
    return None


def _zip_longest_lines(fa, fb):
    while True:
        line_a = fa.readline()
        line_b = fb.readline()
        if not line_a and not line_b:
            return
        yield (line_a or None), (line_b or None)


# ----------------------------------------------------------------------
# subprocess worker protocol
# ----------------------------------------------------------------------
def _worker_main(args: argparse.Namespace) -> int:
    """Child-process entry: run one variant, print a JSON result line."""
    runner = SCENARIOS[args.scenario]
    fingerprint, events = runner(
        queue=args.queue,
        delivery=args.delivery,
        telemetry=bool(args.telemetry),
        trace_path=args.trace_out or None,
    )
    json.dump({"fingerprint": fingerprint, "events_processed": events}, sys.stdout)
    sys.stdout.write("\n")
    return 0


def _spawn(scenario: str, variant: Variant, trace_path: str) -> RunResult:
    """Run one variant in a subprocess with its hash seed pinned."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(variant.hash_seed)
    # the child must resolve `repro` exactly as this process does
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.analysis.detsan",
        "--worker",
        "--scenario",
        scenario,
        "--queue",
        variant.queue,
        "--delivery",
        variant.delivery,
        "--telemetry",
        "1" if variant.telemetry else "0",
        "--trace-out",
        trace_path,
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(
            f"detsan worker failed for {scenario} [{variant.label}] "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
        )
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    return RunResult(
        variant=variant,
        fingerprint=payload["fingerprint"],
        events_processed=payload["events_processed"],
        trace_path=trace_path,
    )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def run_scenario_once(
    scenario: str,
    variant: Variant,
    trace_dir: str,
    index: int,
) -> RunResult:
    trace_path = os.path.join(trace_dir, f"{scenario}-{index}.jsonl")
    return _spawn(scenario, variant, trace_path)


def _check_scenario(
    scenario: str,
    variants: list[Variant],
    trace_dir: str,
    report: DetSanReport,
    echo: Callable[[str], None],
) -> None:
    runs: list[RunResult] = []
    for index, variant in enumerate(variants):
        result = run_scenario_once(scenario, variant, trace_dir, index)
        runs.append(result)
        echo(
            f"  {variant.label:<28} fingerprint={result.fingerprint} "
            f"events={result.events_processed}"
        )
    report.scenarios[scenario] = runs
    baseline = runs[0]
    for deviant in runs[1:]:
        if deviant.fingerprint == baseline.fingerprint:
            continue
        divergence = Divergence(scenario=scenario, baseline=baseline, deviant=deviant)
        located = diff_traces(baseline.trace_path, deviant.trace_path)
        if located is not None:
            divergence.event_index, divergence.baseline_event, divergence.deviant_event = located
        report.divergences.append(divergence)


def _parse_hash_seeds(text: str) -> tuple[int, ...]:
    try:
        seeds = tuple(int(part) for part in text.split(",") if part.strip() != "")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad hash-seed list {text!r}") from exc
    if not seeds:
        raise argparse.ArgumentTypeError("at least one hash seed is required")
    return seeds


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro detsan",
        description=(
            "Run scenarios under perturbed-but-contract-legal conditions "
            "(PYTHONHASHSEED sweep, heap-vs-calendar scheduler, batched-vs-"
            "per-datagram delivery, telemetry on/off) and fail with a "
            "first-divergence event diff if any metrics fingerprint moves."
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to sanitize (repeatable; default: all)",
    )
    parser.add_argument(
        "--hash-seeds",
        type=_parse_hash_seeds,
        default=DEFAULT_HASH_SEEDS,
        metavar="S0,S1,...",
        help="comma-separated PYTHONHASHSEED values (default: 0,1,2)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument(
        "--keep-traces",
        metavar="DIR",
        default=None,
        help="write per-run JSONL traces under DIR instead of a temp dir",
    )
    # worker protocol (internal)
    parser.add_argument("--worker", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--queue", default="calendar", help=argparse.SUPPRESS)
    parser.add_argument("--delivery", default="batched", help=argparse.SUPPRESS)
    parser.add_argument("--telemetry", type=int, default=0, help=argparse.SUPPRESS)
    parser.add_argument("--trace-out", default=None, help=argparse.SUPPRESS)
    return parser


def run(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.worker:
        if not args.scenario or len(args.scenario) != 1:
            parser.error("--worker requires exactly one --scenario")
        args.scenario = args.scenario[0]
        return _worker_main(args)

    scenarios = args.scenario or sorted(SCENARIOS)
    variants = default_variants(args.hash_seeds)
    report = DetSanReport()
    echo = (lambda _line: None) if args.json else print

    def sweep(trace_dir: str) -> None:
        for scenario in scenarios:
            echo(f"detsan: {scenario} ({len(variants)} runs)")
            _check_scenario(scenario, variants, trace_dir, report, echo)

    if args.keep_traces is not None:
        os.makedirs(args.keep_traces, exist_ok=True)
        sweep(args.keep_traces)
    else:
        with tempfile.TemporaryDirectory(prefix="detsan-") as trace_dir:
            sweep(trace_dir)

    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif report.ok:
        total = sum(len(runs) for runs in report.scenarios.values())
        print(f"detsan: OK — {total} run(s), all fingerprints identical")
    else:
        for divergence in report.divergences:
            print(divergence.describe(), file=sys.stderr)
        print(
            f"detsan: FAIL — {len(report.divergences)} divergence(s)",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(run())
