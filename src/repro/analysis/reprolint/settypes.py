"""Lightweight set-typed-expression inference for RL003.

RL003 must answer "does this ``for`` loop iterate a ``set`` (hash
order) or a dict view?" — but the iterable is rarely a literal; it is
``self._mesh.get(key, ())`` or a parameter annotated ``Set[int]``. A
full type checker is out of scope, so this module infers just enough:

- **annotations** — ``self.queried: Set[int]`` in ``__init__``,
  class-level ``targets: set[int]``, function parameters and return
  annotations contribute a name -> kind map (keyed by the *terminal*
  identifier: ``self.queried`` and ``queried`` share an entry, a
  deliberate file-local approximation);
- **construction** — set literals/comprehensions, ``set()`` /
  ``frozenset()`` calls, and set operators (``&``, ``|``, ``-``,
  ``^``) and methods (``intersection`` …) over set-typed operands;
- **containers** — ``Dict[K, Set[V]]`` annotations make ``d[k]`` and
  ``d.get(k, …)`` set-typed, and ``d.keys()/.values()/.items()``
  dict views;
- **local flow** — ``x = <set-typed expr>`` marks ``x`` for the rest
  of the file (single forward pass, no reassignment tracking).

The inference is deliberately conservative in what it *claims* (kinds
it cannot prove are UNKNOWN, producing no finding) and approximate in
scoping; the fixture suite pins both directions.
"""

from __future__ import annotations

import ast
from enum import Enum

__all__ = ["ExprKind", "SetTypeInferencer"]


class ExprKind(Enum):
    UNKNOWN = "unknown"
    SET = "set"
    DICT = "dict"
    DICT_OF_SET = "dict_of_set"
    DICT_VIEW = "dict_view"
    ORDERED = "ordered"  # lists, tuples, sorted() results


_SET_NAMES = {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
_DICT_NAMES = {
    "dict",
    "Dict",
    "defaultdict",
    "DefaultDict",
    "Mapping",
    "MutableMapping",
    "OrderedDict",
    "Counter",
}
_SET_RETURNING_METHODS = {
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
    "copy",
}
_VIEW_METHODS = {"keys", "values", "items"}
_ORDERING_CALLS = {"sorted", "list", "tuple"}


def _annotation_kind(node: ast.AST | None) -> ExprKind:
    """Kind named by a type annotation expression."""
    if node is None:
        return ExprKind.UNKNOWN
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ExprKind.UNKNOWN
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # Optional via PEP 604: X | None -> kind of X
        left = _annotation_kind(node.left)
        return left if left is not ExprKind.UNKNOWN else _annotation_kind(node.right)
    if isinstance(node, ast.Subscript):
        base = _terminal_name(node.value)
        if base == "Optional":
            return _annotation_kind(node.slice)
        if base in _SET_NAMES:
            return ExprKind.SET
        if base in _DICT_NAMES:
            args = node.slice
            if isinstance(args, ast.Tuple) and len(args.elts) == 2:
                if _annotation_kind(args.elts[1]) is ExprKind.SET:
                    return ExprKind.DICT_OF_SET
            return ExprKind.DICT
        return ExprKind.UNKNOWN
    base = _terminal_name(node)
    if base in _SET_NAMES:
        return ExprKind.SET
    if base in _DICT_NAMES:
        return ExprKind.DICT
    return ExprKind.UNKNOWN


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class SetTypeInferencer:
    """File-scoped set/dict kind lookup (see module docstring)."""

    def __init__(self, tree: ast.AST) -> None:
        self._names: dict[str, ExprKind] = {}
        self._collect_annotations(tree)
        self._collect_assignments(tree)

    # -- gathering ------------------------------------------------------
    def _note(self, name: str | None, kind: ExprKind) -> None:
        if name and kind is not ExprKind.UNKNOWN:
            # first annotation wins: ctor annotations are the contract
            self._names.setdefault(name, kind)

    def _collect_annotations(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                self._note(_terminal_name(node.target), _annotation_kind(node.annotation))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    self._note(arg.arg, _annotation_kind(arg.annotation))

    def _collect_assignments(self, tree: ast.AST) -> None:
        # one forward pass: later reads see kinds of earlier assignments
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                kind = self.kind(node.value)
                self._note(_terminal_name(node.targets[0]), kind)

    # -- queries --------------------------------------------------------
    def kind(self, node: ast.AST) -> ExprKind:
        """Best-effort kind of an arbitrary expression."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return ExprKind.SET
        if isinstance(node, ast.DictComp):
            return ExprKind.DICT
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _terminal_name(node)
            return self._names.get(name or "", ExprKind.UNKNOWN)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            if ExprKind.SET in (self.kind(node.left), self.kind(node.right)):
                return ExprKind.SET
            return ExprKind.UNKNOWN
        if isinstance(node, ast.Subscript):
            if self.kind(node.value) is ExprKind.DICT_OF_SET:
                return ExprKind.SET
            return ExprKind.UNKNOWN
        if isinstance(node, ast.IfExp):
            body = self.kind(node.body)
            return body if body is not ExprKind.UNKNOWN else self.kind(node.orelse)
        if isinstance(node, ast.Call):
            return self._call_kind(node)
        return ExprKind.UNKNOWN

    def _call_kind(self, node: ast.Call) -> ExprKind:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in {"set", "frozenset"}:
                return ExprKind.SET
            if func.id in _ORDERING_CALLS:
                return ExprKind.ORDERED
            if func.id == "dict":
                return ExprKind.DICT
            return ExprKind.UNKNOWN
        if isinstance(func, ast.Attribute):
            receiver = self.kind(func.value)
            if func.attr in _VIEW_METHODS and receiver in (
                ExprKind.DICT,
                ExprKind.DICT_OF_SET,
            ):
                if func.attr == "values" and receiver is ExprKind.DICT_OF_SET:
                    return ExprKind.DICT_VIEW  # view of sets, still a view
                return ExprKind.DICT_VIEW
            if func.attr == "get" and receiver is ExprKind.DICT_OF_SET:
                return ExprKind.SET
            if func.attr == "setdefault" and receiver is ExprKind.DICT_OF_SET:
                return ExprKind.SET
            if func.attr in _SET_RETURNING_METHODS and receiver is ExprKind.SET:
                return ExprKind.SET
        return ExprKind.UNKNOWN
