"""Rendering lint results for humans and machines."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.reprolint.engine import Finding, all_rule_classes

__all__ = ["active", "render_human", "render_json", "render_rule_catalog", "summary_line"]


def active(findings: Sequence[Finding]) -> list[Finding]:
    """Findings that gate the exit code (i.e. not suppressed)."""
    return [f for f in findings if not f.suppressed]


def summary_line(findings: Sequence[Finding], files: int) -> str:
    gating = active(findings)
    suppressed = len(findings) - len(gating)
    per_rule: dict[str, int] = {}
    for finding in gating:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    breakdown = (
        " (" + ", ".join(f"{code}={n}" for code, n in sorted(per_rule.items())) + ")"
        if per_rule
        else ""
    )
    return (
        f"reprolint: {len(gating)} finding(s){breakdown}, "
        f"{suppressed} suppressed, {files} file(s) checked"
    )


def render_human(
    findings: Sequence[Finding], files: int, show_suppressed: bool = False
) -> str:
    lines = [
        f.format()
        for f in findings
        if show_suppressed or not f.suppressed
    ]
    lines.append(summary_line(findings, files))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files: int) -> str:
    gating = active(findings)
    payload = {
        "findings": [f.to_dict() for f in gating],
        "suppressed": [f.to_dict() for f in findings if f.suppressed],
        "files_checked": files,
        "exit_code": 1 if gating else 0,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The ``--list-rules`` table: code, name, first rationale line.

    Generated from the registries (per-file *and* whole-program), so a
    newly registered rule appears here without touching any docs.
    """
    rows = []
    for code, rule_cls in sorted(all_rule_classes().items()):
        doc = (rule_cls.__doc__ or "").strip().splitlines()
        headline = doc[0] if doc else rule_cls.rationale
        rows.append(f"{code}  {rule_cls.name:<24} {headline}")
    return "\n".join(rows)
