"""Project-wide symbol table and call graph for interprocedural rules.

The per-file rules (RL001-RL006) see one module at a time; that is
exactly the blind spot PR 4's retrospective identified: a set iterated
in ``core/assignment.py`` that flows through a helper into a
``transport.send`` in another module never puts both the source and
the sink in front of the same rule. This module supplies the missing
whole-program view:

- a **symbol table** of every function and method across the linted
  file set, keyed by dotted qualname (``repro.core.node.PandasNode.
  _sample``), with per-module import maps so call targets resolve
  through aliases exactly like the per-file rules do;
- a **call graph** with tiered resolution: module-local names, then
  imported dotted paths, then same-class method calls via ``self.``/
  ``cls.``, and finally — for attribute calls whose receiver type is
  unknown — a by-method-name over-approximation that the dataflow
  layer uses for taint *propagation only* (an unresolvable call must
  not silently launder a tainted value).

Module names are derived from the /-relative path handed to the
linter (``src/repro/core/node.py`` -> ``repro.core.node``), so the
same source tree resolves identically whether linted from the repo
root or from ``src/``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.reprolint.engine import ImportMap, ProgramFile

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "build_call_graph",
    "module_name_for",
]


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a /-relative ``.py`` path.

    A leading ``src`` segment and a trailing ``__init__`` are dropped
    so that ``src/repro/core/__init__.py`` and ``repro/core/__init__.py``
    both name ``repro.core``.
    """
    parts = rel_path[:-3].split("/") if rel_path.endswith(".py") else rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method in the linted program."""

    qualname: str  # module.Class.name or module.name
    name: str
    module: str
    rel_path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    params: tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def display(self) -> str:
        """Short human form used in finding paths: ``Class.name`` or ``name``."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ModuleInfo:
    """One parsed module plus its resolution services."""

    name: str
    rel_path: str
    tree: ast.Module
    imports: ImportMap
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # by local qualname
    # class name -> (method name -> FunctionInfo)
    classes: dict[str, dict[str, FunctionInfo]] = field(default_factory=dict)
    # class name -> base-class terminal names (for project-local MRO walks)
    bases: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in [*args.posonlyargs, *args.args]]
    return tuple(names)


def _collect_module(pfile: ProgramFile) -> ModuleInfo:
    module = module_name_for(pfile.rel_path)
    info = ModuleInfo(
        name=module,
        rel_path=pfile.rel_path,
        tree=pfile.tree,
        imports=ImportMap(pfile.tree),
    )

    def visit(body: list[ast.stmt], class_name: str | None, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = f"{prefix}{stmt.name}"
                fn = FunctionInfo(
                    qualname=f"{module}.{local}" if module else local,
                    name=stmt.name,
                    module=module,
                    rel_path=pfile.rel_path,
                    node=stmt,
                    class_name=class_name,
                    params=_params_of(stmt),
                )
                info.functions[local] = fn
                if class_name is not None:
                    info.classes.setdefault(class_name, {})[stmt.name] = fn
                # nested defs are visible for completeness but resolve
                # only by exact qualname (no by-name fallback for them)
                visit(stmt.body, class_name, f"{local}.")
            elif isinstance(stmt, ast.ClassDef):
                info.classes.setdefault(stmt.name, {})
                base_names = []
                for base in stmt.bases:
                    terminal = base.attr if isinstance(base, ast.Attribute) else (
                        base.id if isinstance(base, ast.Name) else None
                    )
                    if terminal:
                        base_names.append(terminal)
                info.bases[stmt.name] = tuple(base_names)
                visit(stmt.body, stmt.name, f"{stmt.name}.")

    visit(pfile.tree.body, None, "")
    return info


class CallGraph:
    """Symbol table plus call-target resolution over one program."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self.by_module: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: dict[str, FunctionInfo] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._module_level_by_name: dict[str, list[FunctionInfo]] = {}
        for mod in modules:
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
                bucket = (
                    self._methods_by_name if fn.is_method else self._module_level_by_name
                )
                bucket.setdefault(fn.name, []).append(fn)

    # -- resolution -----------------------------------------------------
    def resolve_exact(
        self, call: ast.Call, caller: FunctionInfo
    ) -> tuple[FunctionInfo, ...]:
        """Callees resolvable with confidence (no by-name fallback)."""
        mod = self.by_module.get(caller.module)
        func = call.func
        if mod is None:
            return ()
        if isinstance(func, ast.Name):
            # local module function (incl. same-class bare call after
            # ``meth = self.meth`` style is out of scope)
            local = mod.functions.get(func.id)
            if local is not None and local.class_name is None:
                return (local,)
            dotted = mod.imports.resolve(func)
            if dotted and dotted != func.id:
                hit = self.functions.get(dotted)
                if hit is not None:
                    return (hit,)
            return ()
        if isinstance(func, ast.Attribute):
            # fully dotted: imported_module.helper(...) or package path
            dotted = mod.imports.resolve(func)
            if dotted:
                hit = self.functions.get(dotted)
                if hit is not None:
                    return (hit,)
            # self.meth(...) / cls.meth(...): search the class, then
            # project-local bases (single level of the textual MRO)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and caller.class_name is not None
            ):
                seen: list[FunctionInfo] = []
                stack = [(mod, caller.class_name)]
                visited: set[tuple[str, str]] = set()
                while stack:
                    owner_mod, cls = stack.pop()
                    if (owner_mod.name, cls) in visited:
                        continue
                    visited.add((owner_mod.name, cls))
                    hit = owner_mod.classes.get(cls, {}).get(func.attr)
                    if hit is not None:
                        seen.append(hit)
                        continue
                    for base in owner_mod.bases.get(cls, ()):
                        for candidate in self.modules:
                            if base in candidate.classes:
                                stack.append((candidate, base))
                return tuple(seen)
        return ()

    def resolve_by_method_name(self, call: ast.Call) -> tuple[FunctionInfo, ...]:
        """Over-approximate candidates for ``obj.meth(...)`` calls.

        Used by the dataflow layer for taint propagation only: every
        project method named ``meth``. Deliberately excludes dunder
        and test helpers to bound the fan-out.
        """
        func = call.func
        if not isinstance(func, ast.Attribute):
            return ()
        if func.attr.startswith("__"):
            return ()
        return tuple(self._methods_by_name.get(func.attr, ()))

    def iter_calls(
        self, fn: FunctionInfo
    ) -> list[ast.Call]:
        """Every call expression lexically inside ``fn`` (not nested defs)."""
        calls: list[ast.Call] = []
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return calls


def build_call_graph(files: list[ProgramFile]) -> CallGraph:
    """Symbol table + call graph over the given parsed files."""
    return CallGraph([_collect_module(f) for f in files])
