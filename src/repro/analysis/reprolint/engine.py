"""The reprolint rule engine.

``reprolint`` is this repository's own static-analysis pass: it encodes
the determinism and protocol invariants that make seeded runs
bit-identical (ROADMAP "Tier-1 verify", tests/test_determinism.py) as
machine-checkable rules over the Python AST.

The engine is deliberately small:

- a **registry** of :class:`Rule` subclasses keyed by code (``RL001``);
- a single-pass **dispatching walker** — the tree is traversed once per
  file and each node is offered to every rule that declared interest in
  its type, so adding rules does not multiply traversal cost;
- a second registry of :class:`ProgramRule` subclasses that run once
  over the *whole* linted file set (parsed into a :class:`Program`)
  instead of per file — the interprocedural dataflow rules live there,
  because a source in one module reaching a sink in another is
  invisible to any per-file pass;
- per-file **context** (:class:`RuleContext`) with shared services the
  rules would otherwise each rebuild: import-alias resolution
  (``np.random`` -> ``numpy.random``), dotted-name rendering, and a
  lightweight set-type inferencer (:mod:`settypes`);
- **pragmas** — ``# reprolint: disable=RL003 -- <justification>`` —
  with the justification *required*: an undocumented suppression is
  itself a finding (``RL000``), which is how the acceptance criterion
  "zero undocumented pragmas" is enforced by the tool instead of by
  reviewers;
- per-rule **allowlists** for the files that legitimately own an
  invariant's implementation (``sim/rng.py`` may touch ``random``;
  ``obs/profiler.py`` may read the wall clock).
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

__all__ = [
    "Finding",
    "LintConfig",
    "Linter",
    "Pragma",
    "Program",
    "ProgramFile",
    "ProgramRule",
    "Rule",
    "RuleContext",
    "all_rule_classes",
    "iter_python_files",
    "parse_pragmas",
    "register",
    "register_program",
    "registered_program_rules",
    "registered_rules",
    "rule_code_span",
]


PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<verb>disable|disable-file)\s*=\s*"
    r"(?P<codes>(?:RL\d{3}|all)(?:\s*,\s*(?:RL\d{3}|all))*)"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppression problem) at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["justification"] = self.justification
        return out


@dataclass(frozen=True)
class Pragma:
    """One ``# reprolint: disable=...`` comment.

    ``line`` is the physical line the comment sits on; a line-scoped
    pragma suppresses findings reported on that line or the next one
    (so it can ride above a long statement). ``file_wide`` pragmas
    (``disable-file``) suppress the rule everywhere in the module.
    """

    line: int
    codes: tuple[str, ...]
    justification: str | None
    file_wide: bool = False
    # True when the pragma line holds nothing but the comment; only
    # then does it also cover the next line (the ride-above style) —
    # a trailing pragma must not leak past its own statement.
    standalone: bool = False

    def covers(self, code: str, line: int) -> bool:
        if code not in self.codes and "all" not in self.codes:
            return False
        if self.file_wide:
            return True
        if self.standalone:
            return line in (self.line, self.line + 1)
        return line == self.line

    @property
    def documented(self) -> bool:
        return bool(self.justification)


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract every reprolint pragma from ``source``.

    Comment detection is line-based: a ``#`` inside a string literal on
    the same physical line could false-positive, but writing the pragma
    token inside a string is contrived enough that the simplicity wins
    (and the fixture suite pins the behaviour).
    """
    pragmas: list[Pragma] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "reprolint" not in text or "#" not in text:
            continue
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        codes = tuple(c.strip() for c in match.group("codes").split(","))
        pragmas.append(
            Pragma(
                line=lineno,
                codes=codes,
                justification=match.group("why"),
                file_wide=match.group("verb") == "disable-file",
                standalone=not text.split("#", 1)[0].strip(),
            )
        )
    return pragmas


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
# Files that legitimately own an invariant (matched as path suffixes or
# fnmatch patterns against the /-normalized relative path). These are
# the *repo's* defaults — LintConfig callers can extend or replace.
DEFAULT_ALLOWLISTS: dict[str, tuple[str, ...]] = {
    # The registry itself must touch ``random`` to build its streams.
    "RL001": ("sim/rng.py",),
    # Wall-clock profiling is the profiler's whole job; it never feeds
    # simulated state (enforced by the behavior-neutrality tests). The
    # bench runner likewise only *measures* wall time around whole
    # runs; its fingerprints prove the timed behaviour is unchanged.
    # The heartbeat progress line is the telemetry stack's only wall
    # clock use — isolated in its own module precisely so telemetry.py
    # itself stays RL002-clean (the sampler runs on sim time only).
    "RL002": ("obs/profiler.py", "experiments/bench.py", "obs/progress.py"),
    # The linter's own rule registry is module-level by design: it is
    # written exactly once per process, at import time, by the
    # @register decorators — it never carries simulation state.
    "RL009": ("analysis/reprolint/engine.py",),
}


@dataclass
class LintConfig:
    """Engine + rule configuration.

    ``select``/``ignore`` filter rule codes; ``allowlists`` maps a rule
    code to path patterns it must skip; ``extra_trace_kinds`` extends
    the RL004 catalog (fixtures use it); ``require_justification``
    turns undocumented pragmas into RL000 findings.
    """

    select: tuple[str, ...] | None = None
    ignore: tuple[str, ...] = ()
    allowlists: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOWLISTS)
    )
    extra_trace_kinds: tuple[str, ...] = ()
    trace_catalog_path: Path | None = None
    require_justification: bool = True
    # RL008: where the stream-ownership registry comes from. ``None``
    # imports the live ``repro.sim.rng.STREAM_OWNERS``; a path recovers
    # it statically from that file's AST. ``extra_stream_owners``
    # extends the registry (fixtures use it).
    stream_owners_path: Path | None = None
    extra_stream_owners: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def rule_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        if self.select is not None:
            return code in self.select
        return True

    def allowlisted(self, code: str, rel_path: str) -> bool:
        patterns = self.allowlists.get(code, ())
        return any(
            rel_path.endswith(pattern) or fnmatch.fnmatch(rel_path, pattern)
            for pattern in patterns
        )


# ----------------------------------------------------------------------
# import-alias resolution
# ----------------------------------------------------------------------
class ImportMap:
    """Resolves names/attribute chains to canonical dotted module paths.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from time import
    perf_counter as pc`` maps ``pc`` -> ``time.perf_counter``; ``from
    datetime import datetime`` maps ``datetime`` -> ``datetime.datetime``
    — so rules match on canonical names regardless of aliasing, the
    classic evasion in hand-written grep gates.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name for a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def dotted_name(node: ast.AST) -> str | None:
    """Source-level dotted rendering (``self.rng.choice``) or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call) or not parts:
        return None
    else:
        parts.append("?")
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
class RuleContext:
    """Per-file services and the findings sink handed to every rule."""

    def __init__(
        self,
        path: Path,
        rel_path: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.config = config
        self.imports = ImportMap(tree)
        self.findings: list[Finding] = []
        # parents let rules look outward (RL003 asks "is this
        # comprehension an argument of an RNG call?")
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule.code,
                path=self.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


class Rule:
    """Base class: subclass, set the metadata, register, visit.

    ``node_types`` declares which AST node classes the rule wants; the
    walker calls :meth:`visit` for exactly those. ``start_file`` /
    ``finish_file`` bracket each module for rules that carry per-file
    state (RL003's type inferencer).
    """

    code: str = "RL000"
    name: str = ""
    rationale: str = ""
    node_types: tuple[type[ast.AST], ...] = ()

    def start_file(self, ctx: RuleContext) -> None:  # pragma: no cover - default
        pass

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        raise NotImplementedError

    def finish_file(self, ctx: RuleContext) -> None:  # pragma: no cover - default
        pass


@dataclass
class ProgramFile:
    """One successfully parsed module of the linted program."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module


class Program:
    """The whole linted file set, as seen by :class:`ProgramRule`.

    Shared services that several program rules would otherwise each
    rebuild (the call graph, dataflow summaries) are cached here by
    the modules that compute them, keyed by attribute.
    """

    def __init__(self, files: list[ProgramFile], config: LintConfig) -> None:
        self.files = files
        self.config = config
        self.findings: list[Finding] = []
        self._services: dict[str, object] = {}

    def service(self, key: str, build: Callable[[], object]) -> object:
        """Memoized shared analysis artifact (e.g. the call graph)."""
        if key not in self._services:
            self._services[key] = build()
        return self._services[key]

    def report(self, rule: ProgramRule, rel_path: str, line: int, col: int, message: str) -> None:
        self.findings.append(
            Finding(rule=rule.code, path=rel_path, line=line, col=col, message=message)
        )


class ProgramRule:
    """Base class for whole-program rules (interprocedural analyses).

    Unlike :class:`Rule`, a program rule sees every linted file at
    once; it reports through :meth:`Program.report` so each finding is
    still anchored to one file/line and participates in that file's
    pragma handling and allowlists like any per-file finding.
    """

    code: str = "RL000"
    name: str = ""
    rationale: str = ""

    def run(self, program: Program) -> None:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}
_PROGRAM_REGISTRY: dict[str, type[ProgramRule]] = {}


def _check_code(code: str) -> None:
    if not re.fullmatch(r"RL\d{3}", code):
        raise ValueError(f"bad rule code {code!r}")
    if code in _REGISTRY or code in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate rule code {code}")


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a per-file rule to the global registry."""
    _check_code(rule_cls.code)
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def register_program(rule_cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator adding a whole-program rule to the registry."""
    _check_code(rule_cls.code)
    _PROGRAM_REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def _load_builtin_rules() -> None:
    # importing the rule modules populates both registries
    from repro.analysis.reprolint import dataflow as _dataflow  # noqa: F401
    from repro.analysis.reprolint import rules as _rules  # noqa: F401


def registered_rules() -> dict[str, type[Rule]]:
    """The per-file registry (importing loads the built-in set)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def registered_program_rules() -> dict[str, type[ProgramRule]]:
    """The whole-program registry (importing loads the built-in set)."""
    _load_builtin_rules()
    return dict(_PROGRAM_REGISTRY)


def all_rule_classes() -> dict[str, type[Rule] | type[ProgramRule]]:
    """Every registered rule, per-file and whole-program, by code."""
    out: dict[str, type[Rule] | type[ProgramRule]] = {}
    out.update(registered_rules())
    out.update(registered_program_rules())
    return dict(sorted(out.items()))


def rule_code_span() -> str:
    """``"RL001-RL010"`` — derived from the registry, never hard-coded.

    Catalog strings in ``--help`` output and docs are built from this
    so a new rule cannot drift out of the documentation.
    """
    codes = sorted(all_rule_classes())
    if not codes:
        return "none"
    if len(codes) == 1:
        return codes[0]
    return f"{codes[0]}-{codes[-1]}"


# ----------------------------------------------------------------------
# the linter
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen = []
    for path in paths:
        if path.is_dir():
            seen.extend(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            seen.append(path)
    return iter(sorted(set(seen)))


class Linter:
    """Runs the registered rules over files and applies pragmas."""

    def __init__(
        self,
        config: LintConfig | None = None,
        rule_factories: Iterable[Callable[[], Rule]] | None = None,
        program_rule_factories: Iterable[Callable[[], ProgramRule]] | None = None,
    ) -> None:
        self.config = config or LintConfig()
        if rule_factories is None:
            rule_factories = list(registered_rules().values())
        if program_rule_factories is None:
            program_rule_factories = list(registered_program_rules().values())
        instances = [factory() for factory in rule_factories]
        self.rules: list[Rule] = [
            rule for rule in instances if self.config.rule_enabled(rule.code)
        ]
        self.rules.sort(key=lambda r: r.code)
        program_instances = [factory() for factory in program_rule_factories]
        self.program_rules: list[ProgramRule] = [
            rule for rule in program_instances if self.config.rule_enabled(rule.code)
        ]
        self.program_rules.sort(key=lambda r: r.code)

    # -- pieces ---------------------------------------------------------
    def parse_file(
        self, source: str, rel_path: str, path: Path | None = None
    ) -> ProgramFile | Finding:
        """Parse one module; a syntax error comes back as an RL000 finding."""
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            return Finding(
                rule="RL000",
                path=rel_path,
                line=exc.lineno or 0,
                col=(exc.offset or 0),
                message=f"file does not parse: {exc.msg}",
            )
        return ProgramFile(path or Path(rel_path), rel_path, source, tree)

    def run_file_rules(self, pfile: ProgramFile) -> list[Finding]:
        """Per-file rule findings for one module (pragmas not yet applied)."""
        ctx = RuleContext(pfile.path, pfile.rel_path, pfile.source, pfile.tree, self.config)
        active = [
            rule
            for rule in self.rules
            if not self.config.allowlisted(rule.code, pfile.rel_path)
        ]
        dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in active:
            rule.start_file(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            for node in ast.walk(pfile.tree):
                for rule in dispatch.get(type(node), ()):
                    rule.visit(node, ctx)
        for rule in active:
            rule.finish_file(ctx)
        return ctx.findings

    def run_program_rules(self, files: list[ProgramFile]) -> list[Finding]:
        """Whole-program findings over the given parsed file set.

        Allowlists apply to the file a finding is *anchored* to; an
        allowlisted file still participates in the analysis as an
        intermediate hop.
        """
        if not self.program_rules or not files:
            return []
        program = Program(files, self.config)
        for rule in self.program_rules:
            rule.run(program)
        return [
            finding
            for finding in program.findings
            if not self.config.allowlisted(finding.rule, finding.path)
        ]

    # -- single file ----------------------------------------------------
    def lint_source(self, source: str, rel_path: str, path: Path | None = None) -> list[Finding]:
        """Lint one module's source (as a one-file program);
        returns findings incl. suppressed."""
        parsed = self.parse_file(source, rel_path, path)
        if isinstance(parsed, Finding):
            return [parsed]
        findings = self.run_file_rules(parsed)
        findings.extend(self.run_program_rules([parsed]))
        return self._apply_pragmas(findings, source, rel_path)

    def _apply_pragmas(
        self, findings: list[Finding], source: str, rel_path: str
    ) -> list[Finding]:
        pragmas = parse_pragmas(source)
        out: list[Finding] = []
        for finding in findings:
            pragma = next(
                (p for p in pragmas if p.covers(finding.rule, finding.line)), None
            )
            if pragma is None:
                out.append(finding)
            else:
                out.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        suppressed=True,
                        justification=pragma.justification,
                    )
                )
        if self.config.require_justification:
            known = set(all_rule_classes()) | {"all", "RL000"}
            for pragma in pragmas:
                if not pragma.documented:
                    out.append(
                        Finding(
                            rule="RL000",
                            path=rel_path,
                            line=pragma.line,
                            col=1,
                            message=(
                                "undocumented suppression: add a justification "
                                "('# reprolint: disable=RLxxx -- <why>')"
                            ),
                        )
                    )
                for code in pragma.codes:
                    if code not in known:
                        out.append(
                            Finding(
                                rule="RL000",
                                path=rel_path,
                                line=pragma.line,
                                col=1,
                                message=f"pragma names unknown rule {code}",
                            )
                        )
        out.sort(key=Finding.sort_key)
        return out

    # -- trees ----------------------------------------------------------
    def lint_paths(
        self,
        paths: Sequence[Path],
        root: Path | None = None,
        cache: Any | None = None,
    ) -> list[Finding]:
        """Lint files/directories; paths in findings are ``root``-relative.

        ``cache`` (a :class:`repro.analysis.reprolint.cache.LintCache`)
        short-circuits per-file rule runs for files whose content hash
        is unchanged, and the whole program pass when *no* file
        changed; pragma application always re-runs (it is cheap and
        content-local).
        """
        findings: list[Finding] = []
        parsed: list[ProgramFile] = []
        per_file: dict[str, list[Finding]] = {}
        for file_path in iter_python_files([Path(p) for p in paths]):
            rel = _relativize(file_path, root)
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(
                    Finding("RL000", rel, 0, 0, f"unreadable file: {exc}")
                )
                continue
            result = self.parse_file(source, rel, path=file_path)
            if isinstance(result, Finding):
                findings.append(result)
                continue
            parsed.append(result)
            cached = cache.get_file(result) if cache is not None else None
            if cached is None:
                cached = self.run_file_rules(result)
                if cache is not None:
                    cache.put_file(result, cached)
            per_file.setdefault(rel, []).extend(cached)
        program_findings = cache.get_program(parsed) if cache is not None else None
        if program_findings is None:
            program_findings = self.run_program_rules(parsed)
            if cache is not None:
                cache.put_program(parsed, program_findings)
        for finding in program_findings:
            per_file.setdefault(finding.path, []).append(finding)
        for pfile in parsed:
            findings.extend(
                self._apply_pragmas(
                    per_file.get(pfile.rel_path, []), pfile.source, pfile.rel_path
                )
            )
        # program findings can be anchored to files outside the walked
        # set only if a rule misbehaves; surface rather than drop them
        walked = {p.rel_path for p in parsed}
        findings.extend(
            f for f in program_findings if f.path not in walked
        )
        findings.sort(key=Finding.sort_key)
        return findings


def _relativize(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        rel = path.resolve().relative_to(Path(base).resolve())
    except ValueError:
        rel = path
    return rel.as_posix()
