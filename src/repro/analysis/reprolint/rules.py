"""The built-in per-file reprolint rule catalog.

Each rule encodes one clause of this repo's determinism/protocol
contract (tests/README.md "The determinism contract"):

========  ==============================================================
RL001     all randomness flows through ``RngRegistry`` streams
RL002     no wall clock inside simulation logic
RL003     no hash-ordered iteration feeding RNG draws or sends
RL004     every trace event kind is in the ``obs/events.py`` catalog
RL005     no float equality on simulated-time values
RL006     no silently swallowed exceptions in sim code
RL008     RNG streams are drawn only by their registered owner module
RL009     no mutable module-level / default-arg state written from sim code
RL010     no sim-time accumulated by repeated float ``+=`` in loops
========  ==============================================================

(RL007, the interprocedural source→sink rule, lives in
:mod:`repro.analysis.reprolint.dataflow` — it needs the whole program,
not one file.)

Rules are registered via :func:`repro.analysis.reprolint.engine.register`
and instantiated fresh per :class:`Linter`, so per-file state on the
rule instance is safe.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.reprolint.engine import (
    Rule,
    RuleContext,
    dotted_name,
    register,
)
from repro.analysis.reprolint.settypes import ExprKind, SetTypeInferencer

__all__ = [
    "GlobalRandomState",
    "WallClock",
    "UnorderedIteration",
    "UnknownTraceKind",
    "FloatTimeEquality",
    "SwallowedException",
    "StreamOwnership",
    "MutableModuleState",
    "AccumulatedFloatTime",
    "load_stream_owners",
    "load_trace_catalog",
]


def _outermost_attribute(node: ast.AST, ctx: RuleContext) -> bool:
    """True when ``node`` is not itself part of a longer dotted chain.

    ``numpy.random.seed`` is one violation, not three: only the full
    chain reports; inner Attribute/Name links are skipped.
    """
    parent = ctx.parent(node)
    return not (isinstance(parent, ast.Attribute) and parent.value is node)


# ----------------------------------------------------------------------
# RL001
# ----------------------------------------------------------------------
@register
class GlobalRandomState(Rule):
    """Module-level RNG state outside the registry.

    ``random.random()`` / ``random.seed()`` / ``numpy.random.*`` share
    interpreter-global state: one stray draw re-aligns every subsequent
    draw in the process and silently breaks seeded replay. Only
    ``sim/rng.py`` (allowlisted) may touch the ``random`` module to
    build its independent streams; everything else receives a
    ``random.Random`` from ``RngRegistry.stream(...)``.
    """

    code = "RL001"
    name = "global-random-state"
    rationale = (
        "global random module state breaks seeded replay; draw from an "
        "RngRegistry stream instead"
    )
    node_types = (ast.Attribute, ast.Name)

    # referencing the classes is fine: instantiating random.Random(seed)
    # is exactly how the registry builds its streams
    _ALLOWED = {"random.Random", "random.SystemRandom"}

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if not _outermost_attribute(node, ctx):
            return
        if isinstance(node, ast.Name):
            resolved = ctx.imports.resolve(node)
            if resolved == node.id:
                return  # not an alias; bare names carry no module state
        else:
            resolved = ctx.imports.resolve(node)
        if resolved is None or resolved in self._ALLOWED:
            return
        if resolved.startswith("random.") or resolved.startswith("numpy.random"):
            ctx.report(
                self,
                node,
                f"global RNG state `{resolved}` used outside sim/rng.py; "
                "draw from an RngRegistry stream instead",
            )


# ----------------------------------------------------------------------
# RL002
# ----------------------------------------------------------------------
@register
class WallClock(Rule):
    """Wall-clock reads reachable from simulation logic.

    Simulated time is ``sim.now``; real time differs across hosts and
    runs, so any wall-clock value that feeds protocol state or metrics
    destroys bit-identical replay. The profiler (allowlisted) is the
    one legitimate consumer — it only *observes* callback cost and is
    pinned behavior-neutral by the fingerprint-equality tests.
    """

    code = "RL002"
    name = "wall-clock"
    rationale = "wall-clock time varies across runs; use sim.now"
    node_types = (ast.Attribute, ast.Name)

    _FORBIDDEN = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if not _outermost_attribute(node, ctx):
            return
        if isinstance(node, ast.Name):
            resolved = ctx.imports.resolve(node)
            if resolved == node.id:
                return
        else:
            resolved = ctx.imports.resolve(node)
        if resolved in self._FORBIDDEN:
            ctx.report(
                self,
                node,
                f"wall-clock `{resolved}` in simulation code; simulated "
                "time must come from sim.now (profiling belongs in obs/profiler.py)",
            )


# ----------------------------------------------------------------------
# RL003
# ----------------------------------------------------------------------
_RNG_METHODS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "triangular",
    "uniform",
}
_EMIT_NAMES = {
    "broadcast",
    "call_after",
    "call_at",
    "emit",
    "enqueue",
    "publish",
    "push",
    "_push",
    "schedule",
    "send",
    "send_query",
    "send_to",
    "trace",
    "_trace",
}


@register
class UnorderedIteration(Rule):
    """Hash-ordered iteration feeding an RNG draw, peer choice or send.

    ``set`` iteration order depends on hash seeding and insertion
    history — an implementation detail, not part of the program's
    meaning. When loop order decides *which peer is drawn next* or *in
    what order messages leave a node*, that detail becomes protocol
    behaviour: a refactor that changes insertion order silently changes
    every downstream RNG draw. Dict views are insertion-ordered (hence
    deterministic per run) but still flagged when they feed an RNG
    draw, because consumption order re-aligns the stream across
    otherwise-equivalent code paths. Fix: iterate ``sorted(...)`` or an
    explicitly ordered list.
    """

    code = "RL003"
    name = "unordered-iteration"
    rationale = (
        "set/dict-view order is incidental; sorting makes the order part "
        "of the program text"
    )
    node_types = (ast.For, ast.Call)

    def start_file(self, ctx: RuleContext) -> None:
        self._types = SetTypeInferencer(ctx.tree)

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if isinstance(node, ast.For):
            self._visit_for(node, ctx)
        elif isinstance(node, ast.Call):
            self._visit_call(node, ctx)

    # -- for loops ------------------------------------------------------
    def _visit_for(self, node: ast.For, ctx: RuleContext) -> None:
        kind = self._types.kind(node.iter)
        if kind not in (ExprKind.SET, ExprKind.DICT_VIEW):
            return
        sink = self._body_sink(node.body)
        if sink is None:
            return
        if kind is ExprKind.DICT_VIEW and sink not in _RNG_METHODS:
            # dict views are insertion-ordered; only RNG consumption
            # order makes them a replay hazard
            return
        what = "a set" if kind is ExprKind.SET else "an unsorted dict view"
        ctx.report(
            self,
            node,
            f"iterating {what} while calling `{sink}(...)` makes "
            "hash/insertion order protocol behaviour; iterate sorted(...) "
            "or an explicitly ordered sequence",
        )

    def _body_sink(self, body) -> str | None:
        """Name of the first RNG/emission call inside the loop body."""
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                name = None
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
                if name in _RNG_METHODS or name in _EMIT_NAMES:
                    return name
        return None

    # -- rng calls over set-typed arguments -----------------------------
    def _visit_call(self, node: ast.Call, ctx: RuleContext) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _RNG_METHODS):
            return
        for arg in node.args:
            candidate = arg
            # list(s)/tuple(s) preserve the underlying set order;
            # sorted(s) launders it into a defined order
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id in {"list", "tuple"}
                and arg.args
            ):
                candidate = arg.args[0]
            if self._types.kind(candidate) is ExprKind.SET:
                ctx.report(
                    self,
                    node,
                    f"`{func.attr}(...)` consumes a set-ordered sequence; "
                    "RNG draws over hash order are not reproducible — "
                    "sort first (e.g. rng.choice(sorted(s)))",
                )
                return


# ----------------------------------------------------------------------
# RL004
# ----------------------------------------------------------------------
def load_trace_catalog(path: Path | None = None) -> frozenset[str]:
    """The trace-kind catalog: ``KINDS`` keys from ``obs/events.py``.

    With ``path``, the catalog is recovered statically from that file's
    AST (no import — usable on a checkout with a broken environment);
    otherwise it is imported from the live package.
    """
    if path is None:
        from repro.obs.events import KINDS

        return frozenset(KINDS)
    tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if "KINDS" in names and isinstance(node.value, ast.Dict):
            return frozenset(
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
    raise ValueError(f"no KINDS dict literal found in {path}")


@register
class UnknownTraceKind(Rule):
    """Trace emission with a kind missing from the catalog.

    The ``obs/events.py`` ``KINDS`` mapping is the contract between
    emitters and consumers (timeline analysis, lifecycle tests, CI
    schema checks). The recorder deliberately accepts unknown kinds at
    runtime, so a typo'd kind produces no error — just events that
    every consumer silently ignores. This rule closes that gap at lint
    time: any literal first argument to ``.emit(...)`` / ``.trace(...)``
    / ``._trace(...)`` must be cataloged.
    """

    code = "RL004"
    name = "unknown-trace-kind"
    rationale = "uncataloged event kinds are invisible to every trace consumer"
    node_types = (ast.Call,)

    _EMITTERS = {"emit", "trace", "_trace"}

    def __init__(self) -> None:
        self._catalog: frozenset[str] | None = None

    def start_file(self, ctx: RuleContext) -> None:
        if self._catalog is None:
            catalog = load_trace_catalog(ctx.config.trace_catalog_path)
            self._catalog = catalog | frozenset(ctx.config.extra_trace_kinds)

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in self._EMITTERS or not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return
        kind = first.value
        assert self._catalog is not None
        if kind not in self._catalog:
            ctx.report(
                self,
                node,
                f"trace kind '{kind}' is not in the obs/events.py KINDS "
                "catalog; add it there (with a docstring) or fix the typo",
            )


# ----------------------------------------------------------------------
# RL005
# ----------------------------------------------------------------------
@register
class FloatTimeEquality(Rule):
    """``==`` / ``!=`` between simulated-time floats.

    Simulated timestamps are sums of float delays; two paths to "the
    same" instant can differ in the last ulp, so equality comparisons
    encode an accident of float arithmetic (the round-deadline timeout
    bug fixed in PR 2 was exactly this, written as a strict ``>`` that
    should have been ``>=``). Order comparisons are fine; equality on
    times is flagged. Identifiers are matched heuristically (``now``,
    ``t``, ``deadline``, ``*_at``, ``*_time`` …) — suppress with a
    justified pragma where an exact sentinel is intended.
    """

    code = "RL005"
    name = "float-time-equality"
    rationale = "float time equality is an accident of arithmetic, not a condition"
    node_types = (ast.Compare,)

    _TIME_TERMINALS = {"t", "now", "time", "deadline", "when", "at"}
    _TIME_SUFFIXES = ("_time", "_at", "_deadline", "_until")

    def _timeish(self, node: ast.AST) -> str | None:
        name = dotted_name(node)
        if name is None:
            return None
        terminal = name.rsplit(".", 1)[-1]
        if terminal in self._TIME_TERMINALS or terminal.endswith(self._TIME_SUFFIXES):
            return name
        return None

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:], strict=False):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            subject = self._timeish(left) or self._timeish(right)
            if subject is None:
                continue
            other = right if self._timeish(left) else left
            if isinstance(other, ast.UnaryOp) and isinstance(
                other.op, (ast.USub, ast.UAdd)
            ):
                other = other.operand  # -1 parses as USub(Constant(1))
            if isinstance(other, ast.Constant) and not isinstance(other.value, float):
                continue  # int/None/str sentinels are exact, not float math
            ctx.report(
                self,
                node,
                f"float equality on simulated time `{subject}`; compare "
                "with <=/>= (or an explicit tolerance) instead",
            )
            return


# ----------------------------------------------------------------------
# RL006
# ----------------------------------------------------------------------
@register
class SwallowedException(Rule):
    """``except: pass`` in simulation code.

    A swallowed exception inside an event callback turns a hard bug
    into a silent divergence: the run completes, the fingerprint
    changes, and nothing points at the handler that ate the traceback.
    The fault-injection subsystem exists to model failures *explicitly*
    (``faults/``); broad except-and-ignore is never the mechanism.
    """

    code = "RL006"
    name = "swallowed-exception"
    rationale = "silently dropped exceptions turn bugs into unexplained divergence"
    node_types = (ast.ExceptHandler,)

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        return any(
            isinstance(t, ast.Name) and t.id in self._BROAD for t in types
        )

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if not self._is_broad(node):
            return
        body_is_noop = all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        )
        if body_is_noop:
            ctx.report(
                self,
                node,
                "broad exception silently swallowed; narrow the type, "
                "handle it, or let it propagate (fault modelling belongs "
                "in repro.faults)",
            )


# ----------------------------------------------------------------------
# RL008
# ----------------------------------------------------------------------
def load_stream_owners(path: Path | None = None) -> dict[str, tuple[str, ...]]:
    """The stream-ownership registry: ``STREAM_OWNERS`` from ``sim/rng.py``.

    With ``path``, the mapping is recovered statically from that file's
    AST (usable on a checkout with a broken environment); otherwise it
    is imported from the live package.
    """
    if path is None:
        from repro.sim.rng import STREAM_OWNERS

        return dict(STREAM_OWNERS)
    tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if "STREAM_OWNERS" in names and isinstance(node.value, ast.Dict):
            owners: dict[str, tuple[str, ...]] = {}
            for key, value in zip(node.value.keys, node.value.values, strict=True):
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    continue
                elts = value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
                owners[key.value] = tuple(
                    e.value
                    for e in elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
            return owners
    raise ValueError(f"no STREAM_OWNERS dict literal found in {path}")


@register
class StreamOwnership(Rule):
    """RNG stream drawn outside its registered owner module.

    ``RngRegistry`` gives every component an independent stream — but
    independence is only as good as ownership. If two components draw
    from the same named stream, one extra draw in either re-aligns the
    other, and A/B comparisons between policies measure stream
    contention instead of the policy. ``sim/rng.py`` exports
    ``STREAM_OWNERS`` (first label -> owning module paths); drawing a
    named stream anywhere else — or drawing an unregistered label —
    is a finding. Non-literal first labels are skipped (a registry
    passing labels through is not a draw site).
    """

    code = "RL008"
    name = "stream-ownership"
    rationale = (
        "a named RNG stream drawn from two modules re-couples their "
        "draws; every stream label has exactly one registered owner set"
    )
    node_types = (ast.Call,)

    def __init__(self) -> None:
        self._owners: dict[str, tuple[str, ...]] | None = None

    def start_file(self, ctx: RuleContext) -> None:
        if self._owners is None:
            owners = load_stream_owners(ctx.config.stream_owners_path)
            owners.update(ctx.config.extra_stream_owners)
            self._owners = owners

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "stream"):
            return
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return
        label = first.value
        assert self._owners is not None
        owners = self._owners.get(label)
        if owners is None:
            ctx.report(
                self,
                node,
                f"RNG stream label '{label}' is not registered in "
                "sim/rng.py STREAM_OWNERS; add it there with its owning "
                "module before drawing from it",
            )
            return
        if not any(ctx.rel_path.endswith(owner) for owner in owners):
            owned_by = ", ".join(owners)
            ctx.report(
                self,
                node,
                f"RNG stream '{label}' is owned by {owned_by} but drawn "
                f"here; use a stream this module owns (or transfer "
                "ownership in sim/rng.py STREAM_OWNERS)",
            )


# ----------------------------------------------------------------------
# RL009
# ----------------------------------------------------------------------
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "defaultdict", "deque", "Counter"}
_MUTATING_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


@register
class MutableModuleState(Rule):
    """Mutable module-level state written from functions, or mutable defaults.

    A module-level list/dict/set mutated from simulation code is shared
    across every scenario in a process: run A's leftovers leak into run
    B, so back-to-back runs of the same config can diverge — the
    classic "passes alone, fails in the suite" nondeterminism. Mutable
    default arguments are the same trap in miniature (one shared object
    across all calls). Keep state on instances created per run, or
    suppress with a justified pragma where a process-wide registry is
    genuinely intended.
    """

    code = "RL009"
    name = "mutable-module-state"
    rationale = (
        "process-global mutable state couples runs that the contract "
        "says are independent"
    )
    node_types = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def start_file(self, ctx: RuleContext) -> None:
        self._module_mutables: dict[str, ast.AST] = {}

    def _is_mutable_literal(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS
        )

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        if isinstance(node, ast.Module):
            self._collect_module_state(node)
            self._check_writes(node, ctx)
        else:
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            self._check_defaults(node, ctx)

    def _collect_module_state(self, module: ast.Module) -> None:
        for stmt in module.body:
            value = None
            names: list[str] = []
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                value = stmt.value
                names = [stmt.target.id]
            if value is not None and names and self._is_mutable_literal(value):
                for name in names:
                    self._module_mutables.setdefault(name, stmt)

    def _check_writes(self, module: ast.Module, ctx: RuleContext) -> None:
        if not self._module_mutables:
            return
        reported: set[str] = set()
        for top in module.body:
            if not isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for sub in ast.walk(top):
                name, how = self._write_of(sub)
                if name is None or name not in self._module_mutables:
                    continue
                if name in reported or self._shadowed(top, name):
                    continue
                reported.add(name)
                decl = self._module_mutables[name]
                ctx.report(
                    self,
                    decl,
                    f"module-level mutable `{name}` is written from "
                    f"simulation code ({how} at line {sub.lineno}); state "
                    "shared across runs breaks run independence — move it "
                    "onto a per-run object",
                )

    def _write_of(self, node: ast.AST) -> tuple[str | None, str]:
        """(written module-level name, description) for a write site."""
        if isinstance(node, ast.Global):
            return (node.names[0] if node.names else None), "`global` write"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                return node.func.value.id, f"`.{node.func.attr}(...)`"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id, "subscript assignment"
        return None, ""

    def _shadowed(self, scope: ast.AST, name: str) -> bool:
        """True when ``name`` is rebound as a local anywhere in ``scope``."""
        for sub in ast.walk(scope):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = sub.args
                all_params = [
                    *params.posonlyargs,
                    *params.args,
                    *params.kwonlyargs,
                ]
                if any(a.arg == name for a in all_params):
                    return True
                for inner in ast.walk(sub):
                    if (
                        isinstance(inner, ast.Assign)
                        and any(
                            isinstance(t, ast.Name) and t.id == name
                            for t in inner.targets
                        )
                    ):
                        return True
        return False

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: RuleContext
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and self._is_mutable_literal(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in `{node.name}(...)`: one "
                    "object is shared across every call; default to None "
                    "and create the container inside the function",
                )


# ----------------------------------------------------------------------
# RL010
# ----------------------------------------------------------------------
@register
class AccumulatedFloatTime(Rule):
    """Sim-time built by repeated float ``+=`` inside a loop.

    ``t += dt`` executed N times is not ``t0 + N*dt`` in float
    arithmetic: the rounding error depends on the magnitudes along the
    way, so two code paths that "obviously" reach the same instant
    disagree in the last ulp — and a heap scheduler then orders their
    events differently. Derive schedule times by multiplication
    (``t0 + i * dt``) so every path computes the identical value.
    Aggregation counters (``total_*``, ``sum_*``, ``cumulative_*``)
    are exempt: they measure, they do not schedule.
    """

    code = "RL010"
    name = "accumulated-float-time"
    rationale = (
        "repeated float += accumulates path-dependent rounding; derived "
        "multiplication gives every path the same timestamp"
    )
    node_types = (ast.AugAssign, ast.Assign)

    _TIME_TERMINALS = {"t", "now", "deadline", "when", "at"}
    _TIME_SUFFIXES = ("_time", "_at", "_deadline", "_until")
    _AGGREGATE_PREFIXES = ("total", "sum", "cum", "elapsed", "acc")

    def _timeish(self, name: str) -> bool:
        terminal = name.rsplit(".", 1)[-1]
        if terminal.startswith(self._AGGREGATE_PREFIXES):
            return False
        return terminal in self._TIME_TERMINALS or terminal.endswith(
            self._TIME_SUFFIXES
        )

    def _is_int_like(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and isinstance(node.value, int)

    def _in_loop(self, node: ast.AST, ctx: RuleContext) -> bool:
        """True when ``node`` repeats: inside a loop, within one function."""
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False  # intraprocedural: the def boundary ends the walk
            if isinstance(current, (ast.For, ast.AsyncFor, ast.While)):
                return True
            current = ctx.parent(current)
        return False

    def visit(self, node: ast.AST, ctx: RuleContext) -> None:
        target_name = self._accumulation(node)
        if target_name is None or not self._in_loop(node, ctx):
            return
        ctx.report(
            self,
            node,
            f"simulated time `{target_name}` accumulated by float "
            "`+=` in a loop drifts with iteration count; derive it "
            "(start + i * step) so every path computes the same "
            "timestamp",
        )

    def _accumulation(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            name = dotted_name(node.target)
            if name and self._timeish(name) and not self._is_int_like(node.value):
                return name
            return None
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.BinOp):
            if not isinstance(node.value.op, ast.Add):
                return None
            for target in node.targets:
                name = dotted_name(target)
                if name is None or not self._timeish(name):
                    continue
                left = dotted_name(node.value.left)
                right = dotted_name(node.value.right)
                operand = (
                    node.value.right if left == name else
                    node.value.left if right == name else None
                )
                if operand is not None and not self._is_int_like(operand):
                    return name
        return None


def all_rule_codes() -> tuple[str, ...]:
    """Codes of every built-in rule (per-file and program), sorted."""
    from repro.analysis.reprolint.engine import all_rule_classes

    return tuple(sorted(all_rule_classes()))
