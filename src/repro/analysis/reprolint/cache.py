"""Content-hash-keyed result cache for ``repro lint``.

The interprocedural pass (RL007) made full lint runs meaningfully more
expensive than the old per-file sweep, and the blocking CI job runs on
every push. This cache makes the common case — a small diff against a
large tree — cheap again:

- **per-file findings** are keyed by the SHA-256 of the file's
  *content* (not its mtime: checkouts and CI runners scramble mtimes),
  so only changed files re-run the per-file rules;
- **program findings** are keyed by a digest over every file's
  ``(rel_path, content hash)`` pair — the whole-program pass re-runs
  when *any* file changed, because a one-line edit anywhere can create
  or destroy a cross-module flow;
- both are guarded by a **rules signature**: a hash of the linter's
  own source modules plus the effective configuration. Editing a rule,
  or linting with different ``--select``/``--ignore``, invalidates
  everything — a cache must never make the linter lie.

Entries store *pre-pragma* findings; pragma application is content-
local and cheap, and re-running it keeps suppression bookkeeping
(justifications, RL000 for undocumented pragmas) exact on every run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.reprolint.engine import Finding, LintConfig, ProgramFile

__all__ = ["LintCache", "content_hash", "rules_signature"]

_FORMAT_VERSION = 1

# the modules whose source defines what findings mean; editing any of
# them invalidates every cached result
_SIGNATURE_MODULES = ("engine", "settypes", "rules", "callgraph", "dataflow")


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_signature(config: LintConfig) -> str:
    """Hash of the linter's own code plus the effective configuration."""
    h = hashlib.sha256()
    package = Path(__file__).parent
    for module in _SIGNATURE_MODULES:
        path = package / f"{module}.py"
        h.update(module.encode())
        h.update(b"\x00")
        h.update(path.read_bytes() if path.exists() else b"<missing>")
        h.update(b"\x00")
    config_key = {
        "select": sorted(config.select) if config.select is not None else None,
        "ignore": sorted(config.ignore),
        "allowlists": {k: sorted(v) for k, v in sorted(config.allowlists.items())},
        "extra_trace_kinds": sorted(config.extra_trace_kinds),
        "trace_catalog_path": str(config.trace_catalog_path or ""),
        "require_justification": config.require_justification,
        "stream_owners_path": str(config.stream_owners_path or ""),
        "extra_stream_owners": {
            k: sorted(v) for k, v in sorted(config.extra_stream_owners.items())
        },
    }
    h.update(json.dumps(config_key, sort_keys=True).encode())
    return h.hexdigest()


def _encode(findings: list[Finding]) -> list[dict]:
    return [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }
        for f in findings
    ]


def _decode(rows: list[dict]) -> list[Finding]:
    return [
        Finding(
            rule=row["rule"],
            path=row["path"],
            line=row["line"],
            col=row["col"],
            message=row["message"],
        )
        for row in rows
    ]


class LintCache:
    """Disk-backed cache implementing the :meth:`Linter.lint_paths` hooks.

    Usage::

        cache = LintCache(Path(".reprolint-cache.json"), config)
        findings = Linter(config).lint_paths(paths, cache=cache)
        cache.save()
    """

    def __init__(self, path: Path, config: LintConfig) -> None:
        self.path = Path(path)
        self.signature = rules_signature(config)
        self.file_hits = 0
        self.file_misses = 0
        self.program_hit = False
        self._files: dict[str, dict] = {}
        self._program: dict | None = None
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("version") != _FORMAT_VERSION
            or raw.get("signature") != self.signature
        ):
            return  # stale format or changed rules/config: start cold
        files = raw.get("files")
        program = raw.get("program")
        if isinstance(files, dict):
            self._files = files
        if isinstance(program, dict):
            self._program = program

    def save(self) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "signature": self.signature,
            "files": self._files,
            "program": self._program,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp.replace(self.path)

    # -- Linter.lint_paths hooks ---------------------------------------
    def get_file(self, pfile: ProgramFile) -> list[Finding] | None:
        entry = self._files.get(pfile.rel_path)
        if entry is None or entry.get("hash") != content_hash(pfile.source):
            self.file_misses += 1
            return None
        self.file_hits += 1
        return _decode(entry.get("findings", []))

    def put_file(self, pfile: ProgramFile, findings: list[Finding]) -> None:
        self._files[pfile.rel_path] = {
            "hash": content_hash(pfile.source),
            "findings": _encode(findings),
        }

    def _program_digest(self, files: list[ProgramFile]) -> str:
        h = hashlib.sha256()
        for pfile in sorted(files, key=lambda f: f.rel_path):
            h.update(pfile.rel_path.encode())
            h.update(b"\x00")
            h.update(content_hash(pfile.source).encode())
            h.update(b"\x00")
        return h.hexdigest()

    def get_program(self, files: list[ProgramFile]) -> list[Finding] | None:
        entry = self._program
        if entry is None or entry.get("digest") != self._program_digest(files):
            return None
        self.program_hit = True
        return _decode(entry.get("findings", []))

    def put_program(self, files: list[ProgramFile], findings: list[Finding]) -> None:
        self._program = {
            "digest": self._program_digest(files),
            "findings": _encode(findings),
        }
