"""Interprocedural determinism dataflow: the RL007 program rule.

RL003 sees ``for peer in members: transport.send(peer, ...)`` — source
and sink in one expression. What it cannot see is the same hazard cut
in half by a function boundary::

    # core/assignment.py
    def custody_peers(index):
        return list(index.holders)        # holders: set[int]

    # net/relay.py
    def relay(transport, peers):
        for peer in peers:
            transport.send(peer, ...)     # set order became protocol order

This module performs a whole-program taint analysis over the call
graph (:mod:`callgraph`):

- **sources** — materializations of nondeterministic order or values:
  iterating / ``list()``-ing / ``.pop()``-ing a set or frozenset,
  ``id()``, builtin ``hash()``, ``os.environ`` reads, and filesystem
  listing order (``os.listdir``, ``Path.iterdir``, ``glob.glob`` …);
- **sinks** — the protocol boundary: transport/gossip emission calls
  (``send``, ``broadcast``, ``emit`` …) and RNG draws (consumption
  order re-aligns the stream);
- **summaries** — each function is summarized by which parameters
  reach a sink, which parameters flow to its return value, and which
  returns carry a source; summaries are iterated to a fixpoint so
  chains of helpers compose;
- **findings** — reported at the *source* (where the fix belongs),
  with the full source→sink path printed, and only when the flow
  crosses a function boundary: purely local flows are RL003's
  territory and are deliberately not double-reported.

Resolution is tiered (see :mod:`callgraph`): findings only arise
through exactly-resolved calls or name-based *sink* calls; the
by-method-name over-approximation is not used to invent flows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.reprolint.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.reprolint.engine import (
    ImportMap,
    Program,
    ProgramFile,
    ProgramRule,
    dotted_name,
    register_program,
)
from repro.analysis.reprolint.settypes import ExprKind, SetTypeInferencer

__all__ = ["CrossBoundaryNondeterminism", "Source", "SinkHit", "analyze_program"]


# sink vocabularies are shared with RL003 so the two rules cannot
# drift apart on what "the protocol boundary" means
from repro.analysis.reprolint.rules import _EMIT_NAMES, _RNG_METHODS  # noqa: E402

_ORDER_MATERIALIZERS = {"list", "tuple", "iter", "reversed", "enumerate", "next"}
_LAUNDERING_CALLS = {
    "sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all",
}
_FS_ORDER_CALLS = {
    "os.listdir": "os.listdir",
    "os.scandir": "os.scandir",
    "os.walk": "os.walk",
    "glob.glob": "glob.glob",
    "glob.iglob": "glob.iglob",
}
_FS_ORDER_METHODS = {"iterdir", "rglob"}
_ENVIRON_CALLS = {"os.getenv", "os.environ.get"}
_MAX_PASSES = 10


@dataclass(frozen=True)
class Source:
    """Where nondeterminism entered the program."""

    kind: str  # "set order" | "id()" | "hash()" | "os.environ" | "fs order"
    detail: str
    rel_path: str
    line: int
    col: int
    function: str  # display name of the defining function


@dataclass(frozen=True)
class SinkHit:
    """A protocol-boundary call consuming a tainted value."""

    name: str
    rel_path: str
    line: int


@dataclass(frozen=True)
class _Param:
    """Taint placeholder: 'whatever the caller passes as param i'."""

    index: int


@dataclass(frozen=True)
class _Tainted:
    """A concrete source, plus the functions it has travelled through."""

    source: Source
    via: tuple[str, ...] = ()


@dataclass(frozen=True)
class _SinkFlow:
    """Summary entry: a param reaches ``sink`` along ``path``."""

    sink: SinkHit
    path: tuple[str, ...]


@dataclass(frozen=True)
class _Summary:
    param_to_sink: tuple[tuple[int, tuple[_SinkFlow, ...]], ...] = ()
    param_to_return: frozenset[int] = frozenset()
    return_taints: tuple[_Tainted, ...] = ()

    def sinks_for(self, index: int) -> tuple[_SinkFlow, ...]:
        for i, flows in self.param_to_sink:
            if i == index:
                return flows
        return ()


@dataclass(frozen=True)
class Flow:
    """One complete source→sink path (a finding candidate)."""

    source: Source
    sink: SinkHit
    path: tuple[str, ...]


_EMPTY = _Summary()


class _FunctionPass:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        fn: FunctionInfo,
        graph: CallGraph,
        summaries: dict[str, _Summary],
        types: SetTypeInferencer,
        imports: ImportMap,
    ) -> None:
        self.fn = fn
        self.graph = graph
        self.summaries = summaries
        self.types = types
        self.imports = imports
        self.env: dict[str, frozenset[_Param | _Tainted]] = {}
        self.param_index = {name: i for i, name in enumerate(fn.params)}
        for name, i in self.param_index.items():
            self.env[name] = frozenset({_Param(i)})
        self.param_to_sink: dict[int, set[_SinkFlow]] = {}
        self.param_to_return: set[int] = set()
        self.return_taints: set[_Tainted] = set()
        self.flows: list[Flow] = []

    # -- helpers --------------------------------------------------------
    def _terminal(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _source(self, kind: str, detail: str, node: ast.AST) -> _Tainted:
        return _Tainted(
            Source(
                kind=kind,
                detail=detail,
                rel_path=self.fn.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                function=self.fn.display,
            )
        )

    def _bind(self, target: ast.AST, taints: frozenset) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, taints)
            return
        name = self._terminal(target)
        if name is None:
            return
        if taints:
            self.env[name] = self.env.get(name, frozenset()) | taints
        # no kill: a later clean reassignment does not untaint — the
        # analysis over-approximates within a function, and the
        # fixture suite pins the consequences

    # -- statements -----------------------------------------------------
    def run(self) -> None:
        self._block(self.fn.node.body)

    def _block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are their own functions in the table
        if isinstance(stmt, (ast.Assign,)):
            taints = self.taints_of(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.taints_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._bind(stmt.target, self.taints_of(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self.taints_of(stmt.iter)
            if self.types.kind(stmt.iter) is ExprKind.SET:
                rendered = dotted_name(stmt.iter) or "a set"
                iter_taints = iter_taints | {
                    self._source("set order", f"iteration over set `{rendered}`", stmt.iter)
                }
            self._bind(stmt.target, iter_taints)
            # two passes approximate loop-carried taint
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.taints_of(stmt.test)
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.taints_of(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.taints_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for taint in self.taints_of(stmt.value):
                    if isinstance(taint, _Param):
                        self.param_to_return.add(taint.index)
                    else:
                        self.return_taints.add(taint)
        elif isinstance(stmt, ast.Expr):
            self.taints_of(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.taints_of(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.taints_of(stmt.test)
        elif isinstance(stmt, ast.Delete):
            pass
        # Pass/Import/Global/Nonlocal/Break/Continue carry no dataflow

    # -- expressions ----------------------------------------------------
    def taints_of(self, node: ast.expr) -> frozenset:
        """Taints carried by ``node`` (side effect: sink detection)."""
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Name, ast.Attribute)):
            resolved = self.imports.resolve(node)
            if resolved == "os.environ":
                return frozenset(
                    {self._source("os.environ", "`os.environ` read", node)}
                )
            name = self._terminal(node)
            return self.env.get(name or "", frozenset())
        if isinstance(node, ast.Subscript):
            return self.taints_of(node.value) | self.taints_of(node.slice)
        if isinstance(node, ast.BinOp):
            return self.taints_of(node.left) | self.taints_of(node.right)
        if isinstance(node, ast.BoolOp):
            out: frozenset = frozenset()
            for value in node.values:
                out |= self.taints_of(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.taints_of(node.operand)
        if isinstance(node, ast.Compare):
            self.taints_of(node.left)
            for comparator in node.comparators:
                self.taints_of(comparator)
            return frozenset()  # a bool comparison result carries no order
        if isinstance(node, ast.IfExp):
            self.taints_of(node.test)
            return self.taints_of(node.body) | self.taints_of(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = frozenset()
            for elt in node.elts:
                out |= self.taints_of(elt)
            return out
        if isinstance(node, (ast.Set, ast.SetComp, ast.DictComp)):
            # building an unordered container launders *value* taint;
            # its iteration order is a fresh set-order source later
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and sub is not node:
                    self._call(sub)
            return frozenset()
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            out = self.taints_of(node.elt) if not isinstance(node.elt, ast.Name) else frozenset()
            for gen in node.generators:
                out |= self.taints_of(gen.iter)
                if self.types.kind(gen.iter) is ExprKind.SET:
                    rendered = dotted_name(gen.iter) or "a set"
                    out |= {
                        self._source(
                            "set order",
                            f"comprehension over set `{rendered}`",
                            gen.iter,
                        )
                    }
            return out
        if isinstance(node, ast.JoinedStr):
            out = frozenset()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.taints_of(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.taints_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taints_of(node.value)
        if isinstance(node, ast.Await):
            return self.taints_of(node.value)
        if isinstance(node, ast.NamedExpr):
            taints = self.taints_of(node.value)
            self._bind(node.target, taints)
            return taints
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                if key is not None:
                    out |= self.taints_of(key)
            for value in node.values:
                out |= self.taints_of(value)
            return out
        if isinstance(node, ast.Slice):
            out = frozenset()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self.taints_of(part)
            return out
        return frozenset()

    # -- calls ----------------------------------------------------------
    def _call(self, node: ast.Call) -> frozenset:
        func = node.func
        name = self._terminal(func)
        arg_taints = [self.taints_of(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self.taints_of(kw.value) for kw in node.keywords
        }
        all_args: frozenset = frozenset()
        for taints in arg_taints:
            all_args |= taints
        for taints in kw_taints.values():
            all_args |= taints

        # 1. sink detection — name-based, like RL003, so an unresolved
        #    receiver cannot hide the protocol boundary
        is_emit = name in _EMIT_NAMES
        is_rng = isinstance(func, ast.Attribute) and name in _RNG_METHODS
        if is_emit or is_rng:
            sink = SinkHit(
                name=name or "?",
                rel_path=self.fn.rel_path,
                line=getattr(node, "lineno", 0),
            )
            for taint in all_args:
                if isinstance(taint, _Param):
                    self.param_to_sink.setdefault(taint.index, set()).add(
                        _SinkFlow(sink=sink, path=(self.fn.display,))
                    )
                else:
                    self.flows.append(
                        Flow(
                            source=taint.source,
                            sink=sink,
                            path=(*taint.via, self.fn.display),
                        )
                    )
            return frozenset()

        # 2. direct sources
        resolved = self.imports.resolve(func) if isinstance(
            func, (ast.Name, ast.Attribute)
        ) else None
        if name in ("id", "hash") and isinstance(func, ast.Name) and resolved == name:
            kind = f"{name}()"
            return frozenset(
                {self._source(kind, f"builtin `{name}()` value", node)}
            )
        if resolved in _FS_ORDER_CALLS:
            return frozenset(
                {self._source("fs order", f"`{resolved}()` listing order", node)}
            )
        if resolved in _ENVIRON_CALLS or (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and self.imports.resolve(func.value) == "os.environ"
        ):
            return frozenset(
                {self._source("os.environ", f"`{resolved or 'os.environ.get'}()` read", node)}
            )
        if isinstance(func, ast.Attribute) and name in _FS_ORDER_METHODS:
            return frozenset(
                {self._source("fs order", f"`.{name}()` listing order", node)}
            )
        if isinstance(func, ast.Attribute) and name == "glob":
            # Path.glob — but s.glob on arbitrary objects is rare enough
            return frozenset(
                {self._source("fs order", "`.glob()` listing order", node)}
            )

        # 3. order materialization over set-typed values
        if name in _ORDER_MATERIALIZERS and isinstance(func, ast.Name) and node.args:
            if self.types.kind(node.args[0]) is ExprKind.SET:
                rendered = dotted_name(node.args[0]) or "a set"
                return all_args | {
                    self._source(
                        "set order", f"`{name}()` over set `{rendered}`", node
                    )
                }
            return all_args
        if (
            isinstance(func, ast.Attribute)
            and name == "pop"
            and self.types.kind(func.value) is ExprKind.SET
        ):
            rendered = dotted_name(func.value) or "a set"
            return frozenset(
                {self._source("set order", f"`.pop()` from set `{rendered}`", node)}
            )

        # 4. laundering builtins define an explicit order (or an
        #    order-free scalar): taint stops here
        if name in _LAUNDERING_CALLS and isinstance(func, ast.Name):
            return frozenset()

        # 5. project-resolved calls: apply callee summaries
        candidates = self.graph.resolve_exact(node, self.fn)
        if candidates:
            out: frozenset = frozenset()
            for callee in candidates:
                out |= self._apply_summary(node, callee, arg_taints, kw_taints)
            return out
        # propagation-only tier: by-method-name candidates contribute
        # return taint, never new sink flows
        for callee in self.graph.resolve_by_method_name(node):
            summary = self.summaries.get(callee.qualname, _EMPTY)
            if summary.return_taints:
                return self._returned(summary, callee) | all_args

        # 6. unknown call: conservatively pass taint through (a helper
        #    we cannot see does not launder order), including the
        #    receiver of method calls (`tainted.join(...)`)
        if isinstance(func, ast.Attribute):
            all_args |= self.taints_of(func.value)
        return all_args

    def _returned(self, summary: _Summary, callee: FunctionInfo) -> frozenset:
        return frozenset(
            _Tainted(source=t.source, via=(*t.via, callee.display))
            for t in summary.return_taints
        )

    def _apply_summary(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_taints: list[frozenset],
        kw_taints: dict[str | None, frozenset],
    ) -> frozenset:
        summary = self.summaries.get(callee.qualname, _EMPTY)
        offset = (
            1
            if callee.is_method
            and isinstance(node.func, ast.Attribute)
            and callee.params
            and callee.params[0] in ("self", "cls")
            else 0
        )
        bound: list[tuple[int, frozenset]] = [
            (i + offset, taints) for i, taints in enumerate(arg_taints)
        ]
        callee_index = {p: i for i, p in enumerate(callee.params)}
        for kw_name, taints in kw_taints.items():
            if kw_name is not None and kw_name in callee_index:
                bound.append((callee_index[kw_name], taints))
        out: frozenset = frozenset()
        for index, taints in bound:
            if not taints:
                continue
            for flow in summary.sinks_for(index):
                for taint in taints:
                    if isinstance(taint, _Param):
                        self.param_to_sink.setdefault(taint.index, set()).add(
                            _SinkFlow(sink=flow.sink, path=(self.fn.display, *flow.path))
                        )
                    else:
                        self.flows.append(
                            Flow(
                                source=taint.source,
                                sink=flow.sink,
                                path=(*taint.via, self.fn.display, *flow.path),
                            )
                        )
            if index in summary.param_to_return:
                out |= taints
        return out | self._returned(summary, callee)

    def summary(self) -> _Summary:
        return _Summary(
            param_to_sink=tuple(
                (i, tuple(sorted(flows, key=lambda f: (f.sink.rel_path, f.sink.line, f.path))))
                for i, flows in sorted(self.param_to_sink.items())
            ),
            param_to_return=frozenset(self.param_to_return),
            return_taints=tuple(
                sorted(
                    self.return_taints,
                    key=lambda t: (t.source.rel_path, t.source.line, t.via),
                )
            ),
        )


def analyze_program(files: list[ProgramFile]) -> tuple[CallGraph, list[Flow]]:
    """Fixpoint the summaries, then collect cross-boundary flows."""
    graph = build_call_graph(files)
    types_by_path = {
        f.rel_path: SetTypeInferencer(f.tree) for f in files
    }
    imports_by_path = {
        f.rel_path: ImportMap(f.tree) for f in files
    }
    summaries: dict[str, _Summary] = {}
    functions = list(graph.functions.values())
    for _ in range(_MAX_PASSES):
        changed = False
        for fn in functions:
            analysis = _FunctionPass(
                fn,
                graph,
                summaries,
                types_by_path[fn.rel_path],
                imports_by_path[fn.rel_path],
            )
            analysis.run()
            new = analysis.summary()
            if summaries.get(fn.qualname) != new:
                summaries[fn.qualname] = new
                changed = True
        if not changed:
            break
    flows: list[Flow] = []
    seen: set[tuple] = set()
    for fn in functions:
        analysis = _FunctionPass(
            fn,
            graph,
            summaries,
            types_by_path[fn.rel_path],
            imports_by_path[fn.rel_path],
        )
        analysis.run()
        for flow in analysis.flows:
            # purely intra-function flows are RL003's territory
            if len(flow.path) <= 1 and flow.source.function == fn.display:
                continue
            key = (
                flow.source.rel_path,
                flow.source.line,
                flow.sink.rel_path,
                flow.sink.line,
                flow.path,
            )
            if key in seen:
                continue
            seen.add(key)
            flows.append(flow)
    flows.sort(
        key=lambda f: (f.source.rel_path, f.source.line, f.sink.rel_path, f.sink.line)
    )
    return graph, flows


@register_program
class CrossBoundaryNondeterminism(ProgramRule):
    """Nondeterministic source reaching a protocol sink across functions.

    The whole-program companion to RL003: a set's iteration order (or
    an ``id()``/``hash()``/``os.environ``/directory-listing value)
    that travels through helpers — across function and module
    boundaries — into a transport send or an RNG draw makes an
    implementation accident protocol behaviour. The finding is
    anchored at the source and prints the full path so the fix (sort
    at the boundary) has an address.
    """

    code = "RL007"
    name = "cross-boundary-nondeterminism"
    rationale = (
        "nondeterministic order that crosses a function boundary into a "
        "protocol sink breaks replay in ways no per-file rule can see"
    )

    def run(self, program: Program) -> None:
        _graph, flows = program.service(
            "dataflow", lambda: analyze_program(program.files)
        )
        for flow in flows:
            chain = " -> ".join(flow.path)
            program.findings.append(
                self._finding(flow, chain)
            )

    def _finding(self, flow: Flow, chain: str):
        from repro.analysis.reprolint.engine import Finding

        return Finding(
            rule=self.code,
            path=flow.source.rel_path,
            line=flow.source.line,
            col=flow.source.col,
            message=(
                f"nondeterministic {flow.source.kind} from "
                f"{flow.source.detail} reaches protocol sink "
                f"`{flow.sink.name}(...)` at {flow.sink.rel_path}:{flow.sink.line} "
                f"via {chain}; make the order explicit (e.g. sorted(...)) "
                "before it crosses the function boundary"
            ),
        )
