"""``python -m repro.analysis`` — the reprolint command line.

Exit codes: 0 clean, 1 findings, 2 usage/IO error — the contract the
CI gate and pre-commit hook rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.reprolint.engine import (
    LintConfig,
    Linter,
    iter_python_files,
    rule_code_span,
)
from repro.analysis.reprolint.report import (
    active,
    render_human,
    render_json,
    render_rule_catalog,
)

__all__ = ["main", "build_parser", "run"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "reprolint: determinism/protocol static analysis for this "
            f"repository (rules {rule_code_span()}; see tests/README.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default="", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by pragmas",
    )
    parser.add_argument(
        "--allow-undocumented", action="store_true",
        help="do not require a justification on disable pragmas",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="base directory for reported paths (default: cwd)",
    )
    parser.add_argument(
        "--catalog", default=None, metavar="FILE",
        help="obs/events.py-style file to read the RL004 kind catalog from "
        "(default: the installed repro.obs.events)",
    )
    parser.add_argument(
        "--stream-owners", default=None, metavar="FILE",
        help="sim/rng.py-style file to read the RL008 STREAM_OWNERS registry "
        "from (default: the installed repro.sim.rng)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="content-hash-keyed result cache: only re-analyze files whose "
        "content changed (created on first use)",
    )
    return parser


def _codes(spec: str | None) -> tuple | None:
    if spec is None:
        return None
    return tuple(code.strip() for code in spec.split(",") if code.strip())


def run(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    config = LintConfig(
        select=_codes(args.select),
        ignore=_codes(args.ignore) or (),
        require_justification=not args.allow_undocumented,
        trace_catalog_path=Path(args.catalog) if args.catalog else None,
        stream_owners_path=Path(args.stream_owners) if args.stream_owners else None,
    )
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2
    files = list(iter_python_files(paths))
    linter = Linter(config)
    root = Path(args.root) if args.root else None
    cache = None
    if args.cache:
        from repro.analysis.reprolint.cache import LintCache

        cache = LintCache(Path(args.cache), config)
    findings = linter.lint_paths(paths, root=root, cache=cache)
    if cache is not None:
        cache.save()
        print(
            f"reprolint: cache {cache.file_hits} hit(s), "
            f"{cache.file_misses} miss(es), program "
            f"{'hit' if cache.program_hit else 'miss'}",
            file=sys.stderr,
        )
    if args.json:
        print(render_json(findings, len(files)))
    else:
        print(render_human(findings, len(files), show_suppressed=args.show_suppressed))
    return 1 if active(findings) else 0


def main() -> None:  # pragma: no cover - thin wrapper
    try:
        sys.exit(run())
    except BrokenPipeError:
        # downstream closed the pipe (e.g. `... --json | head`); exit with
        # the conventional SIGPIPE status instead of a traceback
        sys.stderr.close()
        sys.exit(141)
