"""reprolint: the repository's determinism/protocol static-analysis pass.

Library API::

    from repro.analysis.reprolint import Linter, LintConfig

    findings = Linter().lint_paths([Path("src")])
    gating = [f for f in findings if not f.suppressed]

Command line::

    python -m repro.analysis src/          # lint the tree
    python -m repro.analysis --list-rules  # the RL001-RL006 catalog
    python -m repro lint src/              # same, via the main CLI

Rule catalog and the determinism contract it enforces: tests/README.md.
"""

from repro.analysis.reprolint.engine import (
    Finding,
    LintConfig,
    Linter,
    Pragma,
    Rule,
    RuleContext,
    parse_pragmas,
    register,
    registered_rules,
)
from repro.analysis.reprolint.report import active, render_human, render_json
from repro.analysis.reprolint.rules import load_trace_catalog

__all__ = [
    "Finding",
    "LintConfig",
    "Linter",
    "Pragma",
    "Rule",
    "RuleContext",
    "active",
    "load_trace_catalog",
    "parse_pragmas",
    "register",
    "registered_rules",
    "render_human",
    "render_json",
]
