"""Kademlia DHT substrate: XOR routing, iterative lookups, ENR crawls."""

from repro.dht.enr import Enr, EnrDirectory, node_id_for_address
from repro.dht.kademlia import (
    ALPHA,
    RPC_TIMEOUT,
    FindNode,
    FindValue,
    KademliaNode,
    LookupResult,
    Nodes,
    Store,
    Value,
)
from repro.dht.routing import DEFAULT_K, ID_BITS, RoutingTable, bucket_index, xor_distance

__all__ = [
    "Enr",
    "EnrDirectory",
    "node_id_for_address",
    "ALPHA",
    "RPC_TIMEOUT",
    "FindNode",
    "FindValue",
    "KademliaNode",
    "LookupResult",
    "Nodes",
    "Store",
    "Value",
    "DEFAULT_K",
    "ID_BITS",
    "RoutingTable",
    "bucket_index",
    "xor_distance",
]
