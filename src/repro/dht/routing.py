"""Kademlia XOR metric and k-bucket routing tables [Maymounkov &
Mazieres, IPTPS'02].

Node IDs live in a 256-bit keyspace (the hash of the node's public
key, as in Ethereum's discv5). The routing table keeps up to ``k``
contacts per bucket, bucket ``i`` covering peers whose XOR distance
has its highest set bit at position ``i``. In the simulation, tables
are filled from the crawl model (``repro.dht.enr``) rather than by
live liveness probing, matching how the paper's nodes build views by
periodically crawling the DHT.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["xor_distance", "bucket_index", "RoutingTable", "ID_BITS", "DEFAULT_K"]

ID_BITS = 256
DEFAULT_K = 16


def xor_distance(a: int, b: int) -> int:
    """The Kademlia metric: d(a, b) = a XOR b."""
    return a ^ b


def bucket_index(own_id: int, other_id: int) -> int:
    """Index of the bucket holding ``other_id``: log2 of the distance."""
    distance = own_id ^ other_id
    if distance == 0:
        raise ValueError("a node does not bucket itself")
    return distance.bit_length() - 1


class RoutingTable:
    """k-buckets for one node.

    Stores node *ids*; the overlay maps ids to network addresses.
    Insertion follows least-recently-seen eviction-free semantics
    (buckets simply cap at k, oldest entries win), which is the
    classic behaviour in a stable network.
    """

    def __init__(self, own_id: int, k: int = DEFAULT_K) -> None:
        if k < 1:
            raise ValueError("bucket size k must be positive")
        self.own_id = own_id
        self.k = k
        self._buckets: dict[int, list[int]] = {}

    def insert(self, node_id: int) -> bool:
        """Add a contact; returns False if ignored (self or full bucket)."""
        if node_id == self.own_id:
            return False
        index = bucket_index(self.own_id, node_id)
        bucket = self._buckets.setdefault(index, [])
        if node_id in bucket:
            return False
        if len(bucket) >= self.k:
            return False
        bucket.append(node_id)
        return True

    def remove(self, node_id: int) -> None:
        index = bucket_index(self.own_id, node_id)
        bucket = self._buckets.get(index)
        if bucket and node_id in bucket:
            bucket.remove(node_id)

    def populate(self, node_ids: Iterable[int]) -> int:
        """Bulk-fill from a crawl; returns the number inserted."""
        return sum(1 for node_id in node_ids if self.insert(node_id))

    def closest(self, target: int, count: int | None = None) -> list[int]:
        """The ``count`` known ids closest to ``target`` (default k)."""
        count = count if count is not None else self.k
        contacts = [node_id for bucket in self._buckets.values() for node_id in bucket]
        contacts.sort(key=lambda node_id: node_id ^ target)
        return contacts[:count]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def bucket_sizes(self) -> dict[int, int]:
        return {index: len(bucket) for index, bucket in self._buckets.items()}
