"""Kademlia protocol over the simulated lossy transport.

Implements the RPCs and iterative lookup procedure the DHT DAS
baseline needs (Section 8.1 "Comparison to baselines" and [12]):

- ``FIND_NODE`` / ``NODES``: routing-table walks toward a target id;
- ``STORE``: place a value (a parcel of cells) at a node;
- ``FIND_VALUE`` / ``VALUE``: like FIND_NODE but short-circuits when a
  node on the path holds the value.

Lookups are iterative with ``alpha`` parallelism and per-RPC timeouts
(UDP may drop queries or replies silently — discv5-style). The
simulation's routing tables are pre-populated from the ENR directory,
modelling nodes that have already crawled the network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.dht.enr import EnrDirectory
from repro.dht.routing import DEFAULT_K, RoutingTable
from repro.net.transport import Datagram, Network
from repro.sim.engine import Event, Simulator

__all__ = [
    "FindNode",
    "FindValue",
    "Nodes",
    "Store",
    "Value",
    "KademliaNode",
    "LookupResult",
    "ALPHA",
    "RPC_TIMEOUT",
]

ALPHA = 3  # parallel in-flight RPCs per lookup
RPC_TIMEOUT = 0.5  # seconds before a silent RPC is written off
RPC_HEADER_BYTES = 100
CONTACT_BYTES = 40  # id + endpoint in a NODES reply


@dataclass(frozen=True)
class FindNode:
    target: int
    lookup_id: int
    slot: int = -1

    @property
    def size(self) -> int:
        return RPC_HEADER_BYTES + 32


@dataclass(frozen=True)
class FindValue:
    key: int
    lookup_id: int
    slot: int = -1

    @property
    def size(self) -> int:
        return RPC_HEADER_BYTES + 32


@dataclass(frozen=True)
class Nodes:
    target: int
    lookup_id: int
    contacts: tuple[int, ...]  # node ids
    slot: int = -1

    @property
    def size(self) -> int:
        return RPC_HEADER_BYTES + CONTACT_BYTES * len(self.contacts)


@dataclass(frozen=True)
class Store:
    key: int
    value_size: int
    slot: int = -1

    @property
    def size(self) -> int:
        return RPC_HEADER_BYTES + 32 + self.value_size


@dataclass(frozen=True)
class Value:
    key: int
    lookup_id: int
    value_size: int
    slot: int = -1

    @property
    def size(self) -> int:
        return RPC_HEADER_BYTES + 32 + self.value_size


@dataclass
class LookupResult:
    """Outcome of an iterative lookup."""

    target: int
    closest: list[int] = field(default_factory=list)  # node ids
    value_size: int | None = None
    value_holder: int | None = None
    rpcs_sent: int = 0

    @property
    def found_value(self) -> bool:
        return self.value_size is not None


@dataclass
class _Lookup:
    """State of one in-flight iterative lookup."""

    lookup_id: int
    target: int
    find_value: bool
    slot: int
    callback: Callable[[LookupResult], None]
    shortlist: dict[int, int] = field(default_factory=dict)  # id -> distance
    queried: set[int] = field(default_factory=set)
    in_flight: dict[int, Event] = field(default_factory=dict)  # id -> timeout
    responded: set[int] = field(default_factory=set)
    result: LookupResult = None  # type: ignore[assignment]
    done: bool = False


class KademliaNode:
    """One DHT participant bound to a network address."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: EnrDirectory,
        address: int,
        k: int = DEFAULT_K,
        rng: random.Random | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.directory = directory
        self.address = address
        self.node_id = directory.record_for(address).node_id
        self.table = RoutingTable(self.node_id, k)
        self.k = k
        self.rng = rng if rng is not None else random.Random(address)
        self.storage: dict[int, int] = {}  # key -> value size
        self._lookups: dict[int, _Lookup] = {}
        self._next_lookup_id = 0
        self.on_store: Callable[[int, int], None] | None = None

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def bootstrap_from_directory(self) -> None:
        """Fill k-buckets from the crawled ENR set (randomized order)."""
        ids = [i for i in self.directory.all_ids if i != self.node_id]
        self.rng.shuffle(ids)
        self.table.populate(ids)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def lookup(
        self,
        target: int,
        callback: Callable[[LookupResult], None],
        find_value: bool = False,
        slot: int = -1,
    ) -> None:
        """Iteratively locate the k closest nodes to ``target`` (or a value)."""
        lookup_id = self._next_lookup_id
        self._next_lookup_id += 1
        state = _Lookup(lookup_id, target, find_value, slot, callback)
        state.result = LookupResult(target)
        for node_id in self.table.closest(target, self.k):
            state.shortlist[node_id] = node_id ^ target
        self._lookups[lookup_id] = state
        if not state.shortlist:
            self._finish(state)
            return
        self._advance(state)

    def store(self, key: int, value_size: int, replicas: int, slot: int = -1,
              callback: Callable[[LookupResult], None] | None = None) -> None:
        """put(key): locate the closest nodes, then STORE at ``replicas``."""

        def after_lookup(result: LookupResult) -> None:
            for node_id in result.closest[:replicas]:
                address = self.directory.address_of(node_id)
                if address is None:
                    continue
                msg = Store(key, value_size, slot)
                self.network.send(self.address, address, msg, msg.size)
            if callback is not None:
                callback(result)

        self.lookup(key, after_lookup, find_value=False, slot=slot)

    def get(self, key: int, callback: Callable[[LookupResult], None], slot: int = -1) -> None:
        """get(key): iterative FIND_VALUE."""
        self.lookup(key, callback, find_value=True, slot=slot)

    # ------------------------------------------------------------------
    # lookup engine
    # ------------------------------------------------------------------
    def _advance(self, state: _Lookup) -> None:
        if state.done:
            return
        # candidates not yet queried, closest first
        candidates = sorted(
            (node_id for node_id in state.shortlist if node_id not in state.queried),
            key=lambda node_id: node_id ^ state.target,
        )
        # termination: the k closest known have all been queried/answered
        best = sorted(state.shortlist, key=lambda node_id: node_id ^ state.target)[: self.k]
        if not candidates or all(node_id in state.responded for node_id in best):
            if not state.in_flight:
                self._finish(state)
            return
        slots_free = ALPHA - len(state.in_flight)
        for node_id in candidates[:max(0, slots_free)]:
            self._query(state, node_id)

    def _query(self, state: _Lookup, node_id: int) -> None:
        state.queried.add(node_id)
        address = self.directory.address_of(node_id)
        if address is None:
            return
        if state.find_value:
            msg: object = FindValue(state.target, state.lookup_id, state.slot)
        else:
            msg = FindNode(state.target, state.lookup_id, state.slot)
        self.network.send(self.address, address, msg, msg.size)
        state.result.rpcs_sent += 1
        timer = self.sim.call_after(RPC_TIMEOUT, lambda: self._on_timeout(state, node_id))
        state.in_flight[node_id] = timer

    def _on_timeout(self, state: _Lookup, node_id: int) -> None:
        if state.done:
            return
        state.in_flight.pop(node_id, None)
        self._advance(state)

    def _finish(self, state: _Lookup) -> None:
        if state.done:
            return
        state.done = True
        for timer in state.in_flight.values():
            timer.cancel()
        state.in_flight.clear()
        self._lookups.pop(state.lookup_id, None)
        state.result.closest = sorted(
            (node_id for node_id in state.shortlist if node_id in state.responded),
            key=lambda node_id: node_id ^ state.target,
        )[: self.k]
        if not state.result.closest:
            # nobody answered; fall back to routing-table knowledge
            state.result.closest = self.table.closest(state.target, self.k)
        state.callback(state.result)

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if isinstance(payload, FindNode):
            contacts = tuple(self.table.closest(payload.target, self.k))
            reply = Nodes(payload.target, payload.lookup_id, contacts, payload.slot)
            self.network.send(self.address, dgram.src, reply, reply.size)
        elif isinstance(payload, FindValue):
            if payload.key in self.storage:
                value = Value(
                    payload.key, payload.lookup_id, self.storage[payload.key], payload.slot
                )
                self.network.send(self.address, dgram.src, value, value.size)
            else:
                contacts = tuple(self.table.closest(payload.key, self.k))
                reply = Nodes(payload.key, payload.lookup_id, contacts, payload.slot)
                self.network.send(self.address, dgram.src, reply, reply.size)
        elif isinstance(payload, Store):
            self.storage[payload.key] = payload.value_size
            if self.on_store is not None:
                self.on_store(payload.key, payload.value_size)
        elif isinstance(payload, Nodes):
            self._on_nodes(dgram.src, payload)
        elif isinstance(payload, Value):
            self._on_value(dgram.src, payload)

    def _on_nodes(self, src_address: int, msg: Nodes) -> None:
        state = self._lookups.get(msg.lookup_id)
        if state is None or state.done:
            return
        src_id = self.directory.record_for(src_address).node_id
        self._mark_responded(state, src_id)
        for node_id in msg.contacts:
            if node_id != self.node_id:
                state.shortlist.setdefault(node_id, node_id ^ state.target)
        self._advance(state)

    def _on_value(self, src_address: int, msg: Value) -> None:
        state = self._lookups.get(msg.lookup_id)
        if state is None or state.done:
            return
        src_id = self.directory.record_for(src_address).node_id
        self._mark_responded(state, src_id)
        state.result.value_size = msg.value_size
        state.result.value_holder = src_id
        self._finish(state)

    def _mark_responded(self, state: _Lookup, node_id: int) -> None:
        state.responded.add(node_id)
        timer = state.in_flight.pop(node_id, None)
        if timer is not None:
            timer.cancel()
