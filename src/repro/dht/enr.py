"""Ethereum Node Records and the view-crawl model (Section 4.1).

Every node advertises an ENR — its 256-bit ID, public key and contact
information — in the discovery DHT; participants build their *views*
by periodically crawling it, which takes about a minute. Views
converge toward the actual node set but may be incomplete or contain
departed nodes.

``EnrDirectory`` is the simulation's stand-in for the crawlable DHT
content: a registry mapping ids to addresses from which views are
drawn (complete, random-subset, or stale), used both by PANDAS nodes
and the Kademlia overlay bootstrap.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

__all__ = ["Enr", "EnrDirectory", "node_id_for_address"]


def node_id_for_address(address: int, namespace: int = 0) -> int:
    """Deterministic 256-bit DHT id for a simulation address."""
    digest = hashlib.sha256(f"enr|{namespace}|{address}".encode()).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class Enr:
    """One node record: DHT id plus network contact (the address)."""

    node_id: int
    address: int

    # typical serialized ENR size on the wire
    WIRE_BYTES = 300


class EnrDirectory:
    """The global registry of ENRs, crawlable for views."""

    def __init__(self, namespace: int = 0) -> None:
        self.namespace = namespace
        self._by_id: dict[int, Enr] = {}
        self._by_address: dict[int, Enr] = {}

    def register(self, address: int) -> Enr:
        record = Enr(node_id_for_address(address, self.namespace), address)
        self._by_id[record.node_id] = record
        self._by_address[address] = record
        return record

    def unregister(self, address: int) -> None:
        record = self._by_address.pop(address, None)
        if record is not None:
            del self._by_id[record.node_id]

    def record_for(self, address: int) -> Enr:
        return self._by_address[address]

    def by_id(self, node_id: int) -> Enr | None:
        return self._by_id.get(node_id)

    def address_of(self, node_id: int) -> int | None:
        record = self._by_id.get(node_id)
        return record.address if record is not None else None

    @property
    def all_ids(self) -> list[int]:
        return list(self._by_id)

    @property
    def all_addresses(self) -> list[int]:
        return list(self._by_address)

    def crawl(self, rng: random.Random, completeness: float = 1.0) -> set[int]:
        """A crawl result: a random ``completeness`` fraction of addresses."""
        if not 0.0 < completeness <= 1.0:
            raise ValueError("completeness must be in (0, 1]")
        addresses = self.all_addresses
        if completeness >= 1.0:
            return set(addresses)
        keep = max(1, int(round(completeness * len(addresses))))
        return set(rng.sample(addresses, keep))

    def __len__(self) -> int:
        return len(self._by_id)
