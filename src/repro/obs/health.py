"""Post-run SLO analysis: from a telemetry series to a verdict.

``repro health`` consumes the JSONL series written by
:func:`repro.obs.export.write_series_jsonl` and answers the paper's
operational question — did this run hold its service levels? — with a
machine-readable report:

- **sampling deadline-hit rate**: exact deadline-hit counters over the
  expected per-slot sample population (Fig 9's headline number);
- **per-phase p50/p99**: rebuilt from the deterministic phase-latency
  histograms, the Fig 9 decomposition of where slot time went;
- **queue-depth p99**: over the sampled ``inbox_depth_max`` series —
  the backlog dynamic ROADMAP item 5 names as the pipeline's headline;
- **shed rate and overload onset**: total load shed by kind, plus the
  first slot in which any shed/drop/overflow signal became non-zero.

The verdict is ``pass`` unless a configured threshold is violated;
each violation contributes one human-readable reason. The analyzer is
pure post-processing over the exported records — it can run on a file
from another machine, long after the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.telemetry import Histogram

__all__ = [
    "HealthReport",
    "SloThresholds",
    "analyze",
    "analyze_file",
    "format_report",
    "load_series",
]


@dataclass(frozen=True)
class SloThresholds:
    """What "healthy" means. ``None`` disables a criterion."""

    min_deadline_hit_rate: float = 0.9
    max_queue_depth_p99: float | None = None
    max_shed_total: float | None = None


@dataclass
class HealthReport:
    """Machine-readable outcome of one health analysis."""

    verdict: str  # "pass" | "fail"
    reasons: list[str] = field(default_factory=list)
    deadline_hit_rate: float | None = None
    expected_samples: int = 0
    completions: int = 0
    deadline_hits: int = 0
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    queue_depth_p99: float | None = None
    shed_total: float = 0.0
    sheds: dict[str, float] = field(default_factory=dict)
    queue_drops: dict[str, float] = field(default_factory=dict)
    overload_onset_slot: int | None = None
    samples: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.verdict == "pass"

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "reasons": self.reasons,
            "deadline_hit_rate": self.deadline_hit_rate,
            "expected_samples": self.expected_samples,
            "completions": self.completions,
            "deadline_hits": self.deadline_hits,
            "phases": self.phases,
            "queue_depth_p99": self.queue_depth_p99,
            "shed_total": self.shed_total,
            "sheds": self.sheds,
            "queue_drops": self.queue_drops,
            "overload_onset_slot": self.overload_onset_slot,
            "samples": self.samples,
            "meta": self.meta,
        }


def load_series(path: str | Path) -> list[dict[str, Any]]:
    """Read a telemetry series JSONL file back into records."""
    records: list[dict[str, Any]] = []
    with open(str(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _series_percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank-with-interpolation percentile over a raw series."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _counter_values(
    records: list[dict[str, Any]], name: str
) -> dict[tuple[tuple[str, str], ...], float]:
    out: dict[tuple[tuple[str, str], ...], float] = {}
    for record in records:
        if record.get("type") in ("counter", "gauge") and record.get("name") == name:
            key = tuple(sorted(record.get("labels", {}).items()))
            out[key] = float(record.get("value", 0.0))
    return out


def analyze(
    records: list[dict[str, Any]], thresholds: SloThresholds | None = None
) -> HealthReport:
    """Analyze exported series records against the SLO thresholds."""
    thresholds = thresholds if thresholds is not None else SloThresholds()
    meta = next(
        (r for r in records if r.get("type") == "meta"), {}
    )
    sample_rows = [r for r in records if r.get("type") == "sample"]
    report = HealthReport(verdict="pass", samples=len(sample_rows), meta=dict(meta))
    report.meta.pop("type", None)

    # --- deadline-hit rate (exact counters, not histogram estimates) --
    completions = _counter_values(records, "phase_completions_total")
    hits = _counter_values(records, "phase_deadline_hits_total")
    sampling_key = (("phase", "sampling"),)
    report.completions = int(completions.get(sampling_key, 0.0))
    report.deadline_hits = int(hits.get(sampling_key, 0.0))
    expected = int(meta.get("expected_samples", 0) or 0)
    if expected <= 0:
        expected = report.completions
    report.expected_samples = expected
    if expected > 0:
        report.deadline_hit_rate = report.deadline_hits / expected

    # --- per-phase latency percentiles from the histograms ------------
    for record in records:
        if (
            record.get("type") == "histogram"
            and record.get("name") == "phase_latency_seconds"
        ):
            phase = record.get("labels", {}).get("phase", "?")
            hist = Histogram.from_parts(
                record["bounds"], record["counts"], record.get("sum", 0.0)
            )
            entry: dict[str, float] = {"count": float(hist.count)}
            p50 = hist.quantile(0.5)
            p99 = hist.quantile(0.99)
            if p50 is not None:
                entry["p50"] = p50
            if p99 is not None:
                entry["p99"] = p99
            report.phases[phase] = entry

    # --- queue depth p99 over the sampled series ----------------------
    depth_series = [
        float(row["values"]["inbox_depth_max"])
        for row in sample_rows
        if "inbox_depth_max" in row.get("values", {})
    ]
    report.queue_depth_p99 = _series_percentile(depth_series, 0.99)

    # --- shed accounting and overload onset ---------------------------
    for key, value in _counter_values(records, "shed_total").items():
        label = dict(key).get("kind", "?")
        report.sheds[label] = value
    for key, value in _counter_values(records, "queue_drops_total").items():
        label = dict(key).get("reason", "?")
        report.queue_drops[label] = value
    report.shed_total = sum(report.sheds.values())
    slot_duration = float(meta.get("slot_duration", 12.0) or 12.0)
    for row in sample_rows:
        values = row.get("values", {})
        overload = sum(
            v
            for k, v in values.items()
            if k.startswith("shed_total")
            or k.startswith("queue_drops_total")
            or k == "inbox_overflows"
        )
        if overload > 0:
            report.overload_onset_slot = int(row["t"] // slot_duration)
            break

    # --- verdict ------------------------------------------------------
    if not sample_rows:
        report.reasons.append("no telemetry samples recorded")
    if report.deadline_hit_rate is None:
        report.reasons.append("no sampling completions recorded")
    elif report.deadline_hit_rate < thresholds.min_deadline_hit_rate:
        report.reasons.append(
            f"sampling deadline-hit rate {report.deadline_hit_rate:.3f} below "
            f"the {thresholds.min_deadline_hit_rate:.3f} floor"
        )
    if (
        thresholds.max_queue_depth_p99 is not None
        and report.queue_depth_p99 is not None
        and report.queue_depth_p99 > thresholds.max_queue_depth_p99
    ):
        report.reasons.append(
            f"queue-depth p99 {report.queue_depth_p99:.0f} above the "
            f"{thresholds.max_queue_depth_p99:.0f} ceiling"
        )
    if (
        thresholds.max_shed_total is not None
        and report.shed_total > thresholds.max_shed_total
    ):
        report.reasons.append(
            f"total shed {report.shed_total:.0f} above the "
            f"{thresholds.max_shed_total:.0f} ceiling"
        )
    if report.reasons:
        report.verdict = "fail"
    return report


def analyze_file(
    path: str | Path, thresholds: SloThresholds | None = None
) -> HealthReport:
    return analyze(load_series(path), thresholds)


def format_report(report: HealthReport) -> list[str]:
    """Human-readable report lines for the CLI."""
    lines = [f"verdict: {report.verdict.upper()}"]
    for reason in report.reasons:
        lines.append(f"  !! {reason}")
    if report.deadline_hit_rate is not None:
        lines.append(
            f"  deadline-hit rate  {report.deadline_hit_rate:.3f} "
            f"({report.deadline_hits}/{report.expected_samples})"
        )
    for phase in sorted(report.phases):
        entry = report.phases[phase]
        p50 = entry.get("p50")
        p99 = entry.get("p99")
        if p50 is not None and p99 is not None:
            lines.append(
                f"  {phase:<14}     p50 {p50 * 1e3:.0f} ms, p99 {p99 * 1e3:.0f} ms "
                f"(n={int(entry['count'])})"
            )
    if report.queue_depth_p99 is not None:
        lines.append(f"  queue-depth p99    {report.queue_depth_p99:.0f}")
    if report.sheds:
        shed = ", ".join(f"{k}={v:.0f}" for k, v in sorted(report.sheds.items()))
        lines.append(f"  shed               {shed}")
    if report.queue_drops:
        drops = ", ".join(
            f"{k}={v:.0f}" for k, v in sorted(report.queue_drops.items())
        )
        lines.append(f"  queue drops        {drops}")
    if report.overload_onset_slot is not None:
        lines.append(f"  overload onset     slot {report.overload_onset_slot}")
    lines.append(f"  samples            {report.samples} rows")
    return lines
