"""Telemetry export: JSONL time series + Prometheus text exposition.

One run produces one JSONL series file with typed records, written in
a deterministic order (meta header, then sample rows in time order,
then the final counter/gauge/histogram state sorted by name and label
key). ``repro health`` consumes exactly this file; tests byte-compare
it across runs.

The Prometheus text format is for humans and off-the-shelf tooling
(promtool, Grafana's explore view): the same final state rendered in
the standard exposition syntax, with cumulative ``_bucket`` rows, a
``+Inf`` bucket, ``_sum``/``_count``, and sorted families — pinned by
a golden-file test so the byte layout never drifts silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.telemetry import Histogram, Metric, Telemetry

__all__ = [
    "SERIES_SCHEMA",
    "prometheus_text",
    "read_series_jsonl",
    "series_records",
    "write_prometheus",
    "write_series_jsonl",
]

SERIES_SCHEMA = 1


def series_records(telemetry: Telemetry) -> list[dict[str, Any]]:
    """The run's full series as a list of typed, JSON-ready records."""
    meta: dict[str, Any] = {
        "type": "meta",
        "schema": SERIES_SCHEMA,
        "cadence": telemetry.cadence,
        "ticks": telemetry.ticks,
    }
    meta.update(telemetry.meta)
    records: list[dict[str, Any]] = [meta]
    for row in telemetry.samples:
        values = {k: v for k, v in row.items() if k != "t"}
        records.append({"type": "sample", "t": row["t"], "values": values})
    for name in sorted(telemetry.metrics):
        metric = telemetry.metrics[name]
        for key, value in metric.samples():
            labels = dict(zip(metric.label_names, key, strict=True))
            if isinstance(value, Histogram):
                record: dict[str, Any] = {
                    "type": "histogram",
                    "name": name,
                    "labels": labels,
                }
                record.update(value.to_dict())
            else:
                record = {
                    "type": metric.kind,
                    "name": name,
                    "labels": labels,
                    "value": value,
                }
            records.append(record)
    return records


def write_series_jsonl(telemetry: Telemetry, path: str | Path) -> int:
    """Write the series file; returns the number of records written."""
    records = series_records(telemetry)
    with open(str(path), "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=float) + "\n")
    return len(records)


def read_series_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read a series file back into its typed records."""
    records: list[dict[str, Any]] = []
    with open(str(path), encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    """Canonical number formatting: integers bare, floats via repr."""
    as_int = int(value)
    if value == as_int and abs(value) < 1e15:
        return str(as_int)
    return repr(value)


def _label_str(names: tuple[str, ...], key: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{v}"' for n, v in zip(names, key, strict=True)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _histogram_lines(
    full: str, metric: Metric, key: tuple[str, ...], hist: Histogram
) -> list[str]:
    lines: list[str] = []
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.counts, strict=False):
        cumulative += count
        labels = _label_str(metric.label_names, key, f'le="{_fmt(bound)}"')
        lines.append(f"{full}_bucket{labels} {cumulative}")
    labels = _label_str(metric.label_names, key, 'le="+Inf"')
    lines.append(f"{full}_bucket{labels} {hist.count}")
    base = _label_str(metric.label_names, key)
    lines.append(f"{full}_sum{base} {_fmt(hist.sum)}")
    lines.append(f"{full}_count{base} {hist.count}")
    return lines


def prometheus_text(telemetry: Telemetry, prefix: str = "repro_") -> str:
    """Final registry state in the Prometheus text exposition format.

    Families with no recorded children are omitted; everything else is
    emitted sorted by family name and label key, so two identical runs
    produce byte-identical expositions.
    """
    lines: list[str] = []
    for name in sorted(telemetry.metrics):
        metric = telemetry.metrics[name]
        samples = metric.samples()
        if not samples:
            continue
        full = prefix + name
        if metric.help:
            lines.append(f"# HELP {full} {metric.help}")
        lines.append(f"# TYPE {full} {metric.kind}")
        for key, value in samples:
            if isinstance(value, Histogram):
                lines.extend(_histogram_lines(full, metric, key, value))
            else:
                labels = _label_str(metric.label_names, key)
                lines.append(f"{full}{labels} {_fmt(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    telemetry: Telemetry, path: str | Path, prefix: str = "repro_"
) -> None:
    Path(path).write_text(prometheus_text(telemetry, prefix=prefix), encoding="utf-8")
