"""Timeline reconstruction: from a trace to "why was this node slow".

Consumes either live :class:`~repro.obs.events.TraceEvent` objects or
the flat dicts read back from a JSONL trace file — every helper
normalizes through :func:`as_dict` so the CLI can analyze traces from
disk exactly like in-memory ones.

The centerpiece is :func:`causal_report`: for one ``(slot, node)`` it
replays the query lifecycle (rounds attempted, peers queried, timeouts,
late replies, reconstructions, defense actions) and answers the
debugging question aggregate metrics cannot — *why did sampling take
X ms on this node*.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from collections.abc import Iterable, Mapping
from typing import Any

from repro.obs.events import QUERY_TERMINAL_KINDS, TraceEvent

__all__ = [
    "as_dict",
    "load_trace",
    "build_timelines",
    "QueryLifecycle",
    "query_lifecycles",
    "lifecycle_problems",
    "phase_completions",
    "slowest_nodes",
    "causal_report",
]

EventLike = TraceEvent | Mapping[str, Any]


def as_dict(event: EventLike) -> Mapping[str, Any]:
    """Normalize a TraceEvent or an already-flat mapping to a mapping."""
    if isinstance(event, TraceEvent):
        return event.to_dict()
    return event


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a JSONL trace file back into flat event dicts."""
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def build_timelines(
    events: Iterable[EventLike],
) -> dict[tuple[int, int], list[Mapping[str, Any]]]:
    """Group events into per-``(slot, node)`` timelines, time-ordered.

    Events without slot/node context (``-1``) are grouped under their
    ``-1`` key so global happenings (e.g. slot-less datagrams) stay
    inspectable without polluting node timelines.
    """
    timelines: dict[tuple[int, int], list[Mapping[str, Any]]] = {}
    for raw in events:
        event = as_dict(raw)
        key = (event.get("slot", -1), event.get("node", -1))
        timelines.setdefault(key, []).append(event)
    for timeline in timelines.values():
        timeline.sort(key=lambda e: e["t"])
    return timelines


# ----------------------------------------------------------------------
# query lifecycle
# ----------------------------------------------------------------------
@dataclass
class QueryLifecycle:
    """One request id from issue to termination."""

    req: int
    slot: int
    node: int
    peer: int
    round: int
    issued_at: float
    closed_at: float | None = None
    outcome: str | None = None  # response | timeout | cancel
    new_cells: int = 0
    late: bool = False
    usable: bool = False
    late_replies: int = 0

    @property
    def open(self) -> bool:
        return self.outcome is None


def query_lifecycles(events: Iterable[EventLike]) -> dict[int, QueryLifecycle]:
    """Reconstruct every query's lifecycle, keyed by request id."""
    lifecycles: dict[int, QueryLifecycle] = {}
    for raw in events:
        event = as_dict(raw)
        kind = event["kind"]
        req = event.get("req")
        if kind == "query_issue" and req is not None:
            lifecycles[req] = QueryLifecycle(
                req=req,
                slot=event.get("slot", -1),
                node=event.get("node", -1),
                peer=event.get("peer", -1),
                round=event.get("round", 0),
                issued_at=event["t"],
            )
        elif kind in QUERY_TERMINAL_KINDS and req is not None:
            life = lifecycles.get(req)
            if life is None or life.outcome is not None:
                # unissued or double-closed: surfaced by lifecycle_problems
                lifecycles.setdefault(
                    -req, QueryLifecycle(req, -1, -1, -1, 0, event["t"], outcome="orphan")
                )
                continue
            life.closed_at = event["t"]
            life.outcome = kind[len("query_") :]
            life.new_cells = event.get("new", 0)
            life.late = bool(event.get("late", False))
            life.usable = bool(event.get("usable", False))
    return lifecycles


def lifecycle_problems(events: Iterable[EventLike]) -> list[str]:
    """Violations of the one-terminal-per-request invariant.

    Every ``query_issue`` must be closed by exactly one of
    ``query_response`` / ``query_timeout`` / ``query_cancel``; a
    terminal without a matching open issue is equally a bug. Returns
    human-readable problem strings (empty list = invariant holds).
    """
    problems: list[str] = []
    open_reqs: dict[int, Mapping[str, Any]] = {}
    closed: dict[int, str] = {}
    for raw in events:
        event = as_dict(raw)
        kind = event["kind"]
        req = event.get("req")
        if kind == "query_issue":
            if req is None:
                problems.append(f"query_issue without req at t={event['t']}")
            elif req in open_reqs or req in closed:
                problems.append(f"req {req} issued twice")
            else:
                open_reqs[req] = event
        elif kind in QUERY_TERMINAL_KINDS:
            if req is None:
                problems.append(f"{kind} without req at t={event['t']}")
            elif req in closed:
                problems.append(f"req {req} closed twice ({closed[req]} then {kind})")
            elif req not in open_reqs:
                problems.append(f"req {req} closed ({kind}) but never issued")
            else:
                del open_reqs[req]
                closed[req] = kind
    for req in open_reqs:
        problems.append(f"req {req} issued but never closed")
    return problems


# ----------------------------------------------------------------------
# phase completion and ranking
# ----------------------------------------------------------------------
def phase_completions(
    events: Iterable[EventLike],
) -> dict[tuple[int, int], dict[str, float]]:
    """Per-``(slot, node)``: phase name -> completion time from slot start."""
    out: dict[tuple[int, int], dict[str, float]] = {}
    for raw in events:
        event = as_dict(raw)
        if event["kind"] != "phase":
            continue
        key = (event.get("slot", -1), event.get("node", -1))
        out.setdefault(key, {})[event["phase"]] = event.get("at", event["t"])
    return out


def slowest_nodes(
    events: Iterable[EventLike],
    slot: int = 0,
    phase: str = "sampling",
    count: int = 3,
) -> list[tuple[int, float | None]]:
    """Nodes ranked slowest-first by ``phase`` completion in ``slot``.

    Nodes that appear in the slot's trace but never completed the phase
    rank slowest of all (completion ``None``). The node universe is
    every node id seen in any event of the slot, so a node that only
    ever *received* traffic still shows up as a miss. Builders — the
    ids that emitted ``seed_slot`` — are excluded: they disseminate,
    they don't sample.
    """
    materialized = [as_dict(e) for e in events]
    completions = phase_completions(materialized)
    builders = {
        e.get("node", -1) for e in materialized if e["kind"] == "seed_slot"
    }
    nodes: set = set()
    for event in materialized:
        if (
            event.get("slot", -1) == slot
            and event.get("node", -1) >= 0
            and event["node"] not in builders
        ):
            nodes.add(event["node"])
    ranked: list[tuple[int, float | None]] = []
    for node in nodes:
        at = completions.get((slot, node), {}).get(phase)
        ranked.append((node, at))
    ranked.sort(key=lambda item: (-(math.inf if item[1] is None else item[1]), item[0]))
    return ranked[:count]


# ----------------------------------------------------------------------
# the causal report
# ----------------------------------------------------------------------
def causal_report(
    events: Iterable[EventLike], slot: int, node: int
) -> list[str]:
    """Why did this node's slot take as long as it did — as text lines.

    Replays the node's timeline: seed arrival, every fetch round with
    its query fates, reconstructions, defense actions and the phase
    completions, ending with a one-line summary suitable for a
    "slowest node" report.
    """
    mine = [
        as_dict(e)
        for e in events
        if as_dict(e).get("slot", -1) == slot and as_dict(e).get("node", -1) == node
    ]
    mine.sort(key=lambda e: e["t"])
    lives = [life for life in query_lifecycles(mine).values() if life.req > 0]

    lines: list[str] = []
    slot_start = None
    for event in mine:
        if event["kind"] in ("seed_recv", "phase", "fetch_start"):
            slot_start = event["t"] - event.get("at", 0.0)
            break

    def rel(t: float) -> str:
        if slot_start is None:
            return f"t={t * 1e3:.0f}ms"
        return f"{(t - slot_start) * 1e3:.0f}ms"

    seed = next((e for e in mine if e["kind"] == "seed_recv"), None)
    if seed is not None:
        lines.append(f"seed: first parcel at {rel(seed['t'])}")
    else:
        lines.append("seed: never received (fallback fetch path)")

    ingested = [e for e in mine if e["kind"] == "cells_ingest"]
    seed_cells = sum(e.get("new", 0) for e in ingested if e.get("source") == "seed")
    resp_cells = sum(e.get("new", 0) for e in ingested if e.get("source") == "response")
    reconstructed = sum(e.get("reconstructed", 0) for e in ingested)
    lines.append(
        f"cells: {seed_cells} from seeding, {resp_cells} from peers, "
        f"{reconstructed} by reconstruction"
    )

    by_round: dict[int, list[QueryLifecycle]] = {}
    for life in lives:
        by_round.setdefault(life.round, []).append(life)
    round_lines: list[str] = []
    for event in mine:
        if event["kind"] != "fetch_round":
            continue
        rnd = event.get("round", 0)
        fates = by_round.get(rnd, [])
        timeouts = sum(1 for f in fates if f.outcome == "timeout")
        cancels = sum(1 for f in fates if f.outcome == "cancel")
        answered = sum(1 for f in fates if f.outcome == "response")
        late = sum(1 for f in fates if f.outcome == "response" and f.late)
        round_lines.append(
            f"round {rnd} at {rel(event['t'])}: targets={event.get('targets', 0)} "
            f"queries={event.get('queries', 0)} answered={answered} ({late} late) "
            f"timeouts={timeouts} cancelled={cancels}"
        )
    # a node that never finishes keeps probing a long tail of identical
    # rounds — keep the report readable by eliding the middle
    if len(round_lines) > 12:
        elided = len(round_lines) - 10
        round_lines = round_lines[:8] + [f"... {elided} more round(s) ..."] + round_lines[-2:]
    lines.extend(round_lines)
    recycle_totals: dict[str, tuple[int, int]] = {}
    for event in mine:
        if event["kind"] != "query_recycle":
            continue
        pool = event.get("pool", "?")
        count, times = recycle_totals.get(pool, (0, 0))
        recycle_totals[pool] = (count + event.get("count", 0), times + 1)
    for pool, (count, times) in sorted(recycle_totals.items()):
        lines.append(f"recycled {count} {pool} peer(s) over {times} event(s)")

    defenses: dict[str, float] = {}
    for event in mine:
        if event["kind"] == "defense":
            name = event.get("defense", "?")
            defenses[name] = defenses.get(name, 0.0) + event.get("amount", 1.0)
    if defenses:
        lines.append(
            "defenses: "
            + ", ".join(f"{k}={int(v)}" for k, v in sorted(defenses.items()))
        )

    # overload causes (PR 7/8 trace kinds): a slow node under sustained
    # load is often not "unlucky peers" but backpressure — name it
    overflows = sum(1 for e in mine if e["kind"] == "queue_overflow")
    sheds: dict[str, float] = {}
    for event in mine:
        if event["kind"] == "load_shed":
            name = event.get("shed", "?")
            sheds[name] = sheds.get(name, 0.0) + event.get("amount", 1.0)
    backoff_waves = sum(1 for e in mine if e["kind"] == "retry_backoff")
    abandoned = sum(1 for e in mine if e["kind"] == "retry_abandoned")
    if overflows:
        lines.append(f"overload: inbox overflow dropped {overflows} datagram(s)")
    if sheds:
        lines.append(
            "overload: shed "
            + ", ".join(f"{k}={int(v)}" for k, v in sorted(sheds.items()))
        )
    if backoff_waves or abandoned:
        lines.append(
            f"overload: {backoff_waves} retry backoff wave(s), "
            f"{abandoned} retry(ies) abandoned at the deadline"
        )

    completions = phase_completions(mine).get((slot, node), {})
    for phase in ("consolidation", "sampling"):
        at = completions.get(phase)
        lines.append(
            f"{phase}: {'never completed' if at is None else f'done at {at * 1e3:.0f}ms'}"
        )

    peers = {life.peer for life in lives}
    timeouts = sum(1 for life in lives if life.outcome == "timeout")
    late = sum(1 for life in lives if life.outcome == "response" and life.late)
    sampling = completions.get("sampling")
    head = (
        f"sampling took {sampling * 1e3:.0f}ms"
        if sampling is not None
        else "sampling never completed"
    )
    why = (
        f"why: {head} — {len(by_round)} round(s), {len(peers)} peer(s) queried, "
        f"{timeouts} timeout(s), {late} late repl(ies), {reconstructed} cell(s) reconstructed"
    )
    causes: list[str] = []
    if overflows:
        causes.append(f"{overflows} inbox overflow(s)")
    if sheds:
        causes.append(f"{int(sum(sheds.values()))} shed")
    if abandoned:
        causes.append(f"{abandoned} abandoned retry(ies)")
    if causes:
        why += "; overloaded: " + ", ".join(causes)
    lines.append(why)
    return lines
