"""Observability: structured event tracing, timelines and profiling.

The paper's evaluation is built from aggregate distributions, which is
what :mod:`repro.sim.metrics` captures. Debugging *why* one node
missed the 4 s sampling deadline needs the sequence instead: which
queries went out in which Algorithm-1 round, which timed out, which
peer was quarantined, which cell arrived via reconstruction. This
package provides that layer:

- :mod:`repro.obs.events` — ``TraceRecorder``, a ring-buffered,
  zero-RNG structured event log fed by hooks in the transport, node,
  fetcher, builder and fault injector;
- :mod:`repro.obs.sinks` — pluggable sinks (in-memory, JSONL files,
  Chrome ``trace_event`` JSON for about://tracing timelines);
- :mod:`repro.obs.timeline` — per-node slot timelines and the
  slowest-node "why did sampling take X ms" causal report;
- :mod:`repro.obs.profiler` — opt-in ``Simulator`` instrumentation
  attributing wall-clock time and event counts to callback sites;
- :mod:`repro.obs.telemetry` — the dimensional run-health registry
  (counters, gauges, deterministic histograms) with its sim-time
  cadence sampler;
- :mod:`repro.obs.export` — JSONL time series and Prometheus text
  exposition of a run's telemetry;
- :mod:`repro.obs.health` — the post-run SLO analyzer behind
  ``repro health``;
- :mod:`repro.obs.progress` — the wall-clock heartbeat progress line
  for long runs (RL002-allowlisted, like the profiler).

Tracing and telemetry are strictly behavior-neutral: recorders never
consume protocol RNG streams, and telemetry's sampler events are
read-only, so ``MetricsRecorder.fingerprint()`` is bit-identical with
observation on or off (enforced by tests/test_obs_trace.py and
tests/test_obs_telemetry.py).
"""

from repro.obs.events import KINDS, QUERY_TERMINAL_KINDS, TraceEvent, TraceRecorder
from repro.obs.health import HealthReport, SloThresholds
from repro.obs.profiler import CallbackProfiler
from repro.obs.progress import Heartbeat
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink
from repro.obs.telemetry import Histogram, Metric, Telemetry

__all__ = [
    "KINDS",
    "QUERY_TERMINAL_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "CallbackProfiler",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "Telemetry",
    "Metric",
    "Histogram",
    "Heartbeat",
    "HealthReport",
    "SloThresholds",
]
