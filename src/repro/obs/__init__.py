"""Observability: structured event tracing, timelines and profiling.

The paper's evaluation is built from aggregate distributions, which is
what :mod:`repro.sim.metrics` captures. Debugging *why* one node
missed the 4 s sampling deadline needs the sequence instead: which
queries went out in which Algorithm-1 round, which timed out, which
peer was quarantined, which cell arrived via reconstruction. This
package provides that layer:

- :mod:`repro.obs.events` — ``TraceRecorder``, a ring-buffered,
  zero-RNG structured event log fed by hooks in the transport, node,
  fetcher, builder and fault injector;
- :mod:`repro.obs.sinks` — pluggable sinks (in-memory, JSONL files,
  Chrome ``trace_event`` JSON for about://tracing timelines);
- :mod:`repro.obs.timeline` — per-node slot timelines and the
  slowest-node "why did sampling take X ms" causal report;
- :mod:`repro.obs.profiler` — opt-in ``Simulator`` instrumentation
  attributing wall-clock time and event counts to callback sites.

Tracing is strictly behavior-neutral: recorders never consume protocol
RNG streams and never schedule simulator events, so
``MetricsRecorder.fingerprint()`` is bit-identical with tracing on or
off (enforced by tests/test_obs_trace.py).
"""

from repro.obs.events import KINDS, QUERY_TERMINAL_KINDS, TraceEvent, TraceRecorder
from repro.obs.profiler import CallbackProfiler
from repro.obs.sinks import ChromeTraceSink, JsonlSink, MemorySink

__all__ = [
    "KINDS",
    "QUERY_TERMINAL_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "CallbackProfiler",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
]
