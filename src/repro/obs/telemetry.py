"""Dimensional run-health telemetry: counters, gauges, histograms.

The trace layer (:mod:`repro.obs.events`) answers "what happened to
this one request"; the metrics recorder (:mod:`repro.sim.metrics`)
answers "what were the end-of-run totals". This module is the layer in
between — the per-run *time series* the paper's distributional claims
(per-phase CDFs, P99s inside the 4 s deadline, backlog/shed dynamics)
are actually made of:

- a **dimensional registry** of named metrics with label sets
  (``bytes_sent_total{layer="seed"}``): monotonic counters, sampled
  gauges and fixed-boundary histograms;
- **deterministic histograms**: bin boundaries are chosen up front as
  powers of two (exact in binary floating point, so bucketing is
  platform-independent) and quantile estimates depend only on the
  multiset of observed values — never on insertion order, wall clock
  or RNG;
- a **sim-time cadence sampler**: every ``cadence`` simulated seconds
  the registry's scalar state is appended to ``samples`` as one row,
  giving the backlog/shed/queue-depth time series the sustained
  pipeline reports on.

Behavior neutrality is the contract: a ``Telemetry`` instance draws no
RNG, reads no wall clock, and mutates no protocol state. Its sampler
tick is a simulator event, but a read-only one — scheduling it shifts
raw sequence numbers while preserving the relative order of every
protocol event, so ``MetricsRecorder.fingerprint()`` is bit-identical
with telemetry on or off (pinned by tests/test_obs_telemetry.py). The
one wall-clock consumer, the live progress heartbeat, lives in
:mod:`repro.obs.progress` behind the same RL002 allowlist as the
profiler; this module itself stays lint-clean.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Mapping
from typing import Any

__all__ = [
    "DEFAULT_CADENCE",
    "DEPTH_BOUNDS",
    "TIME_BOUNDS",
    "Histogram",
    "Metric",
    "Telemetry",
    "flat_name",
    "pow2_bounds",
]

DEFAULT_CADENCE = 0.25  # simulated seconds between samples (exact in binary)


def pow2_bounds(lo: float, hi: float) -> tuple[float, ...]:
    """Log-spaced (base-2) histogram boundaries from ``lo`` to ``hi``.

    Powers of two are exactly representable, so the same value lands in
    the same bucket on every platform and interpreter — the property
    that keeps exported histograms byte-stable across machines.
    """
    if lo <= 0.0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * 2.0)
    return tuple(bounds)


# Latency-shaped quantities: one simulator tick (2^-10 s) up to 16 s,
# past the 12 s slot. Depth-shaped quantities: 1 up to 2^16 entries.
TIME_BOUNDS = pow2_bounds(1.0 / 1024.0, 16.0)
DEPTH_BOUNDS = pow2_bounds(1.0, 65536.0)


class Histogram:
    """Fixed-boundary histogram with deterministic quantile estimates.

    ``counts[i]`` holds values ``v`` with ``bounds[i-1] < v <=
    bounds[i]`` (``counts[0]``: ``v <= bounds[0]``); the final bucket
    is the overflow ``v > bounds[-1]``. Quantiles interpolate linearly
    inside the chosen bucket and clamp the overflow bucket to the top
    boundary, so the estimate is a pure function of the counts.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Iterable[float] = TIME_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bounds must be strictly increasing, got {bounds!r}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    @classmethod
    def from_parts(
        cls, bounds: Iterable[float], counts: Iterable[int], total: float = 0.0
    ) -> Histogram:
        """Rebuild a histogram from its exported parts (health analyzer)."""
        hist = cls(bounds)
        counts = [int(c) for c in counts]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"expected {len(hist.counts)} buckets, got {len(counts)}"
            )
        hist.counts = counts
        hist.count = sum(counts)
        hist.sum = float(total)
        return hist

    def _bucket(self, value: float) -> int:
        # binary search over the (sorted) boundaries: first bound >= value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float, amount: int = 1) -> None:
        self.counts[self._bucket(value)] += amount
        self.count += amount
        self.sum += value * amount

    def merge(self, other: Histogram) -> None:
        """Fold another histogram in; boundaries must match exactly."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def _edges(self, bucket: int) -> tuple[float, float]:
        lower = 0.0 if bucket == 0 else self.bounds[bucket - 1]
        upper = self.bounds[min(bucket, len(self.bounds) - 1)]
        return lower, upper

    def quantile(self, q: float) -> float | None:
        """Deterministic quantile estimate in ``[0, 1]`` (None if empty).

        Monotonic in ``q`` by construction: the rank walks the same
        cumulative counts, bucket edges are non-decreasing, and the
        in-bucket interpolation fraction is clamped to ``[0, 1]``.
        """
        if self.count == 0:
            return None
        q = min(1.0, max(0.0, q))
        rank = q * self.count
        cumulative = 0.0
        for bucket, c in enumerate(self.counts):
            if c == 0:
                continue
            previous = cumulative
            cumulative += c
            if cumulative >= rank:
                lower, upper = self._edges(bucket)
                if upper <= lower:
                    return upper
                fraction = min(1.0, max(0.0, (rank - previous) / c))
                return lower + (upper - lower) * fraction
        return self.bounds[-1]

    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


def flat_name(name: str, label_names: tuple[str, ...], key: tuple[str, ...]) -> str:
    """Flat series key for sample rows: ``name{a=x,b=y}`` (or bare name)."""
    if not key:
        return name
    inner = ",".join(f"{n}={v}" for n, v in zip(label_names, key, strict=True))
    return f"{name}{{{inner}}}"


class Metric:
    """One metric family: a name, a kind, and per-label-set children."""

    __slots__ = ("name", "help", "kind", "label_names", "bounds", "_children")

    KINDS = ("counter", "gauge", "histogram")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: tuple[str, ...] = (),
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self.bounds = tuple(bounds) if bounds is not None else TIME_BOUNDS
        self._children: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        key = self._key(labels)
        self._children[key] = self._children.get(key, 0.0) + amount

    def set(self, value: float, **labels: Any) -> None:
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        self._children[self._key(labels)] = float(value)

    def observe(self, value: float, **labels: Any) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        key = self._key(labels)
        hist = self._children.get(key)
        if hist is None:
            hist = self._children[key] = Histogram(self.bounds)
        hist.observe(value)

    def value(self, **labels: Any) -> float:
        """Current scalar value for one label set (0.0 when unseen)."""
        if self.kind == "histogram":
            raise TypeError(f"{self.name} is a histogram; use child()")
        return float(self._children.get(self._key(labels), 0.0))

    def child(self, **labels: Any) -> Histogram | None:
        """The histogram child for one label set, if observed."""
        got = self._children.get(self._key(labels))
        return got if isinstance(got, Histogram) else None

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        """(label-key, value) pairs in sorted label order (deterministic)."""
        return sorted(self._children.items())

    def flat_samples(self) -> list[tuple[str, float]]:
        """Flattened scalar series for sample rows (non-histogram kinds)."""
        if self.kind == "histogram":
            return []
        return [
            (flat_name(self.name, self.label_names, key), float(value))
            for key, value in self.samples()
        ]


class Telemetry:
    """The run-health registry plus its sim-time cadence sampler.

    Implements the :class:`repro.sim.metrics.MetricsTap` protocol, so a
    scenario can hand it to the recorder and have every phase mark,
    shed, queue drop, fault and defense mirrored into dimensional
    metrics with no per-call-site instrumentation.
    """

    def __init__(
        self,
        cadence: float = DEFAULT_CADENCE,
        heartbeat: Any | None = None,
    ) -> None:
        if cadence <= 0.0:
            raise ValueError(f"cadence must be positive, got {cadence!r}")
        self.cadence = float(cadence)
        self.heartbeat = heartbeat
        self._metrics: dict[str, Metric] = {}
        self._collectors: list[Callable[[], None]] = []
        self.samples: list[dict[str, float]] = []
        self.meta: dict[str, Any] = {}
        self.deadline: float | None = None
        # sim-time estimate of the run's end (heartbeat ETA only; an
        # inaccurate value merely degrades the printed ETA)
        self.expected_end: float | None = None
        self._builder_id: int | None = None
        self._retrieval_floor: float = math.inf
        self._sim: Any | None = None
        self.ticks = 0
        self.finalized = False
        self._declare_standard()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: tuple[str, ...],
        bounds: tuple[float, ...] | None = None,
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != labels:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                    f"{existing.label_names}, not {kind}{labels}"
                )
            return existing
        metric = self._metrics[name] = Metric(name, help_text, kind, labels, bounds)
        return metric

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Metric:
        return self._register(name, help_text, "counter", tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Metric:
        return self._register(name, help_text, "gauge", tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        bounds: Iterable[float] = TIME_BOUNDS,
    ) -> Metric:
        return self._register(
            name, help_text, "histogram", tuple(labels), tuple(bounds)
        )

    @property
    def metrics(self) -> Mapping[str, Metric]:
        return self._metrics

    # shorthands that auto-register on first use (labels inferred)
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self.counter(name, labels=tuple(sorted(labels)))
        metric.inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self.gauge(name, labels=tuple(sorted(labels)))
        metric.set(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self.histogram(name, labels=tuple(sorted(labels)))
        metric.observe(value, **labels)

    def _declare_standard(self) -> None:
        """Pre-register the instrumented surface (stable export order,
        correct bucket boundaries, helpful HELP strings)."""
        self.histogram(
            "phase_latency_seconds",
            "per-phase completion latency from slot start",
            ("phase",),
            TIME_BOUNDS,
        )
        self.histogram(
            "fetch_round_latency_seconds",
            "reply latency within one Algorithm-1 fetch round",
            ("round",),
            TIME_BOUNDS,
        )
        self.histogram(
            "queue_depth",
            "observed depth of bounded queues at observation points",
            ("queue",),
            DEPTH_BOUNDS,
        )
        self.counter(
            "phase_completions_total", "phase completions", ("phase",)
        )
        self.counter(
            "phase_deadline_hits_total",
            "phase completions at or under the protocol deadline",
            ("phase",),
        )
        self.counter(
            "bytes_sent_total", "link bytes by traffic layer", ("layer",)
        )
        self.counter(
            "messages_sent_total", "datagrams by traffic layer", ("layer",)
        )
        self.counter("shed_total", "load shed by admission control", ("kind",))
        self.counter(
            "queue_drops_total", "bounded-queue rejections", ("reason",)
        )
        self.counter("fault_total", "injected faults realized", ("kind",))
        self.counter(
            "defense_total", "validation-layer defense events", ("kind",)
        )
        self.gauge("events_processed", "simulator events executed so far")
        self.gauge("inbox_depth_max", "deepest transport inbox right now")
        self.gauge(
            "inbox_overflows", "datagrams tail-dropped by bounded inboxes"
        )
        self.gauge("datagrams_sent", "transport datagrams sent")
        self.gauge("datagrams_delivered", "transport datagrams delivered")
        self.gauge("datagrams_lost", "transport datagrams lost")
        self.gauge("live_nodes", "nodes currently registered and alive")
        self.gauge("quarantined_peers", "peer quarantines active across nodes")
        self.gauge("pending_requests", "buffered requests across nodes")

    # ------------------------------------------------------------------
    # run wiring
    # ------------------------------------------------------------------
    def set_run_info(self, **meta: Any) -> None:
        """Attach run metadata (exported in the series meta header)."""
        self.meta.update(meta)
        deadline = meta.get("deadline")
        if deadline is not None:
            self.deadline = float(deadline)

    def configure_layers(
        self,
        builder_id: int | None = None,
        retrieval_floor: float | None = None,
    ) -> None:
        """Teach traffic-layer classification the run's addresses.

        ``builder_id``: seed-layer source; ``retrieval_floor``: the
        lowest address of the retrieval-client population (pipeline
        probes live at :data:`~repro.experiments.pipeline.
        PROBE_BASE_ADDRESS` and above).
        """
        if builder_id is not None:
            self._builder_id = builder_id
        if retrieval_floor is not None:
            self._retrieval_floor = float(retrieval_floor)

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a per-tick collector (reads state, sets gauges)."""
        self._collectors.append(fn)

    def install(self, sim: Any) -> None:
        """Attach the cadence sampler to a simulator.

        The first sample lands one cadence after installation; sampler
        callbacks are read-only, so protocol behavior is untouched.
        """
        if self._sim is not None:
            raise RuntimeError("Telemetry is already installed on a simulator")
        self._sim = sim
        sim.call_after(self.cadence, self._tick)

    def sample_now(self) -> None:
        """Append one sample row at the current simulated time."""
        sim = self._sim
        if sim is None:
            return
        self.set_gauge("events_processed", float(sim.events_processed))
        for collect in self._collectors:
            collect()
        row: dict[str, float] = {"t": sim.now}
        for name in sorted(self._metrics):
            for flat, value in self._metrics[name].flat_samples():
                row[flat] = value
        self.samples.append(row)
        self.ticks += 1

    def _tick(self) -> None:
        self.sample_now()
        sim = self._sim
        heartbeat = self.heartbeat
        if heartbeat is not None:
            heartbeat.maybe_beat(sim.now, sim.events_processed, self.expected_end)
        sim.call_after(self.cadence, self._tick)

    def finalize(
        self, expected_samples: int | None = None, **meta: Any
    ) -> None:
        """Seal the run: record the denominator for deadline-hit rate
        and take a final sample if sim time moved past the last tick."""
        if expected_samples is not None:
            self.meta["expected_samples"] = int(expected_samples)
        self.meta.update(meta)
        sim = self._sim
        if sim is not None and (
            not self.samples or sim.now > self.samples[-1]["t"]
        ):
            self.sample_now()
        self.finalized = True

    # ------------------------------------------------------------------
    # MetricsTap protocol (called by MetricsRecorder) + transport hooks
    # ------------------------------------------------------------------
    def on_phase(self, phase: str, slot: Any, node: Any, t: float) -> None:
        self.observe("phase_latency_seconds", t, phase=phase)
        self.inc("phase_completions_total", phase=phase)
        deadline = self.deadline
        if deadline is not None and t <= deadline:
            self.inc("phase_deadline_hits_total", phase=phase)

    def on_shed(self, kind: str, amount: float) -> None:
        self.inc("shed_total", amount, kind=kind)

    def on_queue_drop(self, reason: str, amount: float) -> None:
        self.inc("queue_drops_total", amount, reason=reason)

    def on_queue_depth(self, gauge: str, depth: float) -> None:
        self.observe("queue_depth", depth, queue=gauge)

    def on_fault(self, kind: str, amount: float) -> None:
        self.inc("fault_total", amount, kind=kind)

    def on_defense(self, kind: str, amount: float) -> None:
        self.inc("defense_total", amount, kind=kind)

    def on_round_latency(self, round_index: int, latency: float) -> None:
        label = str(round_index) if round_index <= 4 else "5+"
        self.observe("fetch_round_latency_seconds", latency, round=label)

    def observe_send(self, src: int, dst: int, size: int, payload: Any) -> None:
        """Classify one datagram into a traffic layer and count it.

        Classification is by payload type *name* (plus the retrieval
        priority/address floor), deliberately avoiding imports from
        ``repro.core`` so this module stays dependency-free.
        """
        layer = self._layer(src, dst, payload)
        self.inc("messages_sent_total", 1.0, layer=layer)
        self.inc("bytes_sent_total", float(size), layer=layer)

    def _layer(self, src: int, dst: int, payload: Any) -> str:
        name = type(payload).__name__
        if src == self._builder_id or name == "SeedMessage":
            return "seed"
        if name == "GossipMessage":
            return "gossip"
        if name == "CellRequest":
            if getattr(payload, "priority", 0) != 0 or src >= self._retrieval_floor:
                return "retrieval"
            return "fetch"
        if name == "CellResponse":
            return "retrieval" if dst >= self._retrieval_floor else "fetch"
        return "other"
