"""Structured trace events and the ring-buffered recorder.

A trace is an append-only sequence of :class:`TraceEvent` records —
``(t, slot, node, kind, data)`` — emitted by hooks in the transport,
node, fetcher, builder and fault injector. The recorder is pure
observation: it never consumes an RNG stream, never schedules a
simulator event and never mutates protocol state, which is what makes
tracing behavior-neutral (the fingerprint-equality guarantee).

Volume control is two-layered so tracing a 1,000-node run stays
bounded:

- **per-kind filtering**, fixed at construction: disabled kinds are
  rejected before any event object is built (``enabled()`` lets hot
  call sites skip argument marshalling entirely);
- a **ring buffer** (``capacity`` events) for the in-memory tail;
  streaming sinks (JSONL, Chrome) still see every accepted event, so a
  file trace is complete even when the ring has evicted the start.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping
from typing import Any

__all__ = [
    "KINDS",
    "QUERY_TERMINAL_KINDS",
    "RESERVED_FIELDS",
    "TraceEvent",
    "TraceRecorder",
]


# The documented event catalog (EXPERIMENTS.md "Observability"). The
# recorder accepts unknown kinds — the catalog is a contract for
# consumers (timeline, tests), not a straitjacket for emitters.
KINDS: Mapping[str, str] = {
    # transport (repro.net.transport observers)
    "net_send": "datagram left a sender's NIC (src=node, dst, size, payload)",
    "net_deliver": "datagram handed to the receiver (node=dst, src, size, payload)",
    "net_drop": "datagram lost (reason: loss|dead|dead_late|fault)",
    # fault injection (repro.faults.injector)
    "fault": "injected fault realized (fault kind, victim where known)",
    # builder (repro.core.builder)
    "seed_slot": "builder finished pushing one slot's seed burst (messages, bytes)",
    # node (repro.core.node)
    "seed_recv": "first seed parcel with cells arrived at a node",
    "cells_ingest": "cells stored (source: seed|response; new, reconstructed)",
    "phase": "a phase completed (phase: seeding|consolidation|sampling; at)",
    "defense": "validation layer dropped/limited something (defense kind, amount)",
    # fetcher (repro.core.fetching) — the query lifecycle
    "fetch_start": "Algorithm 1 started for one (node, slot)",
    "fetch_round": "one fetching round planned (round, targets, queries, cells)",
    "query_issue": "QUERYCELLS sent (req, peer, round, cells) — opens req",
    "query_response": "reply accounted (req, peer, new, late, usable) — closes req",
    "query_timeout": "round expired with no reply (req, peer, round) — closes req",
    "query_cancel": "fetcher ended first (req, peer, round) — closes req",
    "query_late_reply": "reply for an already-closed req (peer, new)",
    "query_recycle": "exhausted pool re-opened peers (pool, count)",
    "retry_backoff": "exhausted-pool retry wave backed off (round, wave, delay)",
    "retry_abandoned": "retry dropped — deadline/wave budget spent (round, waves)",
    "fetch_done": "Algorithm 1 finished (success, reason)",
    # overload control (net.transport bounds, node admission, retrieval)
    "queue_overflow": "bounded transport inbox dropped a datagram (node, src, size)",
    "load_shed": "admission control shed work (node, shed, amount)",
    # experiment layer
    "sweep_point": "sweep moved to the next configuration (label)",
    "pipeline_slot": "sustained pipeline finished one slot (slot, live, depth, shed)",
}

# A query opened by ``query_issue`` terminates in exactly one of these
# (the lifecycle-completeness invariant checked by the test suite).
QUERY_TERMINAL_KINDS = frozenset({"query_response", "query_timeout", "query_cancel"})

# Top-level field names of the serialized (flat) event; payload keys
# must not collide with them.
RESERVED_FIELDS = ("t", "slot", "node", "kind")


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``slot``/``node`` are ``-1`` when the event has no such context
    (e.g. a datagram without a slot-carrying payload).
    """

    t: float
    slot: int
    node: int
    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flat dict form used by every serializing sink."""
        out: dict[str, Any] = {
            "t": self.t,
            "slot": self.slot,
            "node": self.node,
            "kind": self.kind,
        }
        out.update(self.data)
        return out


class TraceRecorder:
    """Ring-buffered, zero-RNG structured event log.

    ``capacity`` bounds the in-memory tail (``None`` = unbounded);
    ``kinds`` restricts recording to the given kind names (``None`` =
    everything); ``sinks`` receive every accepted event in emission
    order, before any eviction.
    """

    def __init__(
        self,
        capacity: int | None = 1 << 20,
        kinds: Iterable[str] | None = None,
        sinks: Iterable[Any] = (),
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._kinds: frozenset | None = frozenset(kinds) if kinds is not None else None
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._sinks: list[Any] = list(sinks)
        self._req_ids = itertools.count(1)
        self.accepted = 0
        self.filtered = 0
        self.counts: Counter = Counter()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def enabled(self, kind: str) -> bool:
        """True when events of ``kind`` would be recorded.

        Hot call sites check this first so that disabled kinds cost one
        set lookup, not a dict construction.
        """
        return self._kinds is None or kind in self._kinds

    def emit(
        self, kind: str, *, t: float, slot: int = -1, node: int = -1, **data: Any
    ) -> TraceEvent | None:
        """Record one event; returns it, or None when filtered out."""
        if not self.enabled(kind):
            self.filtered += 1
            return None
        # payload keys cannot collide with RESERVED_FIELDS: those are
        # named parameters, so Python rejects duplicates at the call
        event = TraceEvent(t=t, slot=slot, node=node, kind=kind, data=data)
        self._buffer.append(event)
        self.accepted += 1
        self.counts[kind] += 1
        for sink in self._sinks:
            sink.handle(event)
        return event

    def next_request_id(self) -> int:
        """Monotonic id for the query lifecycle (deterministic, no RNG)."""
        return next(self._req_ids)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """The in-memory tail, oldest first."""
        return list(self._buffer)

    @property
    def evicted(self) -> int:
        """Accepted events no longer in the ring buffer."""
        return self.accepted - len(self._buffer)

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def close(self) -> None:
        """Flush and close every sink (idempotent per sink contract)."""
        for sink in self._sinks:
            sink.close()

    def kind_table(self) -> list[tuple[str, int]]:
        """(kind, count) rows, most frequent first, ties by name."""
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
