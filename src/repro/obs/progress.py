"""Wall-clock heartbeat: live progress for long runs.

A 20k-node slot executes millions of events over many minutes with no
output at all. The heartbeat fixes that: the telemetry sampler calls
:meth:`Heartbeat.maybe_beat` on every sim-time tick, and the heartbeat
decides — on the *wall* clock — whether enough real time has passed to
print one progress line (simulated time, events/sec, ETA).

This is the telemetry stack's only wall-clock consumer, kept in its
own module so the RL002 allowlist can cover exactly this file (the
same treatment as the callback profiler): wall-clock readings gate
printing and feed the printed rates, and never reach simulated state.
The sim-time cadence of the *calls* comes from the deterministic
sampler; two runs differ only in what lands on stderr.
"""

from __future__ import annotations

import sys
import time
from typing import IO

__all__ = ["Heartbeat"]


class Heartbeat:
    """Rate-limited progress line writer (default: stderr).

    ``interval_s`` is wall-clock seconds between lines; ``0`` prints on
    every tick after the first (tests). The first call only arms the
    baseline — rates need a delta.
    """

    def __init__(self, interval_s: float = 10.0, stream: IO[str] | None = None) -> None:
        if interval_s < 0.0:
            raise ValueError(f"interval_s must be >= 0, got {interval_s!r}")
        self.interval_s = interval_s
        self._stream: IO[str] = stream if stream is not None else sys.stderr
        self._started_wall: float | None = None
        self._last_wall: float | None = None
        self._last_events = 0
        self._last_sim = 0.0
        self.beats = 0

    def maybe_beat(
        self,
        sim_now: float,
        events_processed: int,
        expected_end: float | None = None,
    ) -> None:
        """Print a progress line if ``interval_s`` wall seconds passed."""
        now = time.perf_counter()
        if self._last_wall is None:
            self._started_wall = now
            self._last_wall = now
            self._last_events = events_processed
            self._last_sim = sim_now
            return
        wall_dt = now - self._last_wall
        if wall_dt < self.interval_s:
            return
        event_rate = (
            (events_processed - self._last_events) / wall_dt if wall_dt > 0 else 0.0
        )
        sim_rate = (sim_now - self._last_sim) / wall_dt if wall_dt > 0 else 0.0
        parts = [
            f"sim t={sim_now:.2f}s",
            f"events={events_processed}",
            f"{event_rate:,.0f} ev/s",
        ]
        if expected_end is not None and sim_rate > 0.0:
            eta = (expected_end - sim_now) / sim_rate
            if eta >= 0.0:
                parts.append(f"ETA {eta:.0f}s")
        started = self._started_wall if self._started_wall is not None else now
        self._stream.write(f"[heartbeat +{now - started:.0f}s] " + "  ".join(parts) + "\n")
        flush = getattr(self._stream, "flush", None)
        if flush is not None:
            flush()
        self._last_wall = now
        self._last_events = events_processed
        self._last_sim = sim_now
        self.beats += 1
