"""Callback-site profiling for the discrete-event simulator.

Every piece of protocol logic in this repository runs as a simulator
callback, so attributing wall-clock time to *callback sites*
(``module:qualname`` of the scheduled function) is a complete hot-path
map of a run: transport delivery, KZG-verify dispatch, fetcher rounds,
gossip heartbeats — each shows up as its own row.

The profiler is opt-in (``Simulator.set_profiler``) and
behavior-neutral: it measures host wall-clock around each callback
without touching simulated time, RNG streams or event ordering, so a
profiled run is bit-identical to an unprofiled one. This is the
baseline harness every future performance PR measures against
(ROADMAP: "as fast as the hardware allows").
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

__all__ = ["CallbackProfiler", "SiteStats", "callback_site"]


def callback_site(callback: Callable[..., Any]) -> str:
    """``module:qualname`` of the function behind a callback.

    Unwraps ``functools.partial`` chains and bound methods so that the
    site names the code that runs, not the wrapper. Non-function
    callables fall back to their type.
    """
    target: Any = callback
    while isinstance(target, functools.partial):
        target = target.func
    target = getattr(target, "__func__", target)
    module = getattr(target, "__module__", None)
    qualname = getattr(target, "__qualname__", None)
    if module is None or qualname is None:
        cls = type(target)
        return f"{cls.__module__}:{cls.__qualname__}"
    return f"{module}:{qualname}"


@dataclass
class SiteStats:
    """Accumulated cost of one callback site."""

    site: str
    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        return (self.seconds / self.calls) * 1e6 if self.calls else 0.0


class CallbackProfiler:
    """Attributes wall-clock time and event counts to callback sites.

    Attach with ``sim.set_profiler(profiler)``; the engine then routes
    every executed event through :meth:`run`. Site labels are cached
    per code object, so steady-state overhead is one dict lookup and
    two ``perf_counter`` calls per event.
    """

    def __init__(self) -> None:
        self._sites: dict[str, SiteStats] = {}
        self._labels: dict[Any, str] = {}
        self.events = 0
        self.seconds = 0.0

    # ------------------------------------------------------------------
    # the engine-facing hook
    # ------------------------------------------------------------------
    def run(self, callback: Callable[..., Any], *args: Any) -> None:
        """Execute ``callback(*args)``, charging its cost to its site."""
        target: Any = callback
        while isinstance(target, functools.partial):
            target = target.func
        target = getattr(target, "__func__", target)
        key = getattr(target, "__code__", None) or type(target)
        label = self._labels.get(key)
        if label is None:
            label = callback_site(callback)
            self._labels[key] = label
        start = time.perf_counter()
        try:
            callback(*args)
        finally:
            elapsed = time.perf_counter() - start
            stats = self._sites.get(label)
            if stats is None:
                stats = self._sites[label] = SiteStats(label)
            stats.calls += 1
            stats.seconds += elapsed
            self.events += 1
            self.seconds += elapsed

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Simulator callbacks executed per wall-clock second."""
        return self.events / self.seconds if self.seconds > 0.0 else 0.0

    def table(self, top: int = 15) -> list[SiteStats]:
        """The ``top`` hottest sites by total wall-clock time."""
        ranked = sorted(
            self._sites.values(), key=lambda s: (-s.seconds, s.site)
        )
        return ranked[:top]

    def format(self, top: int = 15) -> str:
        """A printable hot-callback table plus the events/sec headline."""
        lines = [
            f"{'callback site':<58} {'calls':>9} {'total':>9} {'mean':>9} {'share':>6}"
        ]
        total = self.seconds or 1.0
        for stats in self.table(top):
            lines.append(
                f"{stats.site:<58} {stats.calls:>9} "
                f"{stats.seconds * 1e3:>7.1f}ms {stats.mean_us:>7.1f}us "
                f"{stats.seconds / total:>6.1%}"
            )
        lines.append(
            f"{self.events} events in {self.seconds:.3f}s wall "
            f"({self.events_per_second:,.0f} events/sec)"
        )
        return "\n".join(lines)
