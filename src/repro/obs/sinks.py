"""Trace sinks: in-memory, JSONL files, Chrome ``trace_event`` JSON.

Sinks receive every accepted event as it is emitted (streaming), so a
file trace is complete even when the recorder's ring buffer has
evicted the beginning of the run. All sinks are deterministic byte
producers: two behaviorally identical runs write identical files,
which is what lets the test suite diff whole traces.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.obs.events import QUERY_TERMINAL_KINDS, TraceEvent

__all__ = ["MemorySink", "JsonlSink", "ChromeTraceSink"]


class MemorySink:
    """Keeps every accepted event (unbounded — for tests and reports)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def handle(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        """Nothing to release."""


class JsonlSink:
    """One JSON object per line, flat schema (``t/slot/node/kind`` + payload)."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            # long-lived sink: the handle outlives this scope and is
            # released by close()
            self._file: IO[str] = open(target, "w", encoding="utf-8")  # noqa: SIM115
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self.lines_written = 0
        self._closed = False

    def handle(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._file.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns:
            self._file.close()


class ChromeTraceSink:
    """Chrome ``trace_event`` JSON for chrome://tracing / Perfetto.

    Mapping: ``pid`` is the slot (&ge;0, else 0), ``tid`` the node, and
    ``ts`` the simulated time in microseconds. Query-lifecycle events
    become async ``"b"``/``"e"`` pairs keyed by the request id, so each
    outstanding query renders as a span on its node's track; everything
    else is an instant event (``"i"``, thread-scoped).
    """

    def __init__(self, target: str | IO[str]) -> None:
        self._target = target
        self._events: list[dict[str, Any]] = []
        self._closed = False

    def handle(self, event: TraceEvent) -> None:
        record: dict[str, Any] = {
            "name": event.kind,
            "ts": round(event.t * 1e6, 3),
            "pid": event.slot if event.slot >= 0 else 0,
            "tid": event.node if event.node >= 0 else 0,
            "args": dict(event.data),
        }
        req: int | None = event.data.get("req")
        if event.kind == "query_issue" and req is not None:
            record.update(name="query", cat="query", ph="b", id=f"0x{req:x}")
        elif event.kind in QUERY_TERMINAL_KINDS and req is not None:
            record.update(name="query", cat="query", ph="e", id=f"0x{req:x}")
        else:
            record.update(cat=event.kind.split("_", 1)[0], ph="i", s="t")
        self._events.append(record)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        document = {"traceEvents": self._events, "displayTimeUnit": "ms"}
        if isinstance(self._target, str):
            with open(self._target, "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
        else:
            json.dump(document, self._target, separators=(",", ":"))
            self._target.flush()
