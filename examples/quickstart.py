#!/usr/bin/env python3
"""Quickstart: one PANDAS slot, end to end.

Builds a small simulated network (dense custody so every line is
covered at this scale), runs one 12-second slot — builder seeding,
consolidation, sampling — and reports whether every node finished
data-availability sampling inside Ethereum's 4-second attestation
window (the tight fork-choice rule the paper targets).

Run:  python examples/quickstart.py
"""

from repro.analysis import summarize
from repro.core.seeding import RedundantSeeding
from repro.das import false_positive_probability
from repro.experiments import Scenario, ScenarioConfig
from repro.params import PandasParams


def main() -> None:
    # A laptop-friendly grid: 8x8 base cells extended to 16x16, four
    # custody rows + four columns per node, ten samples. Swap in
    # PandasParams.full() and ~1,000 nodes to approach paper scale.
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )
    config = ScenarioConfig(
        num_nodes=60,
        params=params,
        policy=RedundantSeeding(8),  # the paper's default seeding
        seed=42,
        slots=1,
        num_vertices=500,
        include_block_gossip=True,
    )

    print("Building a 60-node network with a 10 Gbps builder...")
    scenario = Scenario(config)
    print("Running slot 0 (builder seeding -> consolidation -> sampling)")
    scenario.run()

    phases = scenario.phase_distributions()
    deadline = params.deadline
    print()
    print(f"  block gossip   {summarize(scenario.block_distribution(), deadline)}")
    print(f"  seeding        {summarize(phases.seeding, deadline)}")
    print(f"  consolidation  {summarize(phases.consolidation, deadline)}")
    print(f"  sampling       {summarize(phases.sampling, deadline)}")
    print()
    print(f"  builder egress: {scenario.builder_egress_bytes(0) / 1e6:.2f} MB")
    fetch = scenario.fetch_bytes_distribution()
    print(f"  node fetch traffic (both directions): median {fetch.median / 1e3:.1f} KB")

    fp = false_positive_probability(params.samples, params.ext_rows, params.ext_cols)
    print(f"  sampling false-positive bound: {fp:.2e} ({params.samples} samples)")

    within = phases.sampling.fraction_within(deadline)
    print()
    if within == 1.0:
        print(f"PASS: all nodes sampled within the {deadline:.0f} s deadline -> the")
        print("committee can attest block validity and data availability together")
        print("(tight fork-choice), with no consensus changes.")
    else:
        print(f"{100 * within:.1f}% of nodes made the {deadline:.0f} s deadline.")


if __name__ == "__main__":
    main()
