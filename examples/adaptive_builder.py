#!/usr/bin/env python3
"""Self-tuning builder redundancy (the paper's future-work direction).

Section 11 suggests builders could "select or update parameters based
on observed networking and fault ratio conditions" instead of a fixed
redundancy. This example closes that loop over consecutive slots:

- the network starts calm, then 35% of nodes crash mid-experiment;
- after every slot the builder observes the fraction of nodes whose
  sampling met the 4 s deadline and lets the controller adjust r;
- redundancy climbs under faults (protecting the deadline at higher
  egress) and decays once conditions recover.

Run:  python examples/adaptive_builder.py
"""

from repro.core.adaptive_policy import AdaptiveRedundancyController
from repro.experiments import Scenario, ScenarioConfig
from repro.params import PandasParams


def run_one_slot(r: int, dead_fraction: float, seed: int) -> float:
    """One slot at redundancy ``r``; returns deadline completion."""
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=2, custody_cols=2, samples=10
    )
    config = ScenarioConfig(
        num_nodes=120,
        params=params,
        seed=seed,
        slots=1,
        num_vertices=500,
        dead_fraction=dead_fraction,
        loss_rate=0.08,
    )
    from repro.core.seeding import RedundantSeeding

    config.policy = RedundantSeeding(r)
    scenario = Scenario(config).run()
    return scenario.sampling_distribution().fraction_within(4.0)


def main() -> None:
    controller = AdaptiveRedundancyController(r=2, calm_slots_before_decay=2)
    # slots 0-2 calm, slots 3-6 with 35% dead nodes, then recovery
    phases = [0.0, 0.0, 0.0, 0.35, 0.35, 0.35, 0.35, 0.0, 0.0, 0.0]

    print("slot  dead%   r   sampled<=4s   controller action")
    for slot, dead_fraction in enumerate(phases):
        r_used = controller.r
        completion = run_one_slot(r_used, dead_fraction, seed=slot)
        r_next = controller.observe(completion)
        if r_next > r_used:
            action = f"escalate -> r={r_next}"
        elif r_next < r_used:
            action = f"trim -> r={r_next}"
        else:
            action = "hold"
        print(
            f"{slot:>4} {dead_fraction:>6.0%} {r_used:>3} {100 * completion:>12.1f}%   {action}"
        )

    print()
    print("The fixed-parameter paper protocol uses r=8 always; the controller")
    print("reaches comparable protection under faults while spending less")
    print("builder egress in calm slots. Note the oscillation when it trims")
    print("during a fault phase: the naive decay probes the floor and pays a")
    print("bad slot to learn it — the price of feedback without forecasting,")
    print("and exactly the design space the paper's conclusion points at.")


if __name__ == "__main__":
    main()
