#!/usr/bin/env python3
"""PANDAS vs the GossipSub and Kademlia-DHT baselines (Figure 12).

All three systems get the same builder egress budget (8x the extended
blob) and the same sampling obligation (every node fetches random
cells). What differs is the dissemination/lookup machinery:

- PANDAS: direct one-hop UDP seeding + adaptive fetching;
- GossipSub: per-unit-of-custody channels, mesh flooding;
- DHT: parcels stored at the 8 closest peers, iterative get() lookups.

Run:  python examples/baseline_comparison.py
"""

import time

from repro.analysis import summarize
from repro.baselines import DhtDasScenario, GossipDasScenario
from repro.core.seeding import RedundantSeeding
from repro.experiments import Scenario, ScenarioConfig
from repro.params import PandasParams


def main() -> None:
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )
    config = ScenarioConfig(
        num_nodes=60,
        params=params,
        policy=RedundantSeeding(8),
        seed=4,
        slots=1,
        num_vertices=500,
        slot_window=12.0,
    )

    systems = (
        ("PANDAS", Scenario),
        ("GossipSub", GossipDasScenario),
        ("DHT", DhtDasScenario),
    )

    print("Running one slot per system on identical 60-node networks...\n")
    results = []
    for name, scenario_class in systems:
        started = time.time()
        scenario = scenario_class(config).run()
        sampling = scenario.sampling_distribution()
        messages = scenario.fetch_message_distribution()
        results.append((name, sampling, messages))
        print(f"  {name:<10} {summarize(sampling, 4.0)}   (wall {time.time() - started:.1f}s)")

    print()
    print(f"  {'system':<10} {'median':>9} {'within 4s':>10} {'msgs/node':>10}")
    for name, sampling, messages in results:
        median = f"{sampling.median * 1e3:.0f}ms" if sampling.values else "miss"
        msgs = f"{messages.median:.0f}" if messages.values else "-"
        print(f"  {name:<10} {median:>9} {100 * sampling.fraction_within(4.0):>9.1f}% {msgs:>10}")

    print()
    print("Expected shape (paper, 1,000 nodes): PANDAS completes fastest and")
    print("within the deadline everywhere; GossipSub and the DHT miss the 4 s")
    print("deadline for a substantial fraction of nodes and send more messages")
    print("(multi-hop routing for the DHT, mesh duplication for GossipSub).")


if __name__ == "__main__":
    main()
