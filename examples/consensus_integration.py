#!/usr/bin/env python3
"""DAS inside the consensus workflow: tight vs trailing fork-choice.

Runs two situations through full slots — an honest builder and a
data-withholding builder — and shows what each fork-choice rule makes
of them:

- **tight** (PANDAS's target): committee members vote at +4 s on
  (block valid AND samples complete). Withheld data is voted down on
  the spot; nothing ever needs reverting.
- **trailing**: members vote on the block alone and check availability
  later; the withholding slot gets *accepted then reverted*, the
  consensus-modifying behaviour (and reorg attack surface) PANDAS
  exists to avoid.

Run:  python examples/consensus_integration.py
"""

import random

from repro.consensus import ForkChoiceRule, ForkChoiceSimulator, ValidatorRegistry
from repro.core.seeding import RedundantSeeding, WithholdingSeeding
from repro.crypto.randao import RandaoBeacon
from repro.experiments import Scenario, ScenarioConfig
from repro.params import PandasParams


def run_slot(policy, seed=11):
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )
    config = ScenarioConfig(
        num_nodes=50,
        params=params,
        policy=policy,
        seed=seed,
        slots=1,
        num_vertices=400,
        include_block_gossip=True,
    )
    return Scenario(config).run()


def committee_outcomes(scenario, registry, fork_choice, slot=0):
    committee = registry.committee_for_slot(slot)
    outcomes = []
    for validator in committee.members:
        node = registry.host_of(validator)
        times = scenario.metrics.phase_times.get((slot, node))
        block_time = times.block if times else None
        sampling_time = times.sampling if times else None
        outcomes.append(fork_choice.outcome_for(slot, node, block_time, sampling_time))
    return outcomes


def describe(name, scenario, registry):
    print(f"--- {name} ---")
    sampling = scenario.phase_distributions().sampling
    print(f"  nodes sampling within 4 s: {100 * sampling.fraction_within(4.0):.1f}%")
    for rule in (ForkChoiceRule.TIGHT, ForkChoiceRule.TRAILING):
        fork_choice = ForkChoiceSimulator(rule)
        outcomes = committee_outcomes(scenario, registry, fork_choice)
        decision = fork_choice.aggregate(outcomes)
        reverted = sum(1 for o in outcomes if o.later_reverted)
        verdict = "ACCEPTED" if decision.accepted else "REJECTED"
        extra = f", {reverted} members must later revert" if reverted else ""
        print(
            f"  {rule:>9} rule: {decision.votes_for} for / "
            f"{decision.votes_against} against -> block {verdict}{extra}"
        )
    print()


def main() -> None:
    # 200 validators spread over the 50 nodes; the hosting map stays
    # private to this driver, as the paper requires (Section 4.1)
    registry = ValidatorRegistry(RandaoBeacon(5), committee_size=32)
    registry.register_many(200, list(range(50)), random.Random(1))

    print("Scenario A: honest builder (redundant seeding, r=8)\n")
    honest = run_slot(RedundantSeeding(8))
    describe("honest builder", honest, registry)

    print("Scenario B: withholding builder (releases 40% of each line —")
    print("below the 50% reconstruction threshold)\n")
    withholding = run_slot(WithholdingSeeding(RedundantSeeding(8), release=0.40))
    describe("withholding builder", withholding, registry)

    print("The tight rule needs no consensus changes: availability failures")
    print("surface as ordinary 'invalid' votes within the existing 4 s window.")


if __name__ == "__main__":
    main()
