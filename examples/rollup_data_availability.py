#!/usr/bin/env python3
"""A layer-2 rollup's life-cycle through the data availability layer.

This is the workload the paper's introduction motivates: an optimistic
rollup posts compressed transaction batches as blob data; layer-1
nodes must verify the data is *available* (so anyone can recompute the
state and raise fraud proofs) without any single node downloading all
of it.

The example exercises the real byte-level pipeline:

1. pack rollup batches into a blob and commit to it (KZG stand-in);
2. erasure-extend the blob 2D (each line recovers from any half);
3. scatter cells to simulated custodians, with a fraction lost;
4. a rollup full node retrieves and verifies its batch from the
   network's cells, reconstructing around the losses;
5. a withholding attack on the same blob is *detected* by sampling.

Run:  python examples/rollup_data_availability.py
"""

import json
import random

from repro.crypto.kzg import commit_blob, prove_cell, verify_cell
from repro.das import false_positive_probability, required_samples
from repro.erasure.blob import Blob, BlobReconstructionError, ExtendedBlob


def make_rollup_batches(count: int, rng: random.Random) -> bytes:
    """Synthetic compressed layer-2 transaction batches."""
    batches = []
    for batch_number in range(count):
        batches.append(
            {
                "batch": batch_number,
                "state_root": f"{rng.getrandbits(256):064x}",
                "tx_count": rng.randint(50, 400),
                "gas_used": rng.randint(10**6, 3 * 10**7),
            }
        )
    return json.dumps(batches).encode()


def main() -> None:
    rng = random.Random(7)

    # -- 1. the rollup sequencer posts a blob -------------------------
    payload = make_rollup_batches(24, rng)
    base_rows = base_cols = 16
    cell_bytes = 64
    blob = Blob.from_bytes(payload, base_rows, base_cols, cell_bytes)
    print(f"rollup payload: {len(payload)} B in a {base_rows}x{base_cols} blob")

    # -- 2. commitment + extension ------------------------------------
    extended = blob.extend()
    commitment = commit_blob(extended)
    print(
        f"extended to {extended.ext_rows}x{extended.ext_cols}; "
        f"commitment {commitment.digest.hex()[:16]}..."
    )

    # -- 3. scatter cells; the network loses 30% of them --------------
    surviving = {}
    for cid in range(extended.ext_rows * extended.ext_cols):
        if rng.random() > 0.30:
            surviving[cid] = extended.cell_by_id(cid)
    print(
        f"network holds {len(surviving)} of "
        f"{extended.ext_rows * extended.ext_cols} cells after losses"
    )

    # each surviving cell is individually verifiable against the
    # commitment before a node accepts it (no corrupted data spreads)
    sample_cid = next(iter(surviving))
    proof = prove_cell(commitment, sample_cid, surviving[sample_cid])
    assert verify_cell(commitment, sample_cid, surviving[sample_cid], proof)
    assert not verify_cell(commitment, sample_cid, b"\x00" * cell_bytes, proof)
    print("per-cell KZG proofs verify; corrupted cells are rejected")

    # -- 4. a rollup participant reconstructs the batch data ----------
    rebuilt = ExtendedBlob.reconstruct(surviving, base_rows, base_cols, cell_bytes)
    recovered = rebuilt.to_blob().to_bytes()[: len(payload)]
    assert recovered == payload
    batches = json.loads(recovered)
    print(f"rollup node recovered all {len(batches)} batches despite 30% cell loss")
    print(
        f"  (can now verify state root {batches[0]['state_root'][:16]}... "
        "or raise a fraud proof)"
    )

    # -- 5. a withholding builder is caught by sampling ---------------
    print()
    print("withholding attack: builder releases all but a 17x17 sub-matrix")
    withheld = {
        cid: cell
        for cid, cell in (
            (r * extended.ext_cols + c, extended.cell(r, c))
            for r in range(extended.ext_rows)
            for c in range(extended.ext_cols)
        )
        if not (cid // extended.ext_cols <= base_rows and cid % extended.ext_cols <= base_cols)
    }
    try:
        ExtendedBlob.reconstruct(withheld, base_rows, base_cols, cell_bytes)
        raise AssertionError("withheld blob should not reconstruct")
    except BlobReconstructionError:
        print("  reconstruction impossible, exactly as Figure 3-right predicts")

    samples = required_samples(extended.ext_rows, extended.ext_cols, target=1e-9)
    fp = false_positive_probability(samples, extended.ext_rows, extended.ext_cols)
    print(f"  {samples} random samples bound the miss probability at {fp:.2e}:")
    print("  committee members sampling this blob vote it unavailable and the")
    print("  block is rejected under the tight fork-choice rule.")


if __name__ == "__main__":
    main()
