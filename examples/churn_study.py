#!/usr/bin/env python3
"""Churn study: DAS under continuous membership turnover.

The paper's fault experiments are static; this extension runs slots
while nodes continuously leave and join, with views that lag reality
by a configurable number of slots (stale DHT crawls). It answers the
question Section 8.2 gestures at: how quickly do lagging views erode
the 4-second guarantee, and does the network recover once crawls
catch up?

Run:  python examples/churn_study.py
"""

from repro.core.seeding import RedundantSeeding
from repro.experiments import ChurnScenario, ScenarioConfig
from repro.params import PandasParams


def run(churn_fraction: float, view_lag_slots: int, slots: int = 4):
    config = ScenarioConfig(
        num_nodes=80,
        # sparser custody (5 custodians/line) and lighter seeding than
        # the defaults, so churn pressure is visible at this scale
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=2, custody_cols=2, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=6,
        slots=slots,
        num_vertices=500,
    )
    scenario = ChurnScenario(
        config, churn_fraction=churn_fraction, view_lag_slots=view_lag_slots
    )
    scenario.run()
    return scenario.sampling_completion_by_slot()


def main() -> None:
    print("Per-slot fraction of live nodes sampling within 4 s")
    print("(80 nodes, churn applied after every slot)\n")
    print(f"{'churn':>7} {'view lag':>9} | " + " ".join(f"slot {s}" for s in range(4)))
    for churn in (0.0, 0.2, 0.4):
        for lag in (0, 2):
            completion = run(churn, lag)
            row = " ".join(f"{100 * completion.get(s, 0):5.1f}%" for s in range(4))
            print(f"{churn:>6.0%} {lag:>9} | {row}")
    print()
    print("Reading: with fresh views (lag 0) churn barely registers — the")
    print("deterministic assignment gives joiners custody instantly and the")
    print("builder seeds them. With stale views, nodes query departed peers")
    print("and cannot see joiners, so completion erodes as churn grows — the")
    print("dynamic version of Figure 15's out-of-view scenario. PANDAS's")
    print("redundancy absorbs moderate turnover either way.")


if __name__ == "__main__":
    main()
