#!/usr/bin/env python3
"""Robustness study: dead nodes and inconsistent views (Figure 15).

Sweeps the fraction of faulty participants and reports how many of the
remaining correct nodes still finish sampling inside the 4-second
window:

- **dead nodes** — fail-silent crashes / free-riders that answer
  nothing; the builder doesn't know and wastes seed cells and boost
  entries on them;
- **out-of-view nodes** — everyone is honest, but each node's view is
  a random subset of the network (stale ENR crawls), so requests can
  only target the peers a node happens to know.

Run:  python examples/fault_tolerance_study.py
"""

from repro.core.seeding import RedundantSeeding
from repro.experiments import Scenario, ScenarioConfig
from repro.params import PandasParams


def sweep(fault: str, fractions, num_nodes=80):
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )
    rows = []
    for fraction in fractions:
        config = ScenarioConfig(
            num_nodes=num_nodes,
            params=params,
            policy=RedundantSeeding(8),
            seed=9,
            slots=1,
            num_vertices=500,
            dead_fraction=fraction if fault == "dead" else 0.0,
            out_of_view_fraction=fraction if fault == "oov" else 0.0,
        )
        scenario = Scenario(config).run()
        sampling = scenario.sampling_distribution()
        rows.append((fraction, sampling.fraction_within(4.0), sampling.median))
    return rows


def print_table(title, rows):
    print(f"\n{title}")
    print(f"  {'faulty':>8} {'sampled<=4s':>12} {'median':>10}")
    for fraction, within, median in rows:
        median_text = f"{median * 1e3:7.0f}ms" if median == median else "    miss"
        print(f"  {fraction:>7.0%} {100 * within:>11.1f}% {median_text:>10}")


def main() -> None:
    fractions = (0.0, 0.2, 0.4, 0.6, 0.8)
    print("Sweeping fault fractions over an 80-node network")
    print("(the paper's Figure 15 runs the same sweep at 10,000 nodes)")

    dead = sweep("dead", fractions)
    print_table("Dead / free-riding nodes (correct nodes only):", dead)

    oov = sweep("oov", fractions)
    print_table("Out-of-view nodes (inconsistent views):", oov)

    print()
    print("Expected shape (paper, 10k nodes): graceful degradation, a knee")
    print("near 50% faults, and a majority still sampling on time at 20-40%.")


if __name__ == "__main__":
    main()
