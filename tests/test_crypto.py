"""Simulated crypto substrate: identities, KZG commitments, RANDAO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.keys import SIGNATURE_BYTES, KeyPair, node_id_from_pubkey
from repro.crypto.kzg import (
    COMMITMENT_BYTES,
    PROOF_BYTES,
    KzgProof,
    commit_blob,
    prove_cell,
    verify_cell,
)
from repro.crypto.randao import RandaoBeacon
from repro.erasure.blob import Blob


class TestKeys:
    def test_deterministic_from_seed(self):
        assert KeyPair(7).public == KeyPair(7).public

    def test_distinct_seeds_distinct_keys(self):
        assert KeyPair(1).public != KeyPair(2).public

    def test_node_id_is_pubkey_hash(self):
        kp = KeyPair(3)
        assert kp.node_id == node_id_from_pubkey(kp.public)
        assert 0 <= kp.node_id < 2**256

    def test_sign_verify_roundtrip(self):
        kp = KeyPair(4)
        sig = kp.sign(b"seed message")
        assert sig.size == SIGNATURE_BYTES
        assert KeyPair.verify(kp.public, b"seed message", sig)

    def test_tampered_message_fails(self):
        kp = KeyPair(5)
        sig = kp.sign(b"original")
        assert not KeyPair.verify(kp.public, b"tampered", sig)

    def test_wrong_key_fails(self):
        a, b = KeyPair(6), KeyPair(7)
        sig = a.sign(b"msg")
        assert not KeyPair.verify(b.public, b"msg", sig)

    def test_truncated_signature_fails(self):
        kp = KeyPair(8)
        sig = kp.sign(b"msg")
        from repro.crypto.keys import Signature

        assert not KeyPair.verify(kp.public, b"msg", Signature(sig.tag[:10]))


class TestKzg:
    @pytest.fixture(scope="class")
    def ext_blob(self):
        rng = np.random.default_rng(1)
        cells = rng.integers(0, 256, size=(2, 2, 4), dtype=np.uint8)
        return Blob(cells).extend()

    def test_commitment_size(self, ext_blob):
        assert commit_blob(ext_blob).size == COMMITMENT_BYTES

    def test_commitment_binds_content(self, ext_blob):
        rng = np.random.default_rng(2)
        other = Blob(rng.integers(0, 256, size=(2, 2, 4), dtype=np.uint8)).extend()
        assert commit_blob(ext_blob).digest != commit_blob(other).digest

    def test_proof_verifies(self, ext_blob):
        commitment = commit_blob(ext_blob)
        cell = ext_blob.cell_by_id(5)
        proof = prove_cell(commitment, 5, cell)
        assert proof.size == PROOF_BYTES
        assert verify_cell(commitment, 5, cell, proof)

    def test_proof_position_bound(self, ext_blob):
        commitment = commit_blob(ext_blob)
        cell = ext_blob.cell_by_id(5)
        proof = prove_cell(commitment, 5, cell)
        assert not verify_cell(commitment, 6, cell, proof)

    def test_corrupted_cell_rejected(self, ext_blob):
        commitment = commit_blob(ext_blob)
        cell = ext_blob.cell_by_id(5)
        proof = prove_cell(commitment, 5, cell)
        assert not verify_cell(commitment, 5, b"\x00" * len(cell), proof)

    def test_missing_proof_rejected(self, ext_blob):
        commitment = commit_blob(ext_blob)
        assert not verify_cell(commitment, 5, ext_blob.cell_by_id(5), None)
        assert not verify_cell(
            commitment, 5, ext_blob.cell_by_id(5), KzgProof(b"short")
        )


class TestRandao:
    def test_same_epoch_same_seed(self):
        beacon = RandaoBeacon(9)
        assert beacon.epoch_seed(4) == beacon.epoch_seed(4)

    def test_epochs_differ(self):
        beacon = RandaoBeacon(9)
        assert beacon.epoch_seed(4) != beacon.epoch_seed(5)

    def test_genesis_differ(self):
        assert RandaoBeacon(1).epoch_seed(0) != RandaoBeacon(2).epoch_seed(0)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            RandaoBeacon(1).epoch_seed(-1)

    def test_slot_seed_domain_separation(self):
        beacon = RandaoBeacon(3)
        assert beacon.slot_seed(0, 1, "proposer") != beacon.slot_seed(0, 1, "committee")
        assert beacon.slot_seed(0, 1, "proposer") != beacon.slot_seed(0, 2, "proposer")
