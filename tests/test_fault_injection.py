"""Behaviour of the deterministic fault injector inside a scenario.

Static fault models (dead nodes, inconsistent views) live in
``test_faults.py``; this file covers the dynamic layer added by
``repro.faults``: link faults, partitions, crash/restart and slow
responders, all replayable from the scenario seed.
"""

from __future__ import annotations

import pytest

from repro.core.messages import CellResponse
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import CrashWindow, FaultPlan, PartitionWindow, SlowResponders
from repro.params import PandasParams


def dense_params():
    return PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=dense_params(),
        policy=RedundantSeeding(4),
        seed=5,
        slots=1,
        num_vertices=400,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestLinkFaults:
    def test_extra_loss_drops_datagrams(self):
        plan = FaultPlan(loss=0.2)
        faulty = Scenario(make_config(faults=plan)).run()
        clean = Scenario(make_config()).run()
        assert faulty.metrics.fault_counts["link_drop"] > 0
        assert faulty.network.datagrams_lost > clean.network.datagrams_lost

    def test_duplication_delivers_copies(self):
        plan = FaultPlan(duplication=0.3)
        scenario = Scenario(make_config(faults=plan)).run()
        assert scenario.metrics.fault_counts["duplicate"] > 0
        assert scenario.network.datagrams_duplicated > 0
        assert (
            scenario.network.datagrams_delivered
            > scenario.network.datagrams_sent - scenario.network.datagrams_lost
        )

    def test_jitter_still_completes(self):
        plan = FaultPlan(jitter=0.05)
        scenario = Scenario(make_config(faults=plan)).run()
        assert scenario.sampling_distribution().fraction_within(4.0) > 0.9

    def test_empty_plan_leaves_transport_untouched(self):
        scenario = Scenario(make_config(faults=FaultPlan()))
        assert scenario.fault_injector is None
        assert scenario.network.fault_filter is None

    def test_faulty_run_matches_clean_run_protocol_randomness(self):
        """Fault draws come from dedicated streams: adding a fault plan
        must not perturb protocol-side randomness such as the dead-node
        pick or per-node sample choices."""
        clean = Scenario(make_config(dead_fraction=0.1))
        faulty = Scenario(make_config(dead_fraction=0.1, faults=FaultPlan(loss=0.3)))
        assert clean.dead_nodes == faulty.dead_nodes
        rng_a = clean.rngs.stream("samples", 3, 0)
        rng_b = faulty.rngs.stream("samples", 3, 0)
        assert rng_a.sample(range(256), 10) == rng_b.sample(range(256), 10)


class TestCrashRestart:
    def test_crash_and_restart_counted(self):
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.5, restart_at=1.0, count=2),))
        scenario = Scenario(make_config(faults=plan)).run()
        assert scenario.metrics.fault_counts["crash"] == 2
        assert scenario.metrics.fault_counts["restart"] == 2
        assert len(scenario.crashed_nodes) == 2

    def test_crashed_node_is_dead_then_revived(self):
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.5, restart_at=1.0, count=1),))
        scenario = Scenario(make_config(faults=plan))
        (victim,) = scenario.fault_injector.crash_targets
        observed = {}
        scenario.sim.call_at(0.7, lambda: observed.update(mid=scenario.network.is_alive(victim)))
        scenario.sim.call_at(1.2, lambda: observed.update(late=scenario.network.is_alive(victim)))
        scenario.run()
        assert observed == {"mid": False, "late": True}

    def test_crash_clears_node_state(self):
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.5, restart_at=None, count=1),))
        scenario = Scenario(make_config(faults=plan))
        (victim,) = scenario.fault_injector.crash_targets
        snapshots = {}
        scenario.sim.call_at(
            0.4, lambda: snapshots.update(before=scenario.nodes[victim].slot_cells(0))
        )
        scenario.sim.call_at(
            0.6, lambda: snapshots.update(after=scenario.nodes[victim].slot_cells(0))
        )
        scenario.run()
        assert snapshots["before"] is not None
        assert snapshots["after"] is None  # volatile state lost at crash

    def test_early_crash_restart_recovers_by_deadline(self):
        """A node crashing mid-fetch and restarting re-fetches its
        custody and samples from peers and still meets the deadline."""
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.2, restart_at=0.6, count=2),))
        scenario = Scenario(make_config(faults=plan)).run()
        for victim in scenario.crashed_nodes:
            times = scenario.metrics.phase_times.get((0, victim))
            assert times is not None and times.sampling is not None
            assert times.sampling <= 4.0

    def test_victim_choice_is_seed_deterministic(self):
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.5, restart_at=1.0, count=3),))
        a = Scenario(make_config(faults=plan, seed=5))
        b = Scenario(make_config(faults=plan, seed=5))
        c = Scenario(make_config(faults=plan, seed=6))
        assert a.fault_injector.crash_targets == b.fault_injector.crash_targets
        assert a.fault_injector.crash_targets != c.fault_injector.crash_targets

    def test_pinned_victims_respected(self):
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.5, nodes=(3, 7)),))
        scenario = Scenario(make_config(faults=plan))
        assert scenario.fault_injector.crash_targets == {3, 7}

    def test_too_many_victims_rejected(self):
        plan = FaultPlan(crashes=(CrashWindow(crash_at=0.5, count=100),))
        with pytest.raises(ValueError):
            Scenario(make_config(faults=plan, num_nodes=10))


class TestPartitions:
    def test_cross_partition_traffic_dropped_during_window(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(start=0.0, duration=12.0, fraction=0.4),)
        )
        scenario = Scenario(make_config(faults=plan))
        (group,) = scenario.fault_injector.partition_groups
        crossings = []
        scenario.network.on_deliver.append(
            lambda d: crossings.append(d)
            if (d.src in group) != (d.dst in group) and d.src != scenario.builder_id
            else None
        )
        scenario.run()
        assert crossings == []
        assert scenario.metrics.fault_counts["partition_drop"] > 0

    def test_partition_heals_after_window(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(start=0.0, duration=0.3, fraction=0.4),)
        )
        scenario = Scenario(make_config(faults=plan))
        late_crossings = []
        (group,) = scenario.fault_injector.partition_groups

        def watch(dgram):
            if dgram.sent_at >= 0.3 and (dgram.src in group) != (dgram.dst in group):
                late_crossings.append(dgram)

        scenario.network.on_deliver.append(watch)
        scenario.run()
        assert scenario.metrics.fault_counts["partition_close"] == 1
        assert late_crossings  # traffic crosses again once healed

    def test_builder_stays_in_majority(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(start=0.0, duration=1.0, fraction=0.3),)
        )
        scenario = Scenario(make_config(faults=plan))
        (group,) = scenario.fault_injector.partition_groups
        assert scenario.builder_id not in group


class TestSlowResponders:
    def test_slow_nodes_delay_their_responses(self):
        plan = FaultPlan(slow=(SlowResponders(count=3, extra_delay=0.2),))
        scenario = Scenario(make_config(faults=plan))
        slow = set(scenario.fault_injector.slow_nodes)
        assert len(slow) == 3
        sent_at = {}
        delays = []

        def on_send(dgram):
            if isinstance(dgram.payload, CellResponse) and dgram.src in slow:
                sent_at[id(dgram)] = (dgram, dgram.sent_at)

        def on_deliver(dgram):
            entry = sent_at.get(id(dgram))
            if entry is not None and entry[0] is dgram:
                delays.append(scenario.sim.now - entry[1])

        scenario.network.on_send.append(on_send)
        scenario.network.on_deliver.append(on_deliver)
        scenario.run()
        assert scenario.metrics.fault_counts["slow_delay"] > 0
        assert delays and min(delays) >= 0.2
