"""PandasNode behaviour: seed ingestion, serving, buffering, timers."""

from __future__ import annotations


from repro.core.messages import CellRequest, CellResponse, SeedMessage
from tests.helpers import make_world


def test_end_to_end_slot_completes_everything():
    world = make_world(num_nodes=30)
    world.run_slot(0)
    for node_id, node in world.nodes.items():
        cells = node.slot_cells(0)
        assert cells is not None
        assert cells.consolidation_complete, f"node {node_id} did not consolidate"
        assert cells.sampling_complete, f"node {node_id} did not sample"


def test_phase_times_recorded_in_order():
    world = make_world(num_nodes=30)
    world.run_slot(0)
    for (slot, node_id), times in world.ctx.metrics.phase_times.items():
        assert times.seeding is not None
        assert times.consolidation is not None
        assert times.sampling is not None
        assert times.seeding <= times.consolidation


def test_seed_marks_seeding_once():
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    msg = SeedMessage(slot=0, epoch=0, line=0, cells=(1, 2), total_messages=5)
    node._on_seed(world.builder.builder_id, msg)
    first = world.ctx.metrics.phase_times[(0, 0)].seeding
    world.sim.call_after(0.1, lambda: None)
    world.sim.run()
    node._on_seed(
        world.builder.builder_id,
        SeedMessage(slot=0, epoch=0, line=1, cells=(3,), total_messages=5),
    )
    assert world.ctx.metrics.phase_times[(0, 0)].seeding == first


def test_fetch_starts_when_seed_stream_completes():
    """Fetching starts once all the builder's datagrams arrived, with
    the 400 ms quiescence timer as the loss fallback."""
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    node._on_seed(21, SeedMessage(slot=0, epoch=0, line=0, cells=(1,), total_messages=2))
    assert not node.slot_fetcher(0).started
    node._on_seed(21, SeedMessage(slot=0, epoch=0, line=1, cells=(2,), total_messages=2))
    assert node.slot_fetcher(0).started


def test_quiescence_timer_covers_lost_seed_messages():
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    node._on_seed(21, SeedMessage(slot=0, epoch=0, line=0, cells=(1,), total_messages=3))
    world.sim.run(until=0.3)
    node._on_seed(21, SeedMessage(slot=0, epoch=0, line=1, cells=(2,), total_messages=3))
    world.sim.run(until=0.5)  # timer re-armed at 0.3
    assert not node.slot_fetcher(0).started
    world.sim.run(until=0.75)
    assert node.slot_fetcher(0).started


def test_inbound_cells_excluded_from_targets():
    """Cells the builder declares as ours-in-flight are requested last
    (Table 1's zero round-1 duplicates)."""
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    custody = world.ctx.assignment.custody(0, 0)
    row = custody.rows[0]
    from repro.core.assignment import cells_of_line

    row_cells = cells_of_line(row, world.params.ext_rows, world.params.ext_cols)
    inbound_declared = tuple(row_cells[:4])
    msg = SeedMessage(
        slot=0,
        epoch=0,
        line=row,
        cells=(row_cells[0],),
        boost=((0, inbound_declared),),  # own entry -> inbound knowledge
        total_messages=2,
    )
    node._on_seed(21, msg)
    fetcher = node.slot_fetcher(0)
    assert set(inbound_declared) <= fetcher.inbound
    # inbound cells that are not wanted for other reasons (samples, a
    # second custody line crossing them) must not be targeted: the
    # row's deficit is fully coverable by non-inbound cells
    state = node.slot_cells(0)
    other_lines = set(state.custody_lines) - {row}
    unavoidable = set(state.samples)
    for cid in inbound_declared:
        row_line, col_line = state.lines_of(cid)
        if row_line in other_lines or col_line in other_lines:
            unavoidable.add(cid)
    targets = fetcher.round_targets()
    assert not ((set(inbound_declared) - unavoidable) & targets)


def test_request_for_unseeded_slot_arms_timer():
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    request = CellRequest(slot=0, epoch=0, cells=frozenset({5}))
    node._on_request(3, request)
    assert not node.slot_fetcher(0).started
    world.sim.run(until=world.params.consolidation_timer + 0.01)
    assert node.slot_fetcher(0).started


def test_request_served_partially_then_deferred():
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    responses = []
    world.network.on_deliver.append(
        lambda d: responses.append(d) if isinstance(d.payload, CellResponse) else None
    )
    state = node._slot_state(0)
    state.cells.add_cells([5])
    node._on_request(3, CellRequest(slot=0, epoch=0, cells=frozenset({5, 6})))
    world.sim.run(until=0.1)
    assert len(responses) == 1
    assert responses[0].payload.cells == (5,)
    # the remainder arrives later -> one deferred reply
    node._on_seed(21, SeedMessage(slot=0, epoch=0, line=0, cells=(6,), total_messages=1))
    world.sim.run(until=0.2)
    assert len(responses) == 2
    assert responses[1].payload.cells == (6,)


def test_request_fully_served_immediately():
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    responses = []
    world.network.on_deliver.append(
        lambda d: responses.append(d) if isinstance(d.payload, CellResponse) else None
    )
    state = node._slot_state(0)
    state.cells.add_cells([7, 8])
    node._on_request(3, CellRequest(slot=0, epoch=0, cells=frozenset({7, 8})))
    world.sim.run(until=0.1)
    assert len(responses) == 1
    assert sorted(responses[0].payload.cells) == [7, 8]


def test_boost_excludes_own_entries():
    world = make_world(num_nodes=20)
    node = world.nodes[0]
    world.ctx.begin_slot(0)
    msg = SeedMessage(
        slot=0, epoch=0, line=0, cells=(1,),
        boost=((0, (9,)), (4, (10,))), total_messages=1,
    )
    node._on_seed(21, msg)
    fetcher = node.slot_fetcher(0)
    assert 0 not in fetcher.boost
    assert fetcher.boost[4] == {10}


def test_drop_slot_releases_state():
    world = make_world(num_nodes=20)
    world.run_slot(0)
    node = world.nodes[0]
    assert node.slot_cells(0) is not None
    node.drop_slot(0)
    assert node.slot_cells(0) is None


def test_multiple_slots_independent():
    world = make_world(num_nodes=25)
    world.run_slot(0)
    world.run_slot(1)
    completed = [
        times.sampling is not None
        for (_slot, _node), times in world.ctx.metrics.phase_times.items()
    ]
    assert all(completed)
    assert len(completed) == 2 * 25
