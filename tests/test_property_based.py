"""Property-based tests (hypothesis) for the codec and the assignment.

These complement the example-based suites with randomized coverage of
the two components whose correctness the whole protocol leans on:

- ``ReedSolomon``: any >= k surviving symbols reconstruct the exact
  codeword; any < k symbols are rejected (the information-theoretic
  threshold behind the withholding analysis);
- ``CellAssignment``: ``S(node, epoch)`` is a pure function of
  ``(epoch_seed, node_id)`` — view-independent, distinct, in-range —
  and a realistic node population covers every line of the grid.

Kept in its own file so CI can run it as a separate (non-blocking)
job: hypothesis shrinks aggressively on failure and example-based
tier-1 signal should not wait on it.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.core.assignment import CellAssignment, cells_of_line, lines_of_cell  # noqa: E402
from repro.crypto.randao import RandaoBeacon  # noqa: E402
from repro.erasure.reed_solomon import ReedSolomon  # noqa: E402
from repro.params import PandasParams  # noqa: E402

FAST = settings(max_examples=25, deadline=None)


# ----------------------------------------------------------------------
# Reed-Solomon round trips
# ----------------------------------------------------------------------
@st.composite
def codeword_with_erasures(draw):
    """A random RS(k, 2k) codeword plus a survivor set of >= k positions."""
    k = draw(st.integers(min_value=1, max_value=16))
    data = draw(st.lists(st.integers(0, 255), min_size=k, max_size=k))
    n = 2 * k
    survivors = draw(
        st.sets(st.integers(0, n - 1), min_size=k, max_size=n).map(sorted)
    )
    return k, data, survivors


class TestReedSolomonProperties:
    @FAST
    @given(codeword_with_erasures())
    def test_any_k_survivors_reconstruct_exactly(self, case):
        k, data, survivors = case
        rs = ReedSolomon(k, 2 * k)
        codeword = rs.encode(data)
        known = {pos: codeword[pos] for pos in survivors}
        assert rs.decode(known) == codeword

    @FAST
    @given(codeword_with_erasures())
    def test_systematic_prefix_is_the_data(self, case):
        k, data, _ = case
        rs = ReedSolomon(k, 2 * k)
        assert rs.encode(data)[:k] == data

    @FAST
    @given(
        st.integers(min_value=2, max_value=16),
        st.data(),
    )
    def test_below_threshold_is_rejected(self, k, data):
        rs = ReedSolomon(k, 2 * k)
        codeword = rs.encode([0] * k)
        count = data.draw(st.integers(0, k - 1))
        survivors = data.draw(
            st.sets(st.integers(0, 2 * k - 1), min_size=count, max_size=count)
        )
        with pytest.raises(ValueError):
            rs.decode({pos: codeword[pos] for pos in survivors})

    @FAST
    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_encode_is_deterministic(self, data):
        rs = ReedSolomon(4, 8)
        assert rs.encode(data) == rs.encode(data)


# ----------------------------------------------------------------------
# Assignment purity and coverage
# ----------------------------------------------------------------------
def small_params() -> PandasParams:
    return PandasParams(
        base_rows=4, base_cols=4, custody_rows=2, custody_cols=2, samples=5
    )


class TestAssignmentProperties:
    @FAST
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=100),
    )
    def test_custody_is_pure_in_seed_and_node(self, genesis, node, epoch):
        """Two independent instances agree: no hidden view/order state."""
        params = small_params()
        a = CellAssignment(params, RandaoBeacon(genesis))
        b = CellAssignment(params, RandaoBeacon(genesis))
        assert a.custody(node, epoch) == b.custody(node, epoch)

    @FAST
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=100),
    )
    def test_custody_lines_distinct_sorted_in_range(self, node, epoch):
        params = small_params()
        assignment = CellAssignment(params, RandaoBeacon(7))
        custody = assignment.custody(node, epoch)
        assert len(set(custody.rows)) == params.custody_rows
        assert len(set(custody.cols)) == params.custody_cols
        assert list(custody.rows) == sorted(custody.rows)
        assert list(custody.cols) == sorted(custody.cols)
        assert all(0 <= r < params.ext_rows for r in custody.rows)
        assert all(0 <= c < params.ext_cols for c in custody.cols)

    @FAST
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=100),
    )
    def test_custody_cells_match_lines(self, node, epoch):
        params = small_params()
        assignment = CellAssignment(params, RandaoBeacon(7))
        lines = assignment.lines(node, epoch)
        expected = set()
        for line in lines:
            expected.update(cells_of_line(line, params.ext_rows, params.ext_cols))
        assert assignment.custody_cells(node, epoch) == expected

    @FAST
    @given(st.integers(min_value=0, max_value=2**32))
    def test_population_covers_every_line(self, genesis):
        """200 nodes leave no line of the small grid uncustodied."""
        params = small_params()
        assignment = CellAssignment(params, RandaoBeacon(genesis))
        covered = set()
        for node in range(200):
            covered.update(assignment.lines(node, epoch=0))
        assert covered == set(range(params.ext_rows + params.ext_cols))

    @FAST
    @given(st.integers(min_value=0, max_value=63))
    def test_cell_line_duality(self, cid):
        params = small_params()
        row_line, col_line = lines_of_cell(cid, params.ext_rows, params.ext_cols)
        assert cid in cells_of_line(row_line, params.ext_rows, params.ext_cols)
        assert cid in cells_of_line(col_line, params.ext_rows, params.ext_cols)


# ----------------------------------------------------------------------
# event-queue backend equivalence
# ----------------------------------------------------------------------
@st.composite
def event_schedule(draw):
    """A batch of event times with deliberate tie mass, plus a subset
    to cancel. Times are snapped to a coarse grid so exact-equality
    ties (the hard case for any bucketed queue) occur constantly."""
    times = draw(
        st.lists(
            st.integers(min_value=0, max_value=5000).map(lambda t: t / 1000.0),
            min_size=1,
            max_size=120,
        )
    )
    cancel_mask = draw(
        st.lists(st.booleans(), min_size=len(times), max_size=len(times))
    )
    return times, cancel_mask


class TestQueueBackendEquivalence:
    @FAST
    @given(event_schedule())
    def test_calendar_matches_heap_pop_order(self, schedule):
        from repro.sim.engine import Simulator

        times, cancel_mask = schedule
        orders = {}
        for backend in ("calendar", "heap"):
            sim = Simulator(queue=backend)
            popped: list[tuple[float, int]] = []
            events = []
            for index, t in enumerate(times):
                events.append(
                    sim.call_at(t, lambda t=t, i=index: popped.append((t, i)))
                )
            for event, cancel in zip(events, cancel_mask):
                if cancel:
                    event.cancel()
            sim.run()
            orders[backend] = popped
        assert orders["calendar"] == orders["heap"]
        live = [t for t, cancel in zip(times, cancel_mask) if not cancel]
        assert [t for t, _ in orders["calendar"]] == sorted(live)
        # ties must fire in scheduling order
        fired_ids = [i for _, i in orders["calendar"]]
        by_time: dict[float, list[int]] = {}
        for t, i in orders["calendar"]:
            by_time.setdefault(t, []).append(i)
        for ids in by_time.values():
            assert ids == sorted(ids)
        assert len(fired_ids) == len(live)


# ----------------------------------------------------------------------
# telemetry histograms: determinism under reordering, merge, quantiles
# ----------------------------------------------------------------------
@st.composite
def histogram_values(draw):
    """Values spanning underflow, every pow2 bucket, and overflow."""
    return draw(
        st.lists(
            st.floats(
                min_value=1e-5,
                max_value=64.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestTelemetryHistogramProperties:
    @FAST
    @given(histogram_values(), st.randoms(use_true_random=False))
    def test_insertion_order_never_changes_the_histogram(self, values, rnd):
        from repro.obs.telemetry import Histogram

        shuffled = list(values)
        rnd.shuffle(shuffled)
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
        for v in shuffled:
            b.observe(v)
        assert a.counts == b.counts
        assert a.count == b.count
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            assert a.quantile(q) == b.quantile(q)

    @FAST
    @given(histogram_values(), histogram_values())
    def test_merge_equals_observing_the_concatenation(self, left, right):
        from repro.obs.telemetry import Histogram

        merged, direct = Histogram(), Histogram()
        part = Histogram()
        for v in left:
            merged.observe(v)
        for v in right:
            part.observe(v)
        merged.merge(part)
        for v in left + right:
            direct.observe(v)
        assert merged.counts == direct.counts
        assert merged.count == direct.count
        assert merged.sum == pytest.approx(direct.sum)

    @FAST
    @given(histogram_values(), st.lists(st.floats(0.0, 1.0), min_size=2, max_size=8))
    def test_quantiles_monotone_in_q(self, values, qs):
        from repro.obs.telemetry import Histogram

        hist = Histogram()
        for v in values:
            hist.observe(v)
        estimates = [hist.quantile(q) for q in sorted(qs)]
        assert all(b >= a for a, b in zip(estimates, estimates[1:]))
        # estimates live inside the representable range
        assert all(0.0 <= e <= hist.bounds[-1] for e in estimates)

    @FAST
    @given(histogram_values())
    def test_round_trip_through_parts_is_lossless(self, values):
        from repro.obs.telemetry import Histogram

        hist = Histogram()
        for v in values:
            hist.observe(v)
        d = hist.to_dict()
        rebuilt = Histogram.from_parts(d["bounds"], d["counts"], d["sum"])
        assert rebuilt.counts == hist.counts
        for q in (0.1, 0.5, 0.99):
            assert rebuilt.quantile(q) == hist.quantile(q)
