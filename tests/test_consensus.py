"""Consensus substrate: clock, sortition, chain objects, fork-choice."""

from __future__ import annotations

import pytest

from repro.consensus.chain import AggregateDecision, Attestation, BlobTransaction, Block
from repro.consensus.clock import SlotClock, SlotPhase
from repro.consensus.forkchoice import ForkChoiceRule, ForkChoiceSimulator
from repro.consensus.validators import ValidatorRegistry
from repro.crypto.kzg import KzgCommitment
from repro.crypto.randao import RandaoBeacon


class TestSlotClock:
    def test_slot_boundaries(self):
        clock = SlotClock()
        assert clock.slot_at(0.0) == 0
        assert clock.slot_at(11.999) == 0
        assert clock.slot_at(12.0) == 1

    def test_epoch_mapping(self):
        clock = SlotClock()
        assert clock.epoch_of_slot(31) == 0
        assert clock.epoch_of_slot(32) == 1

    def test_attestation_deadline_is_one_third(self):
        clock = SlotClock()
        assert clock.attestation_deadline(0) == pytest.approx(4.0)
        assert clock.attestation_deadline(2) == pytest.approx(28.0)

    def test_phases(self):
        clock = SlotClock()
        assert clock.phase_at(1.0) == SlotPhase.BLOCK
        assert clock.phase_at(5.0) == SlotPhase.ATTESTATION
        assert clock.phase_at(9.0) == SlotPhase.AGGREGATION

    def test_genesis_offset(self):
        clock = SlotClock(genesis_time=100.0)
        assert clock.slot_at(100.0) == 0
        with pytest.raises(ValueError):
            clock.slot_at(99.0)


class TestValidatorRegistry:
    def make_registry(self, validators=100, nodes=20):
        import random

        registry = ValidatorRegistry(RandaoBeacon(5), committee_size=16)
        registry.register_many(validators, list(range(nodes)), random.Random(1))
        return registry

    def test_sortition_deterministic(self):
        a = self.make_registry().committee_for_slot(7)
        b = self.make_registry().committee_for_slot(7)
        assert a == b

    def test_committee_changes_across_slots(self):
        registry = self.make_registry()
        assert registry.committee_for_slot(0) != registry.committee_for_slot(1)

    def test_committee_members_distinct(self):
        committee = self.make_registry().committee_for_slot(3)
        assert len(committee.members) == len(set(committee.members)) == 16

    def test_proposer_node_resolution(self):
        registry = self.make_registry()
        node = registry.proposer_node(4)
        assert 0 <= node < 20

    def test_duplicate_registration_rejected(self):
        registry = ValidatorRegistry(RandaoBeacon(1))
        registry.register(0, 5)
        with pytest.raises(ValueError):
            registry.register(0, 6)

    def test_empty_registry_cannot_sortition(self):
        with pytest.raises(ValueError):
            ValidatorRegistry(RandaoBeacon(1)).committee_for_slot(0)


class TestChainObjects:
    def test_block_size_includes_blob_transactions(self):
        tx = BlobTransaction(sender=1, commitment=KzgCommitment(b"x" * 48), blob_bytes=1000)
        block = Block(slot=0, proposer=1, builder_id=2, parent_root=b"p", blob_transactions=(tx,))
        assert block.size == block.body_bytes + tx.size

    def test_attestation_vote_requires_both(self):
        assert Attestation(0, 1, block_valid=True, data_available=True).vote
        assert not Attestation(0, 1, block_valid=True, data_available=False).vote
        assert not Attestation(0, 1, block_valid=False, data_available=True).vote

    def test_aggregate_supermajority(self):
        assert AggregateDecision(0, votes_for=67, votes_against=33, missing=0).accepted
        assert not AggregateDecision(0, votes_for=66, votes_against=34, missing=0).accepted
        assert not AggregateDecision(0, votes_for=0, votes_against=0, missing=0).accepted

    def test_missing_votes_count_against(self):
        assert not AggregateDecision(0, votes_for=60, votes_against=0, missing=40).accepted


class TestForkChoice:
    def test_tight_rule_requires_sampling(self):
        fc = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
        on_time = fc.outcome_for(0, 1, block_time=2.0, sampling_time=3.0)
        late_sample = fc.outcome_for(0, 1, block_time=2.0, sampling_time=5.0)
        no_sample = fc.outcome_for(0, 1, block_time=2.0, sampling_time=None)
        assert on_time.attests_valid
        assert not late_sample.attests_valid
        assert not no_sample.attests_valid

    def test_trailing_rule_ignores_sampling_at_deadline(self):
        fc = ForkChoiceSimulator(ForkChoiceRule.TRAILING)
        outcome = fc.outcome_for(0, 1, block_time=2.0, sampling_time=None)
        assert outcome.attests_valid  # votes without availability...
        assert outcome.later_reverted  # ...and must revert later

    def test_tight_rule_never_reverts(self):
        fc = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
        outcome = fc.outcome_for(0, 1, block_time=2.0, sampling_time=None)
        assert not outcome.later_reverted

    def test_block_must_arrive_for_any_vote(self):
        for rule in (ForkChoiceRule.TIGHT, ForkChoiceRule.TRAILING):
            fc = ForkChoiceSimulator(rule)
            assert not fc.outcome_for(0, 1, None, 1.0).attests_valid

    def test_aggregate_from_outcomes(self):
        fc = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
        outcomes = [
            fc.outcome_for(0, n, block_time=1.0, sampling_time=2.0) for n in range(8)
        ] + [fc.outcome_for(0, 9, block_time=1.0, sampling_time=None)]
        decision = fc.aggregate(outcomes)
        assert decision.votes_for == 8
        assert decision.votes_against == 1
        assert decision.accepted

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            ForkChoiceSimulator("sideways")

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ValueError):
            ForkChoiceSimulator().aggregate([])
