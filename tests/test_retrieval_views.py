"""Retrieval client under restricted views and degraded networks."""

from __future__ import annotations


from repro.core.retrieval import RetrievalClient
from tests.helpers import make_world


def add_client(world, view=None):
    client_id = 1000
    client = RetrievalClient(world.ctx, client_id, view)
    world.network.register(client_id, len(world.nodes) + 1, client.on_datagram, None, None)
    return client


def test_view_restricted_client_uses_only_view():
    world = make_world(num_nodes=30)
    world.run_slot(0)
    view = set(range(15))
    client = add_client(world, view=view)
    from repro.core.messages import CellRequest

    targets = []
    world.network.on_send.append(
        lambda d: targets.append(d.dst)
        if isinstance(d.payload, CellRequest) and d.src == 1000
        else None
    )
    outcome = client.fetch_lines(0, rows=(2,))
    world.sim.run(until=world.sim.now + 4.0)
    assert targets and set(targets) <= view
    assert outcome.complete  # 15 nodes still cover the line's custodians


def test_retrieval_survives_loss():
    world = make_world(num_nodes=30, loss_rate=0.1)
    world.run_slot(0)
    client = add_client(world)
    outcome = client.fetch_lines(0, rows=(1,), cols=(4,))
    world.sim.run(until=world.sim.now + 6.0)
    assert outcome.complete


def test_retrieval_fails_gracefully_with_empty_view():
    world = make_world(num_nodes=30)
    world.run_slot(0)
    client = add_client(world, view=set())
    results = []
    outcome = client.fetch_lines(0, rows=(0,), callback=results.append)
    world.sim.run(until=world.sim.now + 8.0)
    # nobody to query: the fetcher gives up without crashing
    assert not outcome.complete


def test_retrieved_cells_reported_incrementally():
    world = make_world(num_nodes=30)
    world.run_slot(0)
    client = add_client(world)
    outcome = client.fetch_lines(0, rows=(3,))
    assert len(outcome.cells) == 0
    world.sim.run(until=world.sim.now + 4.0)
    assert len(outcome.cells) == world.params.ext_cols
