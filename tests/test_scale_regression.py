"""Scale-regression suite: the engine's determinism contract at scale.

Three pins protect the scale-up work (calendar queue, batched
transport, slotted node state, vectorized planners):

1. cross-run determinism — the same configuration executed twice is
   bit-identical, at a population large enough to exercise the
   vectorized candidate scan and the inbox machinery under load;
2. backend equivalence — the calendar queue, the legacy binary heap,
   batched delivery and per-datagram delivery all produce the same
   metrics fingerprint (they are four implementations of one total
   order);
3. an absolute replay anchor — a pinned fingerprint for a small dense
   scenario. If a change moves it, the change altered protocol
   behaviour, not just performance; either fix the change or update
   the pin *deliberately* alongside BENCH_* evidence.

``REPRO_SCALE_NODES`` scales the cross-run population (default 250 —
large enough for every fast path, small enough for tier-1); the CI
perf job runs the same tests at 1,000.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams
from repro.sim.engine import Simulator

# computed on the growth seed of this suite; see docstring for policy
DENSE_PIN = "383191c86dc6acea043df90fedcb599931762dbd26ea2eaf4853aeecec6ffef7"


def scale_nodes(default: int = 250) -> int:
    return int(os.environ.get("REPRO_SCALE_NODES", default))


def dense_config(seed=9, **overrides):
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def reduced_scale_config(**overrides):
    """A population-heavy, grid-reduced config for cross-run pins.

    The 4x-reduced grid keeps per-node work light so the test is
    dominated by population-scaling code paths (candidate scan over
    hundreds of custodians, transport inboxes, calendar buckets).
    """
    defaults = dict(
        num_nodes=scale_nodes(),
        params=PandasParams.reduced(4),
        seed=11,
        slots=1,
        num_vertices=500,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


# ----------------------------------------------------------------------
# 1. cross-run determinism at scale
# ----------------------------------------------------------------------
def test_cross_run_determinism_at_scale():
    first = Scenario(reduced_scale_config()).run()
    second = Scenario(reduced_scale_config()).run()
    assert first.metrics.fingerprint() == second.metrics.fingerprint()
    assert first.sim.events_processed == second.sim.events_processed


# ----------------------------------------------------------------------
# 2. backend equivalence (queue x delivery)
# ----------------------------------------------------------------------
def test_calendar_and_heap_agree_on_scenario():
    calendar = Scenario(dense_config(queue="calendar")).run()
    heap = Scenario(dense_config(queue="heap")).run()
    assert calendar.metrics.fingerprint() == heap.metrics.fingerprint()
    assert calendar.sim.events_processed == heap.sim.events_processed


def test_all_backend_combinations_agree():
    fingerprints = {
        (queue, delivery): Scenario(dense_config(queue=queue, delivery=delivery))
        .run()
        .metrics.fingerprint()
        for queue in ("calendar", "heap")
        for delivery in ("batched", "per-datagram")
    }
    assert len(set(fingerprints.values())) == 1, fingerprints


def test_queue_backends_pop_identically_randomized():
    """Deterministic random schedule: both backends pop the exact same
    (time, seq) sequence, including timestamp ties, sub-tick clusters
    and lazily cancelled events."""
    rng = random.Random(1234)
    times = [round(rng.uniform(0.0, 2.0), rng.choice([1, 2, 3, 6])) for _ in range(600)]
    times += [0.5] * 25 + [1.0 / 1024] * 25  # heavy ties, bucket-edge times
    orders = {}
    for backend in ("calendar", "heap"):
        sim = Simulator(queue=backend)
        popped: list[tuple[float, int]] = []
        events = []
        for t in times:
            events.append(sim.call_at(t, lambda t=t: popped.append((t, sim.events_processed))))
        cancel_rng = random.Random(99)
        for event in cancel_rng.sample(events, 100):
            event.cancel()
        sim.run()
        orders[backend] = popped
    assert orders["calendar"] == orders["heap"]
    assert len(orders["calendar"]) == len(times) - 100


# ----------------------------------------------------------------------
# 3. absolute replay anchor
# ----------------------------------------------------------------------
def test_dense_scenario_replay_pin():
    scenario = Scenario(dense_config()).run()
    assert scenario.metrics.fingerprint() == DENSE_PIN


@pytest.mark.parametrize("queue", ["calendar", "heap"])
def test_replay_pin_is_backend_independent(queue):
    scenario = Scenario(dense_config(queue=queue, delivery="per-datagram")).run()
    assert scenario.metrics.fingerprint() == DENSE_PIN
