"""Topology placement and node profiles."""

from __future__ import annotations

import random

from repro.net.latency import ClusteredWanModel, ConstantLatency
from repro.net.link import gbps, mbps
from repro.net.topology import (
    DEFAULT_BUILDER_PROFILE,
    DEFAULT_NODE_PROFILE,
    NodeProfile,
    Topology,
)


def test_default_profiles_match_paper():
    """25 Mbps node connections, 10 Gbps builder (Section 8.1)."""
    assert DEFAULT_NODE_PROFILE.up_rate == mbps(25)
    assert DEFAULT_NODE_PROFILE.down_rate == mbps(25)
    assert DEFAULT_BUILDER_PROFILE.up_rate == gbps(10)


def test_nodes_get_vertices_within_range():
    latency = ConstantLatency(0.01, num_vertices=100)
    topo = Topology.build(latency, list(range(50)), [50], random.Random(1))
    for node_id in range(50):
        assert 0 <= topo.vertex_of(node_id) < 100


def test_builder_placed_in_best_connected_fraction():
    latency = ClusteredWanModel(num_vertices=500, seed=2)
    topo = Topology.build(latency, list(range(50)), [99], random.Random(1))
    best = set(latency.best_connected(0.2))
    assert topo.vertex_of(99) in best


def test_deterministic_given_rng_seed():
    latency = ConstantLatency(0.01, num_vertices=100)
    a = Topology.build(latency, list(range(20)), [20], random.Random(7))
    b = Topology.build(latency, list(range(20)), [20], random.Random(7))
    assert a.node_vertices == b.node_vertices
    assert a.builder_vertices == b.builder_vertices


def test_vertices_reused_beyond_population():
    """More nodes than vertices is allowed (the paper reuses vertices
    beyond 10,000 nodes)."""
    latency = ConstantLatency(0.01, num_vertices=10)
    topo = Topology.build(latency, list(range(50)), [], random.Random(1))
    assert len(topo.node_vertices) == 50


def test_profile_is_frozen_value_object():
    profile = NodeProfile(up_rate=1.0, down_rate=2.0, label="x")
    assert profile == NodeProfile(up_rate=1.0, down_rate=2.0, label="x")
