"""Builder seeding behaviour: budgets, boost maps, message counting."""

from __future__ import annotations


from repro.core.messages import SeedMessage
from repro.core.seeding import MinimalSeeding, RedundantSeeding, SingleSeeding
from tests.helpers import make_world


def collect_seeds(world, slot=0):
    seeds = []
    world.network.on_deliver.append(
        lambda d: seeds.append(d) if isinstance(d.payload, SeedMessage) else None
    )
    world.ctx.begin_slot(slot)
    world.builder.seed_slot(slot)
    world.sim.run(until=slot * world.params.slot_duration + 2.0)
    return seeds


def test_single_policy_seeds_every_cell_once():
    world = make_world(num_nodes=30, policy=SingleSeeding())
    seeds = collect_seeds(world)
    cells = [cid for d in seeds for cid in d.payload.cells]
    assert len(cells) == world.params.total_cells
    assert len(set(cells)) == world.params.total_cells


def test_redundant_policy_seeds_r_copies():
    world = make_world(num_nodes=30, policy=RedundantSeeding(3))
    seeds = collect_seeds(world)
    from collections import Counter

    counts = Counter(cid for d in seeds for cid in d.payload.cells)
    assert set(counts.values()) == {3}


def test_minimal_policy_seeds_quadrant():
    world = make_world(num_nodes=30, policy=MinimalSeeding())
    seeds = collect_seeds(world)
    params = world.params
    cells = {cid for d in seeds for cid in d.payload.cells}
    for cid in cells:
        row, col = divmod(cid, params.ext_cols)
        assert row < params.base_rows and col < params.base_cols


def test_seeds_go_only_to_line_custodians():
    world = make_world(num_nodes=30, policy=SingleSeeding())
    seeds = collect_seeds(world)
    index = world.ctx.index_for_epoch(0)
    for dgram in seeds:
        assert dgram.dst in index.custodians(dgram.payload.line)


def test_total_messages_matches_actual_count():
    world = make_world(num_nodes=30, policy=RedundantSeeding(3))
    seeds = collect_seeds(world)
    from collections import Counter

    per_node = Counter(d.dst for d in seeds)
    for dgram in seeds:
        assert dgram.payload.total_messages == per_node[dgram.dst]


def test_full_boost_map_on_first_burst_message_only():
    """The first datagram of each node's burst carries the complete
    boost map (including the recipient's own inbound parcels); later
    datagrams carry cells only."""
    world = make_world(num_nodes=30, policy=RedundantSeeding(3))
    seeds = collect_seeds(world)
    first_seen = set()
    for dgram in sorted(seeds, key=lambda d: d.sent_at):
        if dgram.dst not in first_seen:
            first_seen.add(dgram.dst)
            assert dgram.payload.boost  # full map present
        else:
            assert dgram.payload.boost == ()


def test_boost_map_includes_own_inbound_entries():
    world = make_world(num_nodes=30, policy=RedundantSeeding(3))
    seeds = collect_seeds(world)
    with_own = 0
    for dgram in seeds:
        if any(peer == dgram.dst for peer, _cells in dgram.payload.boost):
            with_own += 1
    assert with_own > 0


def test_boost_map_entries_are_custodians_of_their_cells_lines():
    world = make_world(num_nodes=30, policy=RedundantSeeding(3))
    seeds = collect_seeds(world)
    assignment = world.ctx.assignment
    for dgram in seeds[:20]:
        for peer, cells in dgram.payload.boost:
            for cid in list(cells)[:3]:
                assert assignment.is_custodian(peer, 0, cid)


def test_builder_accounting():
    world = make_world(num_nodes=30, policy=SingleSeeding())
    world.ctx.begin_slot(0)
    world.builder.seed_slot(0)
    assert world.builder.last_seed_messages > 0
    assert world.builder.last_seed_bytes > world.params.total_cells * world.params.cell_bytes


def test_builder_with_restricted_view_seeds_only_view():
    world = make_world(num_nodes=30, policy=SingleSeeding())
    world.builder.view = set(range(15))
    seeds = collect_seeds(world)
    assert {d.dst for d in seeds} <= set(range(15))


def test_deterministic_seeding_given_seed():
    world_a = make_world(num_nodes=20, policy=RedundantSeeding(2), seed=5)
    world_b = make_world(num_nodes=20, policy=RedundantSeeding(2), seed=5)
    seeds_a = [(d.dst, d.payload.line, d.payload.cells) for d in collect_seeds(world_a)]
    seeds_b = [(d.dst, d.payload.line, d.payload.cells) for d in collect_seeds(world_b)]
    assert seeds_a == seeds_b
