"""Unit tests for the whole-program symbol table and call graph
(`repro.analysis.reprolint.callgraph`) that RL007's dataflow rides on."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.reprolint.callgraph import (
    build_call_graph,
    module_name_for,
)
from repro.analysis.reprolint.engine import ProgramFile


def pfile(rel_path: str, source: str) -> ProgramFile:
    return ProgramFile(Path(rel_path), rel_path, source, ast.parse(source))


def calls_in(graph, qualname):
    fn = graph.functions[qualname]
    return {c.func.attr if isinstance(c.func, ast.Attribute) else c.func.id: c
            for c in graph.iter_calls(fn)}


class TestModuleNames:
    def test_plain_path(self):
        assert module_name_for("repro/core/node.py") == "repro.core.node"

    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/core/node.py") == "repro.core.node"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_single_file(self):
        assert module_name_for("tool.py") == "tool"


class TestSymbolTable:
    def test_functions_methods_and_params(self):
        graph = build_call_graph([
            pfile(
                "pkg/mod.py",
                "def helper(x, y):\n    return x\n"
                "class Node:\n"
                "    def send_all(self, peers):\n"
                "        return peers\n",
            )
        ])
        helper = graph.functions["pkg.mod.helper"]
        assert helper.params == ("x", "y")
        assert not helper.is_method
        assert helper.display == "helper"
        method = graph.functions["pkg.mod.Node.send_all"]
        assert method.is_method
        assert method.class_name == "Node"
        assert method.display == "Node.send_all"
        assert method.params == ("self", "peers")


class TestResolution:
    def test_local_function(self):
        graph = build_call_graph([
            pfile("m.py", "def a():\n    b()\ndef b():\n    pass\n")
        ])
        call = next(iter(calls_in(graph, "m.a").values()))
        hits = graph.resolve_exact(call, graph.functions["m.a"])
        assert [h.qualname for h in hits] == ["m.b"]

    def test_imported_function(self):
        graph = build_call_graph([
            pfile("pkg/u.py", "def helper():\n    pass\n"),
            pfile(
                "pkg/v.py",
                "from pkg.u import helper\ndef go():\n    helper()\n",
            ),
        ])
        call = next(iter(calls_in(graph, "pkg.v.go").values()))
        hits = graph.resolve_exact(call, graph.functions["pkg.v.go"])
        assert [h.qualname for h in hits] == ["pkg.u.helper"]

    def test_module_attribute_call(self):
        graph = build_call_graph([
            pfile("pkg/u.py", "def helper():\n    pass\n"),
            pfile(
                "pkg/v.py",
                "from pkg import u\ndef go():\n    u.helper()\n",
            ),
        ])
        call = next(iter(calls_in(graph, "pkg.v.go").values()))
        hits = graph.resolve_exact(call, graph.functions["pkg.v.go"])
        assert [h.qualname for h in hits] == ["pkg.u.helper"]

    def test_self_method_and_inherited(self):
        graph = build_call_graph([
            pfile(
                "base.py",
                "class Base:\n"
                "    def shared(self):\n"
                "        pass\n",
            ),
            pfile(
                "child.py",
                "from base import Base\n"
                "class Child(Base):\n"
                "    def own(self):\n"
                "        pass\n"
                "    def go(self):\n"
                "        self.own()\n"
                "        self.shared()\n",
            ),
        ])
        caller = graph.functions["child.Child.go"]
        by_name = calls_in(graph, "child.Child.go")
        own_hits = graph.resolve_exact(by_name["own"], caller)
        assert [h.qualname for h in own_hits] == ["child.Child.own"]
        shared_hits = graph.resolve_exact(by_name["shared"], caller)
        assert [h.qualname for h in shared_hits] == ["base.Base.shared"]

    def test_unknown_receiver_is_not_exact(self):
        graph = build_call_graph([
            pfile(
                "m.py",
                "class A:\n"
                "    def run(self):\n"
                "        pass\n"
                "def go(obj):\n"
                "    obj.run()\n",
            )
        ])
        caller = graph.functions["m.go"]
        call = next(iter(calls_in(graph, "m.go").values()))
        assert graph.resolve_exact(call, caller) == ()
        # ... but the by-name tier offers it for taint propagation
        fallback = graph.resolve_by_method_name(call)
        assert [h.qualname for h in fallback] == ["m.A.run"]

    def test_by_name_skips_dunders(self):
        graph = build_call_graph([
            pfile(
                "m.py",
                "class A:\n"
                "    def __call__(self):\n"
                "        pass\n"
                "def go(obj):\n"
                "    obj.__call__()\n",
            )
        ])
        call = next(iter(calls_in(graph, "m.go").values()))
        assert graph.resolve_by_method_name(call) == ()


class TestIterCalls:
    def test_nested_defs_excluded(self):
        graph = build_call_graph([
            pfile(
                "m.py",
                "def outer():\n"
                "    a()\n"
                "    def inner():\n"
                "        b()\n"
                "    return inner\n",
            )
        ])
        names = set(calls_in(graph, "m.outer"))
        assert names == {"a"}
        inner_names = set(calls_in(graph, "m.outer.inner"))
        assert inner_names == {"b"}
