"""Adaptive fetching (Algorithm 1): scoring, planning, rounds."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Custody, cells_of_line
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher, plan_queries, score_peers
from repro.params import FetchSchedule, PandasParams, RetryPolicy
from repro.sim.engine import Simulator


class TestScoring:
    def test_score_counts_cells_of_interest(self):
        scores = score_peers(
            targets={1, 2, 3},
            candidate_cells={10: {1, 2}, 11: {3}},
            boost={},
            cb_boost=10_000,
        )
        assert scores == {10: 2.0, 11: 1.0}

    def test_boost_dominates(self):
        """cb_boost gives an overwhelming advantage (Section 7)."""
        scores = score_peers(
            targets={1, 2, 3, 4, 5},
            candidate_cells={10: {1, 2, 3, 4, 5}, 11: {1}},
            boost={11: {1}},
            cb_boost=10_000,
        )
        assert scores[11] > scores[10]

    def test_boost_only_counts_missing_cells(self):
        scores = score_peers(
            targets={2},
            candidate_cells={11: {2}},
            boost={11: {1, 3}},  # boost cells already held
            cb_boost=10_000,
        )
        assert scores[11] == 1.0


class TestPlanning:
    def test_single_redundancy_covers_each_cell_once(self):
        plan = plan_queries(
            targets={1, 2, 3},
            ordered_peers=[10, 11],
            candidate_cells={10: {1, 2}, 11: {2, 3}},
            redundancy=1,
        )
        counts = {}
        for _peer, cells in plan.queries:
            for cid in cells:
                counts[cid] = counts.get(cid, 0) + 1
        assert counts == {1: 1, 2: 1, 3: 1}

    def test_higher_redundancy_queries_more_peers(self):
        candidates = {p: {1} for p in range(10)}
        plan1 = plan_queries({1}, list(range(10)), candidates, redundancy=1)
        plan3 = plan_queries({1}, list(range(10)), candidates, redundancy=3)
        assert len(plan1.queries) == 1
        assert len(plan3.queries) == 3

    def test_respects_peer_order(self):
        plan = plan_queries(
            targets={1},
            ordered_peers=[99, 11],
            candidate_cells={99: {1}, 11: {1}},
            redundancy=1,
        )
        assert plan.queries[0][0] == 99

    def test_skips_peers_without_interesting_cells(self):
        plan = plan_queries(
            targets={1},
            ordered_peers=[10, 11],
            candidate_cells={10: {5}, 11: {1}},
            redundancy=1,
        )
        assert [peer for peer, _ in plan.queries] == [11]

    def test_stops_when_covered(self):
        candidates = {p: {1, 2} for p in range(50)}
        plan = plan_queries({1, 2}, list(range(50)), candidates, redundancy=2)
        assert len(plan.queries) == 2

    def test_cells_requested_counts_multiplicity(self):
        candidates = {p: {1} for p in range(3)}
        plan = plan_queries({1}, [0, 1, 2], candidates, redundancy=3)
        assert plan.cells_requested == 3


def make_fetcher(params=None, custody=None, samples=(), custodians=None,
                 schedule=None, sim=None, sent=None, **fetcher_kwargs):
    params = params or PandasParams(
        base_rows=8, base_cols=8, custody_rows=1, custody_cols=1, samples=2
    )
    custody = custody or Custody(rows=(0,), cols=(3,))
    state = SlotCellState(params, custody, samples)
    sim = sim or Simulator()
    sent = sent if sent is not None else []
    custodians = custodians if custodians is not None else {}

    fetcher = AdaptiveFetcher(
        sim=sim,
        state=state,
        schedule=schedule or FetchSchedule(),
        line_custodians=lambda line: custodians.get(line, []),
        send_query=lambda peer, cells: sent.append((sim.now, peer, cells)),
        rng=random.Random(1),
        cb_boost=10_000,
        self_id=999,
        **fetcher_kwargs,
    )
    return fetcher, state, sim, sent


class TestRoundTargets:
    def test_targets_are_deficits_plus_samples(self):
        fetcher, state, _sim, _sent = make_fetcher(samples=[100, 101])
        targets = fetcher.round_targets()
        # row 0 (16 cells) needs 8; col 3 (16 cells) needs 8; +2 samples;
        # cell 3 lies on both custody lines, so the union loses one
        assert len(targets) == 8 + 8 + 2 - 1

    def test_targets_prefer_boosted_cells(self):
        fetcher, state, _sim, _sent = make_fetcher()
        boosted = [4, 5, 6]
        fetcher.add_boost(77, boosted)
        targets = fetcher.round_targets()
        assert set(boosted) <= targets

    def test_targets_shrink_with_held_cells(self):
        fetcher, state, _sim, _sent = make_fetcher()
        state.add_cells([0, 1, 2])
        targets = fetcher.round_targets()
        row_targets = [t for t in targets if t < 16]
        assert len(row_targets) == 8 - 3

    def test_complete_line_contributes_nothing(self):
        fetcher, state, _sim, _sent = make_fetcher()
        state.add_cells(cells_of_line(0, 16, 16))
        assert all(t % 16 == 3 for t in fetcher.round_targets())  # only col 3

    def test_sample_only_mode(self):
        fetcher, state, _sim, _sent = make_fetcher(samples=[40])
        fetcher.fetch_custody = False
        assert fetcher.round_targets() == {40}


class TestRounds:
    def test_round_schedule_timing(self):
        custodians = {line: [1, 2, 3, 4, 5, 6, 7, 8] for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=1.0)
        times = sorted({t for t, _p, _c in sent})
        # rounds at 0, 0.4, 0.6, then every 0.1
        assert times[0] == pytest.approx(0.0)
        assert times[1] == pytest.approx(0.4)
        assert times[2] == pytest.approx(0.6)
        assert times[3] == pytest.approx(0.7)

    def test_peers_queried_at_most_once(self):
        custodians = {line: list(range(20)) for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=2.0)
        peers = [p for _t, p, _c in sent]
        assert len(peers) == len(set(peers))

    def test_stops_when_candidates_exhausted(self):
        custodians = {0: [1]}  # a single peer for everything
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=10.0)
        assert len(sent) == 1  # queried once, then no more rounds
        assert not fetcher.finished  # still waiting on the response

    def test_start_idempotent(self):
        fetcher, _state, sim, sent = make_fetcher(custodians={0: [1]})
        fetcher.start()
        fetcher.start()
        sim.run(until=0.01)
        assert len(sent) == 1

    def test_completes_on_response(self):
        done = []
        custodians = {line: [1] for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.on_done = lambda ok: done.append(ok)
        fetcher.start()
        sim.run(until=0.01)
        # deliver everything: both custody lines fully
        cells = cells_of_line(0, 16, 16) + cells_of_line(16 + 3, 16, 16)
        fetcher.on_response(1, tuple(cells))
        assert fetcher.finished
        assert done == [True]

    def test_gives_up_at_max_rounds(self):
        done = []
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=3)
        custodians = {line: list(range(50)) for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians, schedule=schedule)
        fetcher.on_done = lambda ok: done.append(ok)
        fetcher.start()
        sim.run(until=5.0)
        assert done == [False]

    def test_round_stats_recorded(self):
        rounds = []
        custodians = {line: list(range(8)) for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.on_round = lambda stats: rounds.append(stats)
        fetcher.start()
        sim.run(until=0.5)
        assert rounds[0].index == 1
        assert rounds[0].messages_sent == len([s for s in sent if s[0] == 0.0])
        assert rounds[0].cells_requested > 0

    def test_reply_in_vs_after_round_attribution(self):
        custodians = {line: list(range(8)) for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=0.01)
        peer = sent[0][1]
        in_cells = tuple(sent[0][2])[:1]
        fetcher.on_response(peer, in_cells)  # now=0.01 < 0.4 deadline
        assert fetcher.rounds[0].replies_in_round == 1
        sim.run(until=0.5)
        fetcher.on_response(peer, tuple(sent[0][2])[1:2])
        assert fetcher.rounds[0].replies_after_round == 1

    def test_duplicate_accounting(self):
        custodians = {line: list(range(8)) for line in range(32)}
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=0.01)
        peer = sent[0][1]
        cell = next(iter(sent[0][2]))
        fetcher.on_response(peer, (cell,))
        fetcher.on_response(peer, (cell,))
        assert fetcher.rounds[0].duplicates == 1

    def test_self_never_queried(self):
        custodians = {line: [999, 1] for line in range(32)}  # includes self
        fetcher, state, sim, sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=0.01)
        assert all(p != 999 for _t, p, _c in sent)


class TestExhaustionAndQuarantine:
    """Robustness extensions: peer recycling, quarantine exclusion,
    honest give-up when the peer pool is exhausted, and timer hygiene."""

    def test_retry_recycles_silent_peers(self):
        custodians = {0: [1]}  # a single, forever-silent custodian
        fetcher, _state, sim, sent = make_fetcher(
            custodians=custodians, retry_unresponsive=True
        )
        fetcher.start()
        sim.run(until=2.0)
        peers = [p for _t, p, _c in sent]
        # unlike the vanilla queried-once policy, the exhausted pool
        # re-opens the silent peer instead of stalling forever
        assert peers.count(1) > 1

    def test_responded_peer_recycled_as_last_resort(self):
        custodians = {0: [1]}
        fetcher, _state, sim, sent = make_fetcher(
            custodians=custodians, retry_unresponsive=True
        )
        fetcher.start()
        sim.run(until=0.01)
        fetcher.on_response(1, ())  # replied, but served nothing useful
        sim.run(until=2.0)
        peers = [p for _t, p, _c in sent]
        assert peers.count(1) > 1
        assert not fetcher.finished

    def test_retry_exhaustion_gives_up_honestly(self):
        done = []
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=4)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule, retry_unresponsive=True
        )
        fetcher.on_done = lambda ok: done.append(ok)
        fetcher.start()
        sim.run(until=5.0)
        # recycling kept the schedule alive past the vanilla dead-end...
        assert len(sent) > 1
        # ...but max_rounds still terminates it, and the metrics are honest
        assert done == [False]
        assert fetcher.finished and not fetcher.succeeded
        assert fetcher._timer is None

    def test_all_peers_quarantined_terminates_schedule(self):
        custodians = {line: [1, 2, 3] for line in range(32)}
        fetcher, _state, sim, sent = make_fetcher(
            custodians=custodians,
            retry_unresponsive=True,
            exclude_peer=lambda peer: True,  # everyone quarantined
        )
        fetcher.start()
        sim.run(until=10.0)
        assert sent == []  # no queries ever leave the node
        assert fetcher._timer is None  # and the round schedule stopped

    def test_quarantined_peer_excluded_from_query_plans(self):
        custodians = {line: [12, 13] for line in range(32)}
        fetcher, _state, sim, sent = make_fetcher(
            custodians=custodians, exclude_peer=lambda peer: peer == 13
        )
        fetcher.start()
        sim.run(until=2.0)
        peers = {p for _t, p, _c in sent}
        assert 13 not in peers
        assert 12 in peers

    def test_reputation_weight_steers_first_round(self):
        custodians = {0: [1, 2]}  # identical holdings
        fetcher, _state, sim, sent = make_fetcher(
            custodians=custodians,
            peer_weight=lambda peer: 0.1 if peer == 1 else 1.0,
        )
        fetcher.start()
        sim.run(until=0.01)
        # round 1 (redundancy 1) goes entirely to the clean peer
        assert {p for _t, p, _c in sent} == {2}

    def test_timeout_reported_once_per_peer(self):
        reports = []
        fetcher, _state, sim, _sent = make_fetcher(
            custodians={0: [1]}, on_peer_timeout=reports.append
        )
        fetcher.start()
        sim.run(until=2.0)
        assert reports == [1]

    def test_no_timer_leak_across_reset(self):
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=4)
        fetcher, _state, sim, _sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule, retry_unresponsive=True
        )
        fetcher.start()
        sim.run(until=5.0)
        assert fetcher.finished
        assert sim.pending == 0  # give-up left nothing scheduled
        sim.reset()
        assert sim.pending == 0 and sim.now == 0.0
        # the drained engine hosts a fresh fetcher without interference
        fetcher2, _state2, _sim, sent2 = make_fetcher(
            custodians={0: [7]}, sim=sim
        )
        fetcher2.start()
        sim.run(until=0.01)
        assert [p for _t, p, _c in sent2] == [7]

    def test_stop_mid_flight_cancels_timer(self):
        custodians = {line: list(range(8)) for line in range(32)}
        fetcher, _state, sim, _sent = make_fetcher(custodians=custodians)
        fetcher.start()
        sim.run(until=0.01)
        assert fetcher._timer is not None
        fetcher.stop()
        assert fetcher._timer is None
        sim.run(until=10.0)
        assert sim.pending == 0


class TestSettleRoundGate:
    """The recycle/inbound gates derive from the schedule, not a
    hard-coded round 3 (regression: the gate used to be ``index >= 3``
    even for single-timeout schedules)."""

    def test_settle_round_derivation(self):
        assert FetchSchedule().settle_round == 3
        assert FetchSchedule(timeouts=(0.1,), redundancy=(1,)).settle_round == 1
        assert FetchSchedule(timeouts=(0.4, 0.2), redundancy=(1,)).settle_round == 2
        # max_rounds clamps the derivation for degenerate schedules
        assert FetchSchedule(timeouts=(0.4, 0.2, 0.1), max_rounds=2).settle_round == 2

    def test_recycle_begins_at_schedule_settle_round(self):
        """A two-timeout schedule recycles silent peers at round 2
        (t=0.4), not at the default schedule's round 3 (t=0.6)."""
        schedule = FetchSchedule(timeouts=(0.4, 0.2), redundancy=(1,), max_rounds=50)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule, retry_unresponsive=True
        )
        fetcher.start()
        sim.run(until=0.45)
        times = [t for t, _p, _c in sent]
        assert times[0] == pytest.approx(0.0)
        assert times[1] == pytest.approx(0.4)  # recycled at the settle round

    def test_inbound_distrust_follows_settle_round(self):
        """Declared-inbound cells become fetchable exactly at the
        settle round of whatever schedule is configured."""
        constant = FetchSchedule.constant(0.4, 1)  # settle_round == 1
        fetcher, _state, _sim, _sent = make_fetcher(schedule=constant)
        fetcher.add_inbound(fetcher.round_targets(1))
        # settle round already reached: lost inbound is fetchable at once
        assert fetcher.round_targets(1)
        default_fetcher, _s, _si, _se = make_fetcher()
        default_fetcher.add_inbound(default_fetcher.round_targets(1))
        # default schedule trusts inbound until round 3
        assert not default_fetcher.round_targets(2)
        assert default_fetcher.round_targets(3)


class TestRetryBackoff:
    """Deadline-aware retry waves with seeded exponential backoff."""

    def test_backoff_waves_follow_policy_delays(self):
        policy = RetryPolicy(base=0.05, multiplier=2.0, max_backoff=0.8,
                             jitter=0.0, max_waves=3)
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=50)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule,
            retry_unresponsive=True, retry_policy=policy,
        )
        fetcher.start()
        sim.run(until=5.0)
        times = [t for t, _p, _c in sent]
        # waves at +0.05, +0.1, +0.2 after each 0.1s round expiry
        assert times == pytest.approx([0.0, 0.15, 0.35, 0.65])
        assert fetcher.retry_waves == 3
        assert fetcher.retry_abandoned  # wave budget spent
        assert fetcher._timer is None  # nothing left scheduled
        assert sim.pending == 0

    def test_backoff_exhaustion_at_slot_deadline(self):
        """Waves stop as soon as a backed-off round could no longer
        complete before ``deadline_at`` — not when max_waves runs out."""
        policy = RetryPolicy(base=0.05, multiplier=2.0, max_backoff=0.8,
                             jitter=0.0, max_waves=50)
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=50)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule,
            retry_unresponsive=True, retry_policy=policy, deadline_at=0.5,
        )
        fetcher.start()
        sim.run(until=5.0)
        # wave 0 (0.1+0.05+0.1 <= 0.5) and wave 1 (0.25+0.1+0.1 <= 0.5)
        # fit; wave 2 (0.45+0.2+0.1 > 0.5) is abandoned
        assert [t for t, _p, _c in sent] == pytest.approx([0.0, 0.15, 0.35])
        assert fetcher.retry_waves == 2
        assert fetcher.retry_abandoned
        assert fetcher._timer is None
        # every query (original + both retry waves) went to the lone peer
        assert {p for _t, p, _c in sent} == {1}

    def test_abandoned_retry_draws_no_randomness(self):
        """The deadline check uses worst-case jitter so an abandoned
        wave consumes nothing from the seeded stream."""
        policy = RetryPolicy(base=10.0, multiplier=2.0, max_backoff=10.0,
                             jitter=0.5, max_waves=50)
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=50)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule,
            retry_unresponsive=True, retry_policy=policy, deadline_at=4.0,
        )
        fetcher.start()
        before = fetcher.rng.getstate()
        sim.run(until=5.0)
        assert fetcher.retry_waves == 0
        assert fetcher.retry_abandoned
        assert fetcher.rng.getstate() == before

    def test_retry_against_fully_quarantined_peers(self):
        """A retry policy never resurrects quarantined peers: no
        queries, no waves, and the schedule still terminates."""
        policy = RetryPolicy(jitter=0.0)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={line: [1, 2, 3] for line in range(32)},
            retry_unresponsive=True, retry_policy=policy,
            exclude_peer=lambda peer: True,
        )
        fetcher.start()
        sim.run(until=10.0)
        assert sent == []
        assert fetcher.retry_waves == 0
        assert fetcher._timer is None
        assert sim.pending == 0

    def test_jittered_backoff_replays_bit_identically(self):
        """Same seeds, same config: jittered wave timing is part of the
        deterministic replay."""
        policy = RetryPolicy(base=0.05, multiplier=2.0, max_backoff=0.8,
                             jitter=0.5, max_waves=4)
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=50)

        def run_once():
            fetcher, _state, sim, sent = make_fetcher(
                custodians={0: [1]}, schedule=schedule,
                retry_unresponsive=True, retry_policy=policy,
            )
            fetcher.start()
            sim.run(until=5.0)
            return [(t, p) for t, p, _c in sent]

        first, second = run_once(), run_once()
        assert first == second
        # the jitter actually perturbed the wave timing (first wave is
        # 0.05 * (1 + 0.5 * u) after the 0.1s round, u drawn seeded)
        assert first[1][0] != pytest.approx(0.15)
        assert 0.15 < first[1][0] <= 0.175 + 1e-9

    def test_policy_none_keeps_legacy_recycle_timing(self):
        """No policy: the recycle hatch re-queries on the round tick
        with no backoff (the pre-policy behaviour, pinned)."""
        schedule = FetchSchedule(timeouts=(0.1,), redundancy=(1,), max_rounds=6)
        fetcher, _state, sim, sent = make_fetcher(
            custodians={0: [1]}, schedule=schedule, retry_unresponsive=True
        )
        fetcher.start()
        sim.run(until=5.0)
        times = [t for t, _p, _c in sent]
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        assert fetcher.retry_waves == 0 and not fetcher.retry_abandoned


@given(
    redundancy=st.integers(1, 5),
    num_peers=st.integers(1, 12),
    num_cells=st.integers(1, 20),
)
@settings(max_examples=60, deadline=None)
def test_plan_redundancy_invariant(redundancy, num_peers, num_cells):
    """Every target gets min(k, available peers holding it) queries."""
    rng = random.Random(redundancy * 100 + num_peers * 10 + num_cells)
    targets = set(range(num_cells))
    candidates = {
        p: {c for c in targets if rng.random() < 0.5} for p in range(num_peers)
    }
    plan = plan_queries(targets, list(candidates), candidates, redundancy)
    counts = {c: 0 for c in targets}
    for _peer, cells in plan.queries:
        for cid in cells:
            counts[cid] += 1
    for cid in targets:
        holders = sum(1 for p in candidates if cid in candidates[p])
        assert counts[cid] >= min(redundancy, holders) or counts[cid] >= holders
        assert counts[cid] <= holders
