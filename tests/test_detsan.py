"""DetSan, the runtime determinism sanitizer.

Fast paths (variant matrix, first-divergence diff, divergence
reporting) are tested in-process with synthetic traces; one smoke test
actually drives the subprocess worker protocol end-to-end on the
cheapest scenario. The full two-scenario, three-hash-seed matrix runs
in the dedicated ``detsan-smoke`` CI job, not here.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.analysis import detsan
from repro.analysis.detsan import (
    DetSanReport,
    Divergence,
    RunResult,
    Variant,
    default_variants,
    diff_traces,
)


def write_trace(path, events):
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")


EV1 = {"t": 0.1, "kind": "fetch_start", "node": 3}
EV2 = {"t": 0.2, "kind": "fetch_done", "node": 3}
EV2_DIVERGED = {"t": 0.2, "kind": "fetch_done", "node": 4}


class TestVariantMatrix:
    def test_default_matrix_shape(self):
        variants = default_variants((0, 1, 2))
        assert [v.name for v in variants] == [
            "baseline",
            "baseline",
            "baseline",
            "heap-queue",
            "per-datagram",
            "telemetry-on",
        ]
        assert [v.hash_seed for v in variants[:3]] == [0, 1, 2]
        # perturbation variants all run under the first hash seed
        assert {v.hash_seed for v in variants[3:]} == {0}
        assert variants[3].queue == "heap"
        assert variants[4].delivery == "per-datagram"
        assert variants[5].telemetry

    def test_scenarios_registered(self):
        assert set(detsan.SCENARIOS) == {"pandas-100", "pipeline-3"}


class TestDiff:
    def test_identical_traces(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(a, [EV1, EV2])
        write_trace(b, [EV1, EV2])
        assert diff_traces(str(a), str(b)) is None

    def test_first_divergence_located(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(a, [EV1, EV2])
        write_trace(b, [EV1, EV2_DIVERGED])
        index, base, dev = diff_traces(str(a), str(b))
        assert index == 1
        assert base == EV2 and dev == EV2_DIVERGED

    def test_truncated_trace_diverges_at_the_end(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(a, [EV1, EV2])
        write_trace(b, [EV1])
        index, base, dev = diff_traces(str(a), str(b))
        assert index == 1
        assert base == EV2
        assert dev == {"kind": "<end of trace>"}


class TestDivergenceReporting:
    def _results(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(a, [EV1, EV2])
        write_trace(b, [EV1, EV2_DIVERGED])
        base = RunResult(Variant("baseline"), "aaaa", 100, str(a))
        dev = RunResult(Variant("heap-queue", queue="heap"), "bbbb", 100, str(b))
        return base, dev

    def test_check_scenario_reports_divergence(self, tmp_path, monkeypatch):
        base, dev = self._results(tmp_path)
        results = iter([base, dev])
        monkeypatch.setattr(
            detsan,
            "run_scenario_once",
            lambda scenario, variant, trace_dir, index: next(results),
        )
        report = DetSanReport()
        detsan._check_scenario(
            "pandas-100",
            [base.variant, dev.variant],
            str(tmp_path),
            report,
            lambda line: None,
        )
        assert not report.ok
        [divergence] = report.divergences
        assert divergence.event_index == 1
        text = divergence.describe()
        assert "fingerprint diverged under heap-queue" in text
        assert "first divergence at trace event #1" in text
        assert '"node": 4' in text

    def test_matching_fingerprints_are_ok(self, tmp_path, monkeypatch):
        base, dev = self._results(tmp_path)
        dev.fingerprint = base.fingerprint
        results = iter([base, dev])
        monkeypatch.setattr(
            detsan,
            "run_scenario_once",
            lambda scenario, variant, trace_dir, index: next(results),
        )
        report = DetSanReport()
        detsan._check_scenario(
            "pandas-100",
            [base.variant, dev.variant],
            str(tmp_path),
            report,
            lambda line: None,
        )
        assert report.ok
        assert report.to_dict()["ok"] is True

    def test_divergence_without_trace_difference(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(a, [EV1])
        write_trace(b, [EV1])
        divergence = Divergence(
            scenario="s",
            baseline=RunResult(Variant("baseline"), "aaaa", 1, str(a)),
            deviant=RunResult(Variant("x"), "bbbb", 1, str(b)),
        )
        assert "outside traced events" in divergence.describe()


class TestCli:
    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            detsan.run(["--scenario", "no-such-scenario"])
        capsys.readouterr()

    def test_bad_hash_seeds_rejected(self, capsys):
        with pytest.raises(SystemExit):
            detsan.run(["--hash-seeds", "x,y"])
        capsys.readouterr()


@pytest.mark.slow
class TestEndToEnd:
    def test_pipeline_smoke_single_seed(self, tmp_path, capsys):
        """One real subprocess sweep: baseline + the three perturbation
        variants of the cheap scenario under one hash seed."""
        code = detsan.run(
            [
                "--scenario",
                "pipeline-3",
                "--hash-seeds",
                "0",
                "--json",
                "--keep-traces",
                str(tmp_path / "traces"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        runs = payload["scenarios"]["pipeline-3"]
        assert len(runs) == 4
        assert len({r["fingerprint"] for r in runs}) == 1
        # the traces back the fingerprints: all runs recorded events
        traces = list((tmp_path / "traces").glob("*.jsonl"))
        assert len(traces) == 4
        assert all(t.stat().st_size > 0 for t in traces)

    def test_worker_protocol(self, capsys):
        code = detsan.run(
            [
                "--worker",
                "--scenario",
                "pipeline-3",
                "--queue",
                "calendar",
                "--delivery",
                "batched",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(payload["fingerprint"]) == 64
        assert payload["events_processed"] > 0


def test_module_entry_point_help():
    import subprocess

    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.detsan", "--help"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "first-divergence" in proc.stdout
