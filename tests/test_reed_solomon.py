"""Reed-Solomon erasure codec tests, incl. the any-half property."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.gf import GF65536
from repro.erasure.reed_solomon import ReedSolomon


def test_encode_is_systematic():
    rs = ReedSolomon(4, 8)
    data = [10, 20, 30, 40]
    codeword = rs.encode(data)
    assert codeword[:4] == data
    assert len(codeword) == 8


def test_decode_from_data_half():
    rs = ReedSolomon(4, 8)
    codeword = rs.encode([1, 2, 3, 4])
    known = {i: codeword[i] for i in range(4)}
    assert rs.decode(known) == codeword


def test_decode_from_parity_half():
    rs = ReedSolomon(4, 8)
    codeword = rs.encode([9, 8, 7, 6])
    known = {i: codeword[i] for i in range(4, 8)}
    assert rs.decode(known) == codeword


def test_decode_from_mixed_positions():
    rs = ReedSolomon(4, 8)
    codeword = rs.encode([5, 0, 255, 17])
    known = {i: codeword[i] for i in (0, 3, 5, 6)}
    assert rs.decode(known) == codeword


def test_decode_below_threshold_raises():
    rs = ReedSolomon(4, 8)
    codeword = rs.encode([1, 2, 3, 4])
    with pytest.raises(ValueError):
        rs.decode({0: codeword[0], 1: codeword[1], 2: codeword[2]})


def test_wrong_data_length_raises():
    rs = ReedSolomon(4, 8)
    with pytest.raises(ValueError):
        rs.encode([1, 2, 3])


def test_position_out_of_range_raises():
    rs = ReedSolomon(2, 4)
    with pytest.raises(ValueError):
        rs.decode({0: 1, 9: 2})


def test_invalid_geometry_rejected():
    from repro.erasure.gf import GF256

    with pytest.raises(ValueError):
        ReedSolomon(0, 4)
    with pytest.raises(ValueError):
        ReedSolomon(4, 4)
    with pytest.raises(ValueError):
        ReedSolomon(200, 300, GF256())  # exceeds GF(256) capacity


def test_large_field_codeword():
    """512-symbol lines (the full Danksharding grid) need GF(2^16)."""
    rs = ReedSolomon(8, 512, GF65536())
    data = [i * 1000 for i in range(8)]
    codeword = rs.encode(data)
    known = {i: codeword[i] for i in range(256, 264)}
    assert rs.decode(known) == codeword


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_recovers_from_any_half(data):
    """The property DAS relies on: ANY k of n=2k symbols suffice."""
    k = data.draw(st.integers(min_value=2, max_value=16))
    symbols = data.draw(
        st.lists(st.integers(0, 255), min_size=k, max_size=k)
    )
    rs = ReedSolomon(k, 2 * k)
    codeword = rs.encode(symbols)
    positions = data.draw(st.permutations(range(2 * k)))
    known = {p: codeword[p] for p in positions[:k]}
    assert rs.decode(known) == codeword


def test_extra_symbols_are_consistent():
    rs = ReedSolomon(4, 8)
    codeword = rs.encode([11, 22, 33, 44])
    known = {i: codeword[i] for i in range(6)}  # more than k
    assert rs.decode(known) == codeword


def test_distinct_data_distinct_parity():
    rs = ReedSolomon(4, 8)
    a = rs.encode([1, 2, 3, 4])
    b = rs.encode([1, 2, 3, 5])
    assert a[4:] != b[4:]


def test_deterministic():
    rs = ReedSolomon(6, 12)
    data = [random.Random(3).randrange(256) for _ in range(6)]
    assert rs.encode(data) == rs.encode(data)
