"""PeerDAS baseline: subnet layout, custody derivation, gossip + fallback."""

from __future__ import annotations

import pytest

from repro.baselines.peerdas_das import (
    DataColumnsByRootRequest,
    DataColumnsByRootResponse,
    PeerDasScenario,
    SubnetAssignment,
)
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import AdversarySpec, FaultPlan
from repro.params import PandasParams


def dense_params():
    # ext_cols = 16 < 32 subnets -> one subnet per column; custody 4,
    # sampled 8 of 16 subnets per node
    return PandasParams(base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10)


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=dense_params(),
        policy=RedundantSeeding(8),
        seed=3,
        slots=1,
        num_vertices=500,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestSubnetAssignment:
    def test_columns_partition_into_subnets(self):
        params = dense_params()
        subnets = SubnetAssignment(params, epoch_seed=1)
        seen: set[int] = set()
        for subnet in range(subnets.num_subnets):
            cols = subnets.columns_of_subnet(subnet)
            assert cols, "every subnet carries at least one column"
            assert not (set(cols) & seen)
            seen.update(cols)
            for col in cols:
                assert subnets.subnet_of_column(col) == subnet
        assert seen == set(range(params.ext_cols))

    def test_subnet_count_clamped_to_columns(self):
        params = dense_params()  # ext_cols=16 < DATA_COLUMN_SIDECAR_SUBNET_COUNT
        subnets = SubnetAssignment(params, epoch_seed=1)
        assert subnets.num_subnets == params.ext_cols

    def test_full_params_use_spec_subnet_count(self):
        subnets = SubnetAssignment(PandasParams.full(), epoch_seed=1)
        assert subnets.num_subnets == 32
        # 512 extended columns spread evenly: 16 columns per subnet
        assert all(
            len(subnets.columns_of_subnet(s)) == 512 // 32 for s in range(32)
        )

    def test_custody_is_node_derived_and_epoch_independent(self):
        """Spec custody groups: a pure function of the node id."""
        params = dense_params()
        a = SubnetAssignment(params, epoch_seed=1)
        b = SubnetAssignment(params, epoch_seed=99)
        for node in range(30):
            assert a.custody_subnets(node) == b.custody_subnets(node)
            assert len(a.custody_subnets(node)) == min(
                params.peerdas_custody_subnets, a.num_subnets
            )

    def test_sampled_subnets_cover_custody_and_rotate(self):
        params = dense_params()
        a = SubnetAssignment(params, epoch_seed=1)
        b = SubnetAssignment(params, epoch_seed=2)
        rotated = False
        for node in range(30):
            sampled = a.sampled_subnets(node)
            assert set(a.custody_subnets(node)) <= set(sampled)
            assert len(sampled) == min(params.peerdas_sample_subnets, a.num_subnets)
            if a.sampled_subnets(node) != b.sampled_subnets(node):
                rotated = True
        assert rotated, "extra sampled subnets must rotate with the epoch seed"

    def test_custody_columns_match_subnets(self):
        params = dense_params()
        subnets = SubnetAssignment(params, epoch_seed=1)
        for node in range(10):
            expected = {
                col
                for subnet in subnets.custody_subnets(node)
                for col in subnets.columns_of_subnet(subnet)
            }
            assert set(subnets.custody_columns(node)) == expected


class TestByRootMessages:
    def test_request_size_scales_with_columns(self):
        params = dense_params()
        small = DataColumnsByRootRequest(slot=0, epoch=0, columns=frozenset({1}))
        large = DataColumnsByRootRequest(slot=0, epoch=0, columns=frozenset(range(8)))
        assert small.wire_size(params) < large.wire_size(params)
        assert small.wire_size(params) > params.message_overhead_bytes

    def test_response_carries_full_columns(self):
        params = dense_params()
        response = DataColumnsByRootResponse(slot=0, epoch=0, columns=(1, 2))
        assert (
            response.wire_size(params)
            >= 2 * params.ext_rows * params.cell_bytes
        )


class TestPeerDasScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return PeerDasScenario(make_config()).run()

    def test_all_nodes_complete_sampling_within_deadline(self, scenario):
        dist = scenario.sampling_distribution()
        assert dist.misses == 0
        assert dist.fraction_within(4.0) == 1.0

    def test_custody_subnets_complete(self, scenario):
        consolidated = scenario.phase_distributions().consolidation
        assert consolidated.misses == 0

    def test_builder_egress_matches_redundant_budget(self, scenario):
        """Equal-budget comparison: 8x the extended blob (Figure 12)."""
        params = scenario.params
        data = 8 * params.total_cells * params.cell_bytes
        egress = scenario.builder_egress_bytes(0)
        assert 0.75 * data <= egress < 1.1 * data

    def test_every_subnet_has_custodians(self, scenario):
        for subnet in range(scenario.subnets.num_subnets):
            assert scenario.subnet_custodians(subnet), (
                f"subnet {subnet} has no custodian to serve ByRoot pulls"
            )

    def test_overlay_degree_capped(self, scenario):
        overlay = scenario.overlay
        cap = overlay.degree_cap
        assert cap is not None
        for subnet, members in scenario._subnet_members.items():
            for member in members:
                degree = len(overlay.mesh_neighbors(("col-subnet", subnet), member))
                assert degree <= cap

    def test_comparable_to_pandas_at_small_scale(self, scenario):
        pandas_scenario = Scenario(make_config()).run()
        # both systems finish the small grid comfortably inside the slot
        assert pandas_scenario.sampling_distribution().fraction_within(4.0) == 1.0
        assert scenario.sampling_distribution().fraction_within(4.0) == 1.0


class TestByRootFallback:
    def test_fallback_rescues_withheld_subnets(self):
        """Seed 5 at 50% withholding: gossip alone strands at least one
        node's sampled subnet, the ByRoot waves pull it from custodians
        and every honest node still accepts within the deadline."""
        plan = FaultPlan(adversaries=(AdversarySpec(behavior="withhold", share=0.5),))
        scenario = PeerDasScenario(make_config(seed=5, faults=plan))
        counts = {"requests": 0, "responses": 0}

        def on_send(dgram):
            if isinstance(dgram.payload, DataColumnsByRootRequest):
                counts["requests"] += 1
            elif isinstance(dgram.payload, DataColumnsByRootResponse):
                counts["responses"] += 1

        scenario.network.on_send.append(on_send)
        scenario.run()
        assert counts["requests"] > 0, "fallback never fired"
        assert counts["responses"] > 0, "no custodian served a ByRoot pull"
        dist = scenario.sampling_distribution()
        assert dist.misses == 0
        assert dist.fraction_within(4.0) == 1.0

    def test_fallback_does_not_fire_on_healthy_subnets(self):
        scenario = PeerDasScenario(make_config())
        requests = []
        scenario.network.on_send.append(
            lambda dgram: requests.append(dgram)
            if isinstance(dgram.payload, DataColumnsByRootRequest)
            else None
        )
        scenario.run()
        assert not requests

    def test_withhold_mix_replays_bit_identically(self):
        plan = FaultPlan(adversaries=(AdversarySpec(behavior="withhold", share=0.5),))
        a = PeerDasScenario(make_config(seed=5, faults=plan)).run()
        b = PeerDasScenario(make_config(seed=5, faults=plan)).run()
        assert a.metrics.fingerprint() == b.metrics.fingerprint()

    def test_dropped_slot_not_resurrected_by_stragglers(self):
        scenario = PeerDasScenario(make_config())
        scenario.run()
        node = scenario.nodes[0]
        assert not node._slots, "slot state retained after _end_slot"
        node.on_column(0, 0)
        assert not node._slots, "straggler sidecar resurrected retired slot"
