"""Shared fixtures: small parameter sets and network scaffolding.

Unit and integration tests run on reduced grids so the whole suite
stays fast; the full Danksharding constants are exercised by the
dedicated parameter/math tests and by the benchmark harness.
"""

from __future__ import annotations

import random

import pytest

from repro.net.latency import ConstantLatency
from repro.net.transport import Network
from repro.params import PandasParams
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tiny_params() -> PandasParams:
    """A 16x16 base grid (32x32 extended), 2+2 custody, 10 samples.

    Dense custody (4 lines over 64) keeps every line well covered even
    with a few dozen nodes, so integration assertions are stable.
    """
    return PandasParams(
        base_rows=16,
        base_cols=16,
        custody_rows=2,
        custody_cols=2,
        samples=10,
    )


@pytest.fixture
def lossless_network(sim: Simulator) -> Network:
    """A fast, deterministic network: 10 ms everywhere, no loss."""
    return Network(
        sim,
        ConstantLatency(0.01, num_vertices=4096),
        loss_rate=0.0,
        rng=random.Random(0),
    )


def make_network(sim: Simulator, loss: float = 0.0, latency: float = 0.01) -> Network:
    return Network(
        sim,
        ConstantLatency(latency, num_vertices=4096),
        loss_rate=loss,
        rng=random.Random(42),
    )
