"""Cross-run determinism: same seed ⇒ bit-identical runs, faults included.

The replay guarantee is the whole point of the fault subsystem — a
failure observed once in a faulty run can be re-run and debugged from
nothing but the seed and the fault spec. Equality is asserted on the
:meth:`MetricsRecorder.fingerprint` (a SHA-256 over every recorded
metric) plus the engine's ``events_processed`` count, which together
pin the full observable behaviour of a run.

The final test is the issue's acceptance scenario: 100 nodes, 5% extra
loss, two crash/restart nodes and a 500 ms partition — replayed twice,
invariants enforced online, and every non-crashed honest node still
sampling within the 4 s deadline.
"""

from __future__ import annotations

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import CrashWindow, FaultPlan, PartitionWindow
from repro.params import PandasParams


def run_scenario(seed: int = 5, faults: FaultPlan | None = None, **overrides) -> Scenario:
    config = ScenarioConfig(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=400,
        faults=faults,
        **overrides,
    )
    return Scenario(config).run()


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        loss=0.05,
        duplication=0.02,
        jitter=0.02,
        crashes=(CrashWindow(crash_at=0.3, restart_at=0.8, count=2),),
        partitions=(PartitionWindow(start=0.2, duration=0.4, fraction=0.25),),
    )


class TestCleanDeterminism:
    def test_same_seed_same_fingerprint(self):
        a = run_scenario(seed=5)
        b = run_scenario(seed=5)
        assert a.metrics.fingerprint() == b.metrics.fingerprint()
        assert a.sim.events_processed == b.sim.events_processed

    def test_different_seeds_diverge(self):
        a = run_scenario(seed=5)
        b = run_scenario(seed=6)
        assert a.metrics.fingerprint() != b.metrics.fingerprint()


class TestFaultyDeterminism:
    def test_same_seed_same_fingerprint_under_faults(self):
        a = run_scenario(seed=5, faults=chaos_plan())
        b = run_scenario(seed=5, faults=chaos_plan())
        assert a.metrics.fingerprint() == b.metrics.fingerprint()
        assert a.sim.events_processed == b.sim.events_processed
        assert a.metrics.fault_counts == b.metrics.fault_counts
        assert a.crashed_nodes == b.crashed_nodes

    def test_different_seeds_diverge_under_faults(self):
        a = run_scenario(seed=5, faults=chaos_plan())
        b = run_scenario(seed=6, faults=chaos_plan())
        assert a.metrics.fingerprint() != b.metrics.fingerprint()

    def test_fault_plan_changes_fingerprint(self):
        clean = run_scenario(seed=5)
        faulty = run_scenario(seed=5, faults=chaos_plan())
        assert clean.metrics.fingerprint() != faulty.metrics.fingerprint()

    def test_snapshot_equality_matches_fingerprint_equality(self):
        a = run_scenario(seed=5, faults=chaos_plan())
        b = run_scenario(seed=5, faults=chaos_plan())
        assert a.metrics.snapshot() == b.metrics.snapshot()


@pytest.mark.slow
class TestAcceptanceScenario:
    """The issue's end-to-end bar, verbatim: loss=5%, two crash/restart
    nodes, one 500 ms partition, 100 nodes, invariants on."""

    PLAN = FaultPlan(
        loss=0.05,
        crashes=(CrashWindow(crash_at=1.0, restart_at=2.0, count=2),),
        partitions=(PartitionWindow(start=1.0, duration=0.5, fraction=0.2),),
    )

    def _run(self) -> Scenario:
        config = ScenarioConfig(
            num_nodes=100,
            params=PandasParams(
                base_rows=16, base_cols=16, custody_rows=2, custody_cols=2, samples=10
            ),
            policy=RedundantSeeding(4),
            seed=11,
            slots=1,
            num_vertices=1000,
            faults=self.PLAN,
            check_invariants=True,
        )
        return Scenario(config).run()

    def test_replays_bit_identically_and_meets_deadline(self):
        first = self._run()
        second = self._run()

        # bit-identical replay across two independent invocations
        assert first.metrics.fingerprint() == second.metrics.fingerprint()
        assert first.sim.events_processed == second.sim.events_processed

        # the configured fault mix actually happened
        assert first.metrics.fault_counts["link_drop"] > 0
        assert first.metrics.fault_counts["crash"] == 2
        assert first.metrics.fault_counts["restart"] == 2
        assert first.metrics.fault_counts["partition_open"] == 1

        # every live honest node completes sampling within the deadline
        late = []
        for node in first.node_ids:
            if node in first.dead_nodes:
                continue
            times = first.metrics.phase_times.get((0, node))
            if times is None or times.sampling is None or times.sampling > 4.0:
                late.append(node)
        assert late == []

        # the online invariant checker saw real traffic
        assert first.invariants.checks_run > 1000
