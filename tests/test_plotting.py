"""ASCII CDF/bar rendering."""

from __future__ import annotations

import pytest

from repro.analysis.plotting import ascii_bars, ascii_cdf
from repro.analysis.stats import Distribution


def dist(values, misses=0):
    d = Distribution.from_optional(values)
    d.misses += misses
    return d


def test_cdf_contains_markers_and_axis():
    art = ascii_cdf({"pandas": dist([0.5, 1.0, 1.5, 2.0])}, width=40, height=8)
    assert "*" in art
    assert "-" * 40 in art
    assert "pandas" in art


def test_cdf_multiple_series_distinct_markers():
    art = ascii_cdf(
        {"a": dist([0.5, 1.0]), "b": dist([1.5, 2.0])}, width=40, height=8
    )
    assert "*" in art and "o" in art
    assert "a" in art and "b" in art


def test_cdf_deadline_marker():
    art = ascii_cdf({"a": dist([1.0, 2.0])}, width=40, height=8, deadline=4.0)
    assert "|" in art
    assert "deadline 4s" in art


def test_cdf_misses_cap_curve_below_one():
    """A series with misses must never touch the 1.0 row."""
    art_full = ascii_cdf({"a": dist([1.0, 2.0])}, width=30, height=10)
    art_miss = ascii_cdf({"a": dist([1.0, 2.0], misses=2)}, width=30, height=10)
    top_full = art_full.splitlines()[0]
    top_miss = art_miss.splitlines()[0]
    assert "*" in top_full
    assert "*" not in top_miss


def test_cdf_rejects_empty_input():
    with pytest.raises(ValueError):
        ascii_cdf({})


def test_cdf_all_empty_series():
    art = ascii_cdf({"a": Distribution([], 0)})
    assert "empty" in art


def test_cdf_canvas_bounds():
    with pytest.raises(ValueError):
        ascii_cdf({"a": dist([1.0])}, width=4, height=2)


def test_bars_scale_to_peak():
    art = ascii_bars([("minimal", 36.6), ("single", 149.0), ("redundant", 1208.0)], unit=" MB")
    lines = art.splitlines()
    assert lines[2].count("#") > lines[0].count("#")
    assert "1208 MB" in lines[2]


def test_bars_reject_empty():
    with pytest.raises(ValueError):
        ascii_bars([])
