"""Telemetry export formats and the run-health SLO analyzer.

The JSONL series is the contract between a run and ``repro health``:
typed records, deterministic order, lossless round-trip. The
Prometheus exposition is pinned by a golden file so the byte layout
never drifts silently. The analyzer itself is exercised end to end on
a real pipeline run (PASS) and on synthetic series built to violate
each threshold (FAIL with the right reason).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.pipeline import PipelineScenario
from repro.experiments.scenario import ScenarioConfig
from repro.obs import SloThresholds, Telemetry
from repro.obs.export import (
    SERIES_SCHEMA,
    prometheus_text,
    read_series_jsonl,
    series_records,
    write_prometheus,
    write_series_jsonl,
)
from repro.obs.health import analyze, analyze_file, format_report
from repro.params import PandasParams, RetryPolicy

GOLDEN = Path(__file__).parent / "golden" / "telemetry_exposition.prom"


def synthetic_telemetry() -> Telemetry:
    """A small, hand-fed registry with every metric kind exercised.

    Built without a simulator so the exposition depends only on this
    code — the golden file pins the byte layout, not a protocol run.
    """
    tel = Telemetry(cadence=0.5)
    tel.set_run_info(nodes=3, slots=1, slot_duration=12.0, deadline=4.0, seed=1)
    tel.configure_layers(builder_id=3, retrieval_floor=100)
    tel.on_phase("seeding", 0, 0, 0.25)
    tel.on_phase("sampling", 0, 0, 1.5)
    tel.on_phase("sampling", 0, 1, 3.0)
    tel.on_phase("sampling", 0, 2, 9.0)  # past the 4 s deadline
    tel.on_round_latency(1, 0.125)
    tel.on_round_latency(7, 2.0)
    tel.on_shed("retrieval_admission", 5.0)
    tel.on_queue_drop("inbox_overflow", 2.0)
    tel.on_queue_depth("pending_requests", 12.0)
    tel.on_fault("crash", 1.0)
    tel.on_defense("quarantine", 2.0)
    tel.set_gauge("live_nodes", 3.0)
    tel.set_gauge("inbox_depth_max", 7.0)
    # one hand-fed sample row (no simulator is attached)
    tel.samples.append({"t": 1.0, "inbox_depth_max": 7.0, "live_nodes": 3.0})
    return tel


def pipeline_with_telemetry(tmp_path: Path) -> tuple[Path, Telemetry]:
    tel = Telemetry()
    config = ScenarioConfig(
        num_nodes=40,
        params=PandasParams(
            base_rows=8,
            base_cols=8,
            custody_rows=4,
            custody_cols=4,
            samples=10,
            fetch_retry=RetryPolicy(),
            pending_request_limit=256,
            retrieval_admit_rate=50.0,
        ),
        policy=RedundantSeeding(4),
        seed=3,
        slots=3,
        num_vertices=500,
        max_inbox=4096,
        telemetry=tel,
    )
    PipelineScenario(config, churn_fraction=0.1).run()
    path = tmp_path / "series.jsonl"
    write_series_jsonl(tel, path)
    return path, tel


# ----------------------------------------------------------------------
# JSONL series
# ----------------------------------------------------------------------
def test_series_records_are_typed_and_ordered():
    tel = synthetic_telemetry()
    records = series_records(tel)
    assert records[0]["type"] == "meta"
    assert records[0]["schema"] == SERIES_SCHEMA
    assert records[0]["nodes"] == 3
    kinds = [r["type"] for r in records[1:]]
    # sample rows come first, then final state sorted by name
    assert kinds[0] == "sample"
    assert "sample" not in kinds[1:]
    names = [r["name"] for r in records[2:]]
    assert names == sorted(names)


def test_series_round_trips_through_jsonl(tmp_path):
    tel = synthetic_telemetry()
    path = tmp_path / "series.jsonl"
    count = write_series_jsonl(tel, path)
    back = read_series_jsonl(path)
    assert len(back) == count
    assert back == json.loads(
        json.dumps(series_records(tel), sort_keys=True, default=float)
    )


def test_pipeline_series_contains_samples_and_layers(tmp_path):
    path, tel = pipeline_with_telemetry(tmp_path)
    records = read_series_jsonl(path)
    samples = [r for r in records if r["type"] == "sample"]
    assert len(samples) == len(tel.samples)
    assert samples == sorted(samples, key=lambda r: r["t"])
    layers = {
        r["labels"]["layer"]
        for r in records
        if r["type"] == "counter" and r["name"] == "bytes_sent_total"
    }
    assert "seed" in layers
    assert "fetch" in layers
    assert "retrieval" in layers  # the probe clients


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_prometheus_exposition_matches_golden_file():
    text = prometheus_text(synthetic_telemetry())
    assert text == GOLDEN.read_text(encoding="utf-8"), (
        "Prometheus exposition drifted from the golden file. If the "
        "change is intentional, regenerate with:\n  PYTHONPATH=src python "
        "-c \"import tests.test_obs_health as t; t.GOLDEN.write_text("
        "t.prometheus_text(t.synthetic_telemetry()), encoding='utf-8')\""
    )


def test_prometheus_buckets_are_cumulative_with_inf(tmp_path):
    tel = synthetic_telemetry()
    out = tmp_path / "metrics.prom"
    write_prometheus(tel, out)
    lines = out.read_text(encoding="utf-8").splitlines()
    sampling = [
        line
        for line in lines
        if line.startswith("repro_phase_latency_seconds_bucket")
        and 'phase="sampling"' in line
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in sampling]
    assert counts == sorted(counts)  # cumulative
    assert sampling[-1].rsplit(" ", 1) == [
        'repro_phase_latency_seconds_bucket{phase="sampling",le="+Inf"}',
        "3",
    ]
    assert any(
        line == 'repro_phase_latency_seconds_count{phase="sampling"} 3'
        for line in lines
    )


def test_prometheus_is_deterministic_across_builds():
    assert prometheus_text(synthetic_telemetry()) == prometheus_text(
        synthetic_telemetry()
    )


# ----------------------------------------------------------------------
# the SLO analyzer
# ----------------------------------------------------------------------
def test_health_passes_on_a_healthy_pipeline_run(tmp_path):
    path, _tel = pipeline_with_telemetry(tmp_path)
    report = analyze_file(path)
    assert report.passed, report.reasons
    assert report.deadline_hit_rate == 1.0
    assert report.expected_samples == 120  # 3 slots x 40 live nodes
    assert set(report.phases) >= {"seeding", "consolidation", "sampling"}
    for entry in report.phases.values():
        assert entry["p50"] <= entry["p99"]
    assert report.queue_depth_p99 is not None
    lines = format_report(report)
    assert lines[0] == "verdict: PASS"
    assert any("deadline-hit rate" in line for line in lines)


def test_health_fails_below_deadline_floor():
    report = analyze(series_records(synthetic_telemetry()))
    # 2 of 3 sampling completions hit the 4 s deadline -> 0.667 < 0.9
    assert not report.passed
    assert report.deadline_hit_rate == pytest.approx(2 / 3)
    assert any("deadline-hit rate" in r for r in report.reasons)
    assert format_report(report)[0] == "verdict: FAIL"


def test_health_threshold_knobs():
    records = series_records(synthetic_telemetry())
    lenient = SloThresholds(min_deadline_hit_rate=0.5)
    assert analyze(records, lenient).passed
    shed_capped = SloThresholds(min_deadline_hit_rate=0.5, max_shed_total=1.0)
    report = analyze(records, shed_capped)
    assert not report.passed
    assert any("total shed" in r for r in report.reasons)
    assert report.shed_total == 5.0
    assert report.sheds == {"retrieval_admission": 5.0}
    assert report.queue_drops == {"inbox_overflow": 2.0}


def test_health_queue_depth_ceiling(tmp_path):
    path, _tel = pipeline_with_telemetry(tmp_path)
    report = analyze_file(
        path, SloThresholds(max_queue_depth_p99=0.0)
    )
    assert not report.passed
    assert any("queue-depth p99" in r for r in report.reasons)


def test_health_expected_samples_denominator():
    tel = synthetic_telemetry()
    tel.finalize(expected_samples=4)
    report = analyze(series_records(tel))
    # 2 hits over the *expected* population of 4, not the 3 completions
    assert report.expected_samples == 4
    assert report.deadline_hit_rate == pytest.approx(0.5)


def test_health_overload_onset_slot():
    tel = Telemetry()
    tel.set_run_info(slot_duration=12.0, deadline=4.0)
    tel.on_phase("sampling", 0, 0, 1.0)
    # fabricate sample rows: clean during slot 0, shed appears in slot 2
    records = series_records(tel)
    records.insert(1, {"type": "sample", "t": 3.0, "values": {}})
    records.insert(
        2,
        {
            "type": "sample",
            "t": 26.0,
            "values": {"shed_total{kind=retrieval_admission}": 4.0},
        },
    )
    report = analyze(records)
    assert report.overload_onset_slot == 2


def test_health_empty_series_fails_loudly():
    report = analyze([])
    assert not report.passed
    assert any("no telemetry samples" in r for r in report.reasons)
    assert any("no sampling completions" in r for r in report.reasons)
