"""Cross-cutting protocol invariants observed on live runs.

These watch real traffic during a slot and assert properties every
PANDAS message must satisfy — the executable version of the protocol
description in Sections 5-7.
"""

from __future__ import annotations

import pytest

from repro.core.messages import CellRequest, CellResponse, SeedMessage
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import CrashWindow, FaultPlan
from repro.params import PandasParams


@pytest.fixture(scope="module")
def observed_run():
    config = ScenarioConfig(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=12,
        slots=1,
        num_vertices=400,
    )
    scenario = Scenario(config)
    sent = []
    scenario.network.on_send.append(lambda d: sent.append(d))
    scenario.run()
    return scenario, sent


def test_requests_target_custodians_only(observed_run):
    """A cell is only ever requested from a node whose custody
    intersects one of the cell's two lines (Section 6.3)."""
    scenario, sent = observed_run
    assignment = scenario.assignment
    for dgram in sent:
        if isinstance(dgram.payload, CellRequest):
            for cid in dgram.payload.cells:
                assert assignment.is_custodian(dgram.dst, 0, cid), (
                    f"node {dgram.src} asked {dgram.dst} for cell {cid} "
                    "outside its custody"
                )


def test_responses_answer_prior_requests(observed_run):
    """No unsolicited cell pushes between nodes: every response's
    (src, dst) pair matches an earlier request's (dst, src)."""
    scenario, sent = observed_run
    requested = set()
    for dgram in sent:
        if isinstance(dgram.payload, CellRequest):
            requested.add((dgram.dst, dgram.src))
        elif isinstance(dgram.payload, CellResponse) and dgram.src != scenario.builder_id:
            assert (dgram.src, dgram.dst) in requested


def test_responses_subset_of_request(observed_run):
    """Responses never contain cells that were not asked for."""
    scenario, sent = observed_run
    asked = {}
    for dgram in sent:
        if isinstance(dgram.payload, CellRequest):
            asked.setdefault((dgram.dst, dgram.src), set()).update(dgram.payload.cells)
    for dgram in sent:
        if isinstance(dgram.payload, CellResponse) and dgram.src != scenario.builder_id:
            assert set(dgram.payload.cells) <= asked[(dgram.src, dgram.dst)]


def test_seed_messages_only_from_builder(observed_run):
    scenario, sent = observed_run
    for dgram in sent:
        if isinstance(dgram.payload, SeedMessage):
            assert dgram.src == scenario.builder_id


def test_nobody_queries_themselves(observed_run):
    _scenario, sent = observed_run
    for dgram in sent:
        if isinstance(dgram.payload, CellRequest):
            assert dgram.src != dgram.dst


def test_sample_choices_rotate_across_slots():
    """Sampling must be unpredictable per slot (unlike S): two slots
    give a node different sample sets."""
    config = ScenarioConfig(
        num_nodes=30,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        seed=3,
        slots=2,
        num_vertices=300,
    )
    scenario = Scenario(config)
    rng0 = scenario.rngs.stream("samples", 5, 0)
    rng1 = scenario.rngs.stream("samples", 5, 1)
    assert rng0.sample(range(256), 10) != rng1.sample(range(256), 10)


def test_message_invariants_survive_faults():
    """The message-level properties above plus the online checker from
    ``repro.faults.invariants`` all hold on a faulted run: faults may
    delay or destroy traffic but never produce protocol-violating
    messages or dishonest completion marks."""
    config = ScenarioConfig(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=12,
        slots=1,
        num_vertices=400,
        faults=FaultPlan(
            loss=0.1,
            duplication=0.05,
            crashes=(CrashWindow(crash_at=0.4, restart_at=0.9, count=2),),
        ),
        check_invariants=True,
    )
    scenario = Scenario(config)
    sent = []
    scenario.network.on_send.append(lambda d: sent.append(d))
    scenario.run()  # online checker raises on any I1-I4 violation

    assignment = scenario.assignment
    for dgram in sent:
        if isinstance(dgram.payload, CellRequest):
            assert dgram.src != dgram.dst
            for cid in dgram.payload.cells:
                assert assignment.is_custodian(dgram.dst, 0, cid)
        elif isinstance(dgram.payload, SeedMessage):
            assert dgram.src == scenario.builder_id
    assert scenario.invariants.checks_run > len(sent)


def test_wire_byte_accounting_consistent(observed_run):
    """The metrics' per-node byte counters equal the observed datagram
    sizes (no double counting, nothing dropped)."""
    scenario, sent = observed_run
    total_from_observer = sum(
        d.size for d in sent if d.src != scenario.builder_id and getattr(d.payload, "slot", -1) == 0
    )
    total_from_metrics = scenario.metrics.bytes_sent.total(0)
    assert total_from_observer == pytest.approx(total_from_metrics)
