"""Whole-system reproducibility: same seed, same run, bit-for-bit.

The paper validates its simulator against a testbed; our analogue is
determinism and seed-stability — any divergence between identical
configurations would invalidate every policy comparison in the
benchmark harness (they rely on shared seeds isolating the variable
under study).
"""

from __future__ import annotations

import pytest

from repro.baselines import DhtDasScenario, GossipDasScenario, PeerDasScenario
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def dense_config(seed=9, **overrides):
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def fingerprint(scenario):
    """A stable digest of everything the metrics captured."""
    times = sorted(
        (slot, node, t.seeding, t.consolidation, t.sampling)
        for (slot, node), t in scenario.metrics.phase_times.items()
    )
    traffic = sorted(scenario.metrics.fetch_bytes._data.items())
    return (
        times,
        traffic,
        scenario.network.datagrams_sent,
        scenario.network.datagrams_lost,
        scenario.builder_egress_bytes(0),
    )


@pytest.mark.parametrize(
    "scenario_class", [Scenario, GossipDasScenario, DhtDasScenario, PeerDasScenario]
)
def test_identical_seeds_identical_runs(scenario_class):
    a = fingerprint(scenario_class(dense_config()).run())
    b = fingerprint(scenario_class(dense_config()).run())
    assert a == b


def test_seed_changes_everything():
    a = fingerprint(Scenario(dense_config(seed=1)).run())
    b = fingerprint(Scenario(dense_config(seed=2)).run())
    assert a != b


def test_policy_change_keeps_network_randomness():
    """Comparing policies under one seed must hold the substrate fixed:
    loss draws, topology and sample choices come from independent
    streams, so two policies see identical sampling assignments."""
    from repro.core.seeding import MinimalSeeding

    a = Scenario(dense_config(policy=RedundantSeeding(4)))
    b = Scenario(dense_config(policy=MinimalSeeding()))
    assert a.topology.node_vertices == b.topology.node_vertices
    # node 3's sample draw is policy-independent
    a.run_slot(0)
    b.run_slot(0)
    sample_a = a.rngs.stream("samples", 3, 1).sample(range(100), 5)
    sample_b = b.rngs.stream("samples", 3, 1).sample(range(100), 5)
    assert sample_a == sample_b


def test_fault_injection_is_deterministic():
    a = Scenario(dense_config(dead_fraction=0.3))
    b = Scenario(dense_config(dead_fraction=0.3))
    assert a.dead_nodes == b.dead_nodes
