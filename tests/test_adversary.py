"""Byzantine adversary models: spec grammar, victim draws, behaviors.

Behavior tests run a MiniWorld with one node swapped for a
:class:`ByzantineNode` and assert the attack's observable effect plus
the defense counters it trips — corrupt cells are dropped, floods are
rejected as unsolicited, withheld cells starve, equivocators ghost all
but the first requesters, stallers land late.
"""

from __future__ import annotations

import pytest

from repro.faults.adversary import ByzantineNode, resolve_adversaries
from repro.faults.plan import BEHAVIORS, AdversarySpec, FaultPlan
from repro.sim.rng import RngRegistry
from tests.helpers import make_world


class TestSpecGrammar:
    def test_parse_all_behaviors(self):
        plan = FaultPlan.parse(
            "corrupt=0.1,flood=2@30,withhold=0.05,equivocate=3@2,stall=2@0.8"
        )
        by_behavior = {spec.behavior: spec for spec in plan.adversaries}
        assert set(by_behavior) == set(BEHAVIORS)
        assert by_behavior["corrupt"].share == pytest.approx(0.1)
        assert by_behavior["flood"].share == 2.0
        assert by_behavior["flood"].rate == pytest.approx(30.0)
        assert by_behavior["equivocate"].first_k == 2
        assert by_behavior["stall"].delay == pytest.approx(0.8)

    def test_parse_defaults_for_optional_params(self):
        plan = FaultPlan.parse("flood=1,equivocate=1,stall=1")
        by_behavior = {spec.behavior: spec for spec in plan.adversaries}
        assert by_behavior["flood"].rate == 20.0
        assert by_behavior["equivocate"].first_k == 1
        assert by_behavior["stall"].delay == 0.5

    def test_describe_round_trips(self):
        plan = FaultPlan.parse("corrupt=0.1,flood=2@30,stall=2@0.8")
        text = plan.describe()
        assert "corrupt=0.1" in text
        assert "flood=2@30" in text
        assert "stall=2@0.8" in text

    def test_adversaries_count_toward_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan.parse("corrupt=1").is_empty

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AdversarySpec(behavior="teleport", share=0.1)
        with pytest.raises(ValueError):
            AdversarySpec(behavior="corrupt")  # no share, no nodes
        with pytest.raises(ValueError):
            AdversarySpec(behavior="flood", share=0.1, rate=0.0)
        with pytest.raises(ValueError):
            AdversarySpec(behavior="equivocate", share=0.1, first_k=0)
        with pytest.raises(ValueError):
            AdversarySpec(behavior="stall", share=0.1, delay=0.0)

    def test_resolve_count(self):
        spec = AdversarySpec(behavior="corrupt", share=0.1)
        assert spec.resolve_count(100) == 10
        assert spec.resolve_count(3) == 1  # at least one victim
        assert AdversarySpec(behavior="corrupt", share=5.0).resolve_count(100) == 5
        assert AdversarySpec(behavior="corrupt", nodes=(1, 2)).resolve_count(100) == 2


class TestResolveAdversaries:
    def test_deterministic_from_seed(self):
        plan = FaultPlan.parse("corrupt=0.2,flood=2@20")
        pool = list(range(50))
        a = resolve_adversaries(plan, RngRegistry(9), pool)
        b = resolve_adversaries(plan, RngRegistry(9), pool)
        assert a == b

    def test_different_seed_different_victims(self):
        plan = FaultPlan.parse("corrupt=0.2")
        pool = list(range(50))
        a = resolve_adversaries(plan, RngRegistry(9), pool)
        b = resolve_adversaries(plan, RngRegistry(10), pool)
        assert set(a) != set(b)

    def test_one_behavior_per_node(self):
        plan = FaultPlan.parse("corrupt=0.3,flood=0.3@20,withhold=0.3")
        assigned = resolve_adversaries(plan, RngRegistry(9), list(range(40)))
        # disjoint draws: every node got exactly one spec
        assert len(assigned) == 12 * 3

    def test_pinned_nodes_respected(self):
        plan = FaultPlan(adversaries=(AdversarySpec(behavior="stall", nodes=(3, 7)),))
        assigned = resolve_adversaries(plan, RngRegistry(9), list(range(10)))
        assert set(assigned) == {3, 7}

    def test_overcommitted_pool_rejected(self):
        plan = FaultPlan.parse("corrupt=0.8,flood=0.8@20")
        with pytest.raises(ValueError):
            resolve_adversaries(plan, RngRegistry(9), list(range(10)))


def make_byzantine_world(behavior: str, node_id: int = 3, seed: int = 2, **spec_kw):
    world = make_world(num_nodes=30, seed=seed)
    spec = AdversarySpec(behavior=behavior, nodes=(node_id,), **spec_kw)
    victims = [n for n in world.nodes if n != node_id]
    world.nodes[node_id] = ByzantineNode(world.ctx, node_id, spec, victims=victims)
    return world, world.nodes[node_id]


class TestBehaviors:
    def test_corrupt_cells_counted_and_dropped(self):
        world, _byz = make_byzantine_world("corrupt")
        world.run_slot(0)
        faults = world.ctx.metrics.fault_counts
        defenses = world.ctx.metrics.defense_counts
        assert faults["byz_corrupt_cells"] > 0
        # receivers verified and dropped them (never fed to the fetcher)
        assert defenses["cells_invalid"] > 0
        # the lies are remembered: someone's ledger penalized node 3
        assert any(
            node.reputation.weight(3) < 1.0
            for nid, node in world.nodes.items()
            if nid != 3
        )

    def test_corruption_does_not_stop_honest_sampling(self):
        world, _byz = make_byzantine_world("corrupt")
        world.run_slot(0)
        sampled = {
            node
            for (slot, node), times in world.ctx.metrics.phase_times.items()
            if slot == 0 and times.sampling is not None
        }
        honest = set(world.nodes) - {3}
        assert honest <= sampled

    def test_flood_rejected_as_unsolicited(self):
        world, byz = make_byzantine_world("flood", rate=50.0)
        start = world.sim.now
        world.ctx.begin_slot(0)
        world.builder.seed_slot(0)
        byz.on_slot_begin(0)
        world.sim.run(until=start + 8.0)
        faults = world.ctx.metrics.fault_counts
        defenses = world.ctx.metrics.defense_counts
        assert faults["byz_flood"] > 100  # 50/s over a 12 s slot
        rejected = (
            defenses.get("resp_unsolicited", 0)
            + defenses.get("cells_unrequested", 0)
            + defenses.get("cells_invalid", 0)
        )
        assert rejected > 100

    def test_flood_stops_at_crash(self):
        world, byz = make_byzantine_world("flood", rate=50.0)
        world.ctx.begin_slot(0)
        world.builder.seed_slot(0)
        byz.on_slot_begin(0)
        world.sim.run(until=1.0)
        sent_before = world.ctx.metrics.fault_counts["byz_flood"]
        byz.crash()
        world.sim.run(until=3.0)
        assert world.ctx.metrics.fault_counts["byz_flood"] == sent_before

    def test_equivocator_serves_only_first_k(self):
        world, _byz = make_byzantine_world("equivocate", first_k=1)
        world.run_slot(0)
        assert world.ctx.metrics.fault_counts["byz_equivocate_drop"] > 0
        assert len(world.nodes[3]._served_requesters.get(0, ())) <= 1

    def test_withholder_starves_one_line(self):
        world, byz = make_byzantine_world("withhold")
        world.run_slot(0)
        withheld = byz._withheld_cells(0)
        # the withheld cells all belong to one custody line of node 3
        custody = world.ctx.assignment.custody(3, 0)
        lines = custody.lines(world.params.ext_rows)
        from repro.core.assignment import cells_of_line

        assert any(
            withheld == set(cells_of_line(line, world.params.ext_rows, world.params.ext_cols))
            for line in lines
        )
        assert world.ctx.metrics.fault_counts["byz_withhold_cells"] > 0

    def test_withheld_line_is_deterministic(self):
        _, byz_a = make_byzantine_world("withhold", seed=5)
        _, byz_b = make_byzantine_world("withhold", seed=5)
        assert byz_a._withheld_cells(0) == byz_b._withheld_cells(0)

    def test_staller_replies_late(self):
        world, _byz = make_byzantine_world("stall", delay=0.7)
        world.run_slot(0)
        assert world.ctx.metrics.fault_counts["byz_stall"] > 0

    def test_byzantine_run_replays_bit_identically(self):
        def run(behavior: str):
            world, byz = make_byzantine_world(behavior, seed=4)
            world.ctx.begin_slot(0)
            world.builder.seed_slot(0)
            byz.on_slot_begin(0)
            world.sim.run(until=8.0)
            return world.ctx.metrics.fingerprint()

        for behavior in BEHAVIORS:
            assert run(behavior) == run(behavior)
