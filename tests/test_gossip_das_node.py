"""GossipDasNode unit behaviour (channel delivery, serving, sampling)."""

from __future__ import annotations


from repro.baselines.gossipsub_das import GossipDasScenario
from repro.core.messages import CellRequest, CellResponse
from repro.experiments.scenario import ScenarioConfig
from repro.params import PandasParams


def make_scenario(**overrides):
    defaults = dict(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        seed=3,
        slots=1,
        num_vertices=400,
    )
    defaults.update(overrides)
    return GossipDasScenario(ScenarioConfig(**defaults))


def test_channel_cells_start_sampling():
    scenario = make_scenario()
    node = scenario.nodes[0]
    scenario.ctx.begin_slot(0)
    node.on_channel_cells(0, (1, 2, 3))
    state = node._slots[0]
    assert state.started
    assert state.fetcher.started
    assert state.cells.has_cell(2)


def test_seeding_marked_on_first_channel_delivery():
    scenario = make_scenario()
    node = scenario.nodes[5]
    scenario.ctx.begin_slot(0)
    node.on_channel_cells(0, (1,))
    node.on_channel_cells(0, (2,))
    times = scenario.metrics.phase_times[(0, 5)]
    assert times.seeding is not None


def test_request_partial_then_deferred_reply():
    scenario = make_scenario()
    node = scenario.nodes[0]
    scenario.ctx.begin_slot(0)
    responses = []
    scenario.network.on_deliver.append(
        lambda d: responses.append(d) if isinstance(d.payload, CellResponse) else None
    )
    node.on_channel_cells(0, (10,))
    node._on_request(3, CellRequest(slot=0, epoch=0, cells=frozenset({10, 11})))
    scenario.sim.run(until=1.0)
    assert [r.payload.cells for r in responses] == [(10,)]
    node.on_channel_cells(0, (11,))
    scenario.sim.run(until=2.0)
    assert (11,) in [r.payload.cells for r in responses]


def test_sampling_fetcher_ignores_custody():
    """Baseline nodes never fetch custody (gossip handles it)."""
    scenario = make_scenario()
    node = scenario.nodes[0]
    scenario.ctx.begin_slot(0)
    node.on_channel_cells(0, (1,))
    fetcher = node._slots[0].fetcher
    assert not fetcher.fetch_custody
    targets = fetcher.round_targets()
    assert targets == node._slots[0].cells.missing_samples()


def test_unit_members_answer_sampling_queries():
    scenario = make_scenario()
    scenario.run_slot(0)
    sampling = scenario.sampling_distribution()
    assert sampling.fraction_within(12.0) > 0.9


def test_drop_slot_stops_fetcher():
    scenario = make_scenario()
    node = scenario.nodes[0]
    scenario.ctx.begin_slot(0)
    node.on_channel_cells(0, (1,))
    node.drop_slot(0)
    assert 0 not in node._slots
