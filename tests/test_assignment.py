"""Cell-to-node assignment tests (Section 5's requirements)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import AssignmentIndex, CellAssignment, cells_of_line, lines_of_cell
from repro.crypto.randao import RandaoBeacon
from repro.params import PandasParams


@pytest.fixture
def assignment(tiny_params):
    return CellAssignment(tiny_params, RandaoBeacon(42))


def test_lines_of_cell_geometry():
    # 32x32 extended grid: cell 33 = row 1, col 1
    assert lines_of_cell(33, 32, 32) == (1, 32 + 1)


def test_cells_of_line_row():
    cells = cells_of_line(2, 8, 8)
    assert cells == list(range(16, 24))


def test_cells_of_line_column():
    cells = cells_of_line(8 + 3, 8, 8)
    assert cells == [3, 11, 19, 27, 35, 43, 51, 59]


def test_custody_has_correct_shape(assignment, tiny_params):
    custody = assignment.custody(5, epoch=0)
    assert len(custody.rows) == tiny_params.custody_rows
    assert len(custody.cols) == tiny_params.custody_cols
    assert len(set(custody.rows)) == len(custody.rows)  # distinct
    assert len(set(custody.cols)) == len(custody.cols)
    assert all(0 <= r < tiny_params.ext_rows for r in custody.rows)


def test_determinism_requirement(assignment, tiny_params):
    """Two computations of S(n, e) agree — even from scratch (the
    paper's footnote 2: consistent hashing would fail this)."""
    other = CellAssignment(tiny_params, RandaoBeacon(42))
    assert assignment.custody(9, 3) == other.custody(9, 3)


def test_short_liveness_requirement(assignment):
    """The assignment rotates across epochs (defeats placement attacks)."""
    changed = sum(
        1 for node in range(50) if assignment.custody(node, 0) != assignment.custody(node, 1)
    )
    assert changed > 45


def test_different_nodes_different_custody(assignment):
    distinct = {assignment.custody(node, 0) for node in range(50)}
    assert len(distinct) > 40


def test_custody_cells_count(assignment, tiny_params):
    cells = assignment.custody_cells(1, 0)
    rows, cols = tiny_params.custody_rows, tiny_params.custody_cols
    expected = rows * tiny_params.ext_cols + cols * (tiny_params.ext_rows - rows)
    assert len(cells) == expected


def test_full_scale_custody_count():
    params = PandasParams.full()
    assignment = CellAssignment(params, RandaoBeacon(1))
    assert len(assignment.custody_cells(0, 0)) == 8128


def test_is_custodian_matches_cells(assignment):
    cells = assignment.custody_cells(3, 0)
    for cid in list(cells)[:20]:
        assert assignment.is_custodian(3, 0, cid)
    non = next(c for c in range(1024) if c not in cells)
    assert not assignment.is_custodian(3, 0, non)


def test_lines_concatenates_rows_then_cols(assignment, tiny_params):
    custody = assignment.custody(2, 0)
    lines = assignment.lines(2, 0)
    assert lines[: tiny_params.custody_rows] == custody.rows
    assert all(line >= tiny_params.ext_rows for line in lines[tiny_params.custody_rows :])


class TestAssignmentIndex:
    def test_custodians_inverse_of_custody(self, assignment):
        index = AssignmentIndex(assignment, 0, range(40))
        for node in range(40):
            for line in assignment.lines(node, 0):
                assert node in index.custodians(line)

    def test_view_filtering(self, assignment):
        index = AssignmentIndex(assignment, 0, range(40))
        view = set(range(10))
        for line in range(64):
            for member in index.custodians(line, view):
                assert member in view

    def test_custodians_of_cell_union(self, assignment, tiny_params):
        index = AssignmentIndex(assignment, 0, range(40))
        cid = 100
        row_line, col_line = lines_of_cell(cid, tiny_params.ext_rows, tiny_params.ext_cols)
        members = index.custodians_of_cell(cid)
        expected = set(index.custodians(row_line)) | set(index.custodians(col_line))
        assert set(members) == expected
        assert len(members) == len(set(members))  # no duplicates

    def test_mean_custodians_per_line(self, assignment, tiny_params):
        index = AssignmentIndex(assignment, 0, range(64))
        lines_per_node = tiny_params.custody_rows + tiny_params.custody_cols
        total_lines = tiny_params.ext_rows + tiny_params.ext_cols
        expected = 64 * lines_per_node / total_lines
        assert index.mean_custodians_per_line() == pytest.approx(expected)


@given(node=st.integers(0, 10_000), epoch=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_assignment_deterministic_property(node, epoch):
    params = PandasParams.reduced(8, samples=5)
    a = CellAssignment(params, RandaoBeacon(7)).custody(node, epoch)
    b = CellAssignment(params, RandaoBeacon(7)).custody(node, epoch)
    assert a == b


@given(view=st.sets(st.integers(0, 39), min_size=1))
@settings(max_examples=30, deadline=None)
def test_index_view_filter_property(view):
    """Filtered custodians == unfiltered custodians ∩ view, per line."""
    params = PandasParams.reduced(8, samples=5)
    assignment = CellAssignment(params, RandaoBeacon(7))
    index = AssignmentIndex(assignment, 0, range(40))
    for line in (0, 17, 64, 100):
        full = index.custodians(line)
        filtered = index.custodians(line, view)
        assert filtered == [n for n in full if n in view]
