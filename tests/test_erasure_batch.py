"""Golden and performance tests for the vectorized erasure paths.

The batch Reed-Solomon codec (``encode_batch`` / ``decode_batch``) and
the GF matrix multiply behind it must be bit-identical to the scalar
reference implementation — the scalar path stays in the tree as the
oracle. A micro-benchmark pins that the batch path is actually faster
at realistic lane counts (1,000 cells), so the vectorization cannot
silently rot into a slow path.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.crypto.kzg import (
    KzgProof,
    commit_blob,
    prove_cell,
    verify_cell,
    verify_cells,
)
from repro.erasure.blob import Blob, _SymbolCodec
from repro.erasure.gf import GF256, GF65536
from repro.erasure.reed_solomon import ReedSolomon


# ----------------------------------------------------------------------
# GF matrix multiply vs scalar reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("field_fn", [GF256, GF65536])
def test_matmul_matches_scalar(field_fn):
    gf = field_fn()
    rng = random.Random(11)
    a = np.array(
        [[rng.randrange(gf.order) for _ in range(5)] for _ in range(4)], dtype=np.int64
    )
    b = np.array(
        [[rng.randrange(gf.order) for _ in range(3)] for _ in range(5)], dtype=np.int64
    )
    out = gf.matmul(a, b)
    for i in range(4):
        for j in range(3):
            acc = 0
            for k in range(5):
                acc ^= gf.mul(int(a[i, k]), int(b[k, j]))
            assert out[i, j] == acc


def test_matmul_zero_rows_and_columns():
    gf = GF256()
    a = np.zeros((3, 4), dtype=np.int64)
    b = np.ones((4, 2), dtype=np.int64)
    assert np.all(gf.matmul(a, b) == 0)
    assert gf.matmul(np.zeros((0, 4), dtype=np.int64), b).shape == (0, 2)


def test_matmul_chunked_equals_unchunked():
    # force the row-chunking path by exceeding the scratch cap
    gf = GF256()
    rng = np.random.default_rng(5)
    a = rng.integers(0, 256, size=(64, 64)).astype(np.int64)
    b = rng.integers(0, 256, size=(64, 2048)).astype(np.int64)
    whole = gf.matmul(a, b)
    top = gf.matmul(a[:7], b)
    assert np.array_equal(whole[:7], top)


def test_matmul_rejects_shape_mismatch():
    gf = GF256()
    with pytest.raises(ValueError, match="incompatible"):
        gf.matmul(np.zeros((2, 3), dtype=np.int64), np.zeros((4, 2), dtype=np.int64))


# ----------------------------------------------------------------------
# batched Reed-Solomon vs the scalar oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k,n", [(4, 8), (16, 32), (130, 260)])
def test_encode_batch_matches_scalar(k, n):
    rs = ReedSolomon(k, n)
    rng = random.Random(k)
    lanes = 3
    data = np.array(
        [[rng.randrange(rs.field.order) for _ in range(lanes)] for _ in range(k)],
        dtype=np.int64,
    )
    batch = rs.encode_batch(data)
    assert batch.shape == (n, lanes)
    for lane in range(lanes):
        scalar = rs.encode(data[:, lane].tolist())
        assert batch[:, lane].tolist() == scalar


@pytest.mark.parametrize("k,n", [(4, 8), (16, 32), (130, 260)])
def test_decode_batch_matches_scalar(k, n):
    rs = ReedSolomon(k, n)
    rng = random.Random(n)
    lanes = 3
    codewords = np.array(
        [rs.encode([rng.randrange(rs.field.order) for _ in range(k)]) for _ in range(lanes)],
        dtype=np.int64,
    ).T  # (n, lanes)
    positions = rng.sample(range(n), k + 2)
    symbols = codewords[positions]
    batch = rs.decode_batch(positions, symbols)
    assert np.array_equal(batch, codewords)
    for lane in range(lanes):
        known = {pos: int(codewords[pos, lane]) for pos in positions}
        assert batch[:, lane].tolist() == rs.decode(known)


def test_decode_batch_validation():
    rs = ReedSolomon(4, 8)
    with pytest.raises(ValueError, match="at least"):
        rs.decode_batch([0, 1], np.zeros((2, 1), dtype=np.int64))
    with pytest.raises(ValueError, match="outside"):
        rs.decode_batch([0, 1, 2, 9], np.zeros((4, 1), dtype=np.int64))
    with pytest.raises(ValueError, match="does not match"):
        rs.decode_batch([0, 1, 2, 3], np.zeros((3, 1), dtype=np.int64))


def test_encode_batch_validation():
    rs = ReedSolomon(4, 8)
    with pytest.raises(ValueError, match="expected"):
        rs.encode_batch(np.zeros((3, 2), dtype=np.int64))


def test_decode_batch_no_missing_positions():
    rs = ReedSolomon(4, 8)
    codeword = rs.encode([1, 2, 3, 4])
    symbols = np.array(codeword, dtype=np.int64).reshape(8, 1)
    out = rs.decode_batch(list(range(8)), symbols)
    assert out[:, 0].tolist() == codeword


# ----------------------------------------------------------------------
# byte-level codec golden: batch line codec vs per-lane scalar loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("wide", [False, True])
def test_symbol_codec_lines_match_per_lane_loop(wide):
    k, n, cell_bytes = 4, 8, 8
    codec = _SymbolCodec(k, n, cell_bytes, wide=wide)
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=(k, cell_bytes)).astype(np.uint8)

    parity = codec.encode_line(data)
    symbols = codec.cells_to_symbols(data)
    expect = np.zeros((n - k, codec.lanes), dtype=np.int64)
    for lane in range(codec.lanes):
        codeword = codec.rs.encode(symbols[:, lane].tolist())
        expect[:, lane] = codeword[k:]
    assert np.array_equal(parity, codec.symbols_to_cells(expect))

    full = np.concatenate([data, parity], axis=0)
    known = {pos: full[pos] for pos in (0, 2, 5, 7)}
    decoded = codec.decode_line(known)
    assert np.array_equal(decoded, full)


def test_blob_extend_round_trip_after_vectorization():
    blob = Blob.from_bytes(bytes(range(256)) * 2, 4, 4, 32)
    ext = blob.extend()
    assert np.array_equal(ext.to_blob().cells, blob.cells)
    # any half of a row reconstructs it: drop the odd columns of row 1
    codec = _SymbolCodec(4, 8, 32)
    known = {c: ext.cells[1, c] for c in range(0, 8, 2)}
    assert np.array_equal(codec.decode_line(known), ext.cells[1])


# ----------------------------------------------------------------------
# batched KZG verification
# ----------------------------------------------------------------------
def test_verify_cells_matches_scalar():
    blob = Blob.from_bytes(b"pandas" * 100, 2, 2, 256)
    ext = blob.extend()
    commitment = commit_blob(ext)
    items = []
    for cid in range(8):
        cell = ext.cell_by_id(cid)
        proof = prove_cell(commitment, cid, cell)
        items.append((cid, cell, proof))
    # corrupt one proof, drop another
    items[3] = (items[3][0], items[3][1], KzgProof(b"\x00" * 48))
    items[5] = (items[5][0], items[5][1], None)
    batch = verify_cells(commitment, items)
    scalar = [verify_cell(commitment, cid, cell, proof) for cid, cell, proof in items]
    assert batch == scalar
    assert batch == [True, True, True, False, True, False, True, True]


# ----------------------------------------------------------------------
# micro-benchmark: the batch path must actually be faster
# ----------------------------------------------------------------------
def test_batch_encode_faster_than_scalar_at_1k_cells():
    """1,000 lanes through one batch call vs 1,000 scalar encodes.

    The margin at this size is >10x in practice; asserting a plain win
    keeps the test robust on loaded CI machines while still catching a
    batch path that regressed to per-lane work.
    """
    k, n, lanes = 16, 32, 1000
    rs = ReedSolomon(k, n)
    rng = np.random.default_rng(17)
    data = rng.integers(0, 256, size=(k, lanes)).astype(np.int64)

    start = time.perf_counter()
    batch = rs.encode_batch(data)
    batch_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    scalar = np.empty((n, lanes), dtype=np.int64)
    for lane in range(lanes):
        scalar[:, lane] = rs.encode(data[:, lane].tolist())
    scalar_elapsed = time.perf_counter() - start

    assert np.array_equal(batch, scalar)
    assert batch_elapsed < scalar_elapsed, (
        f"batch {batch_elapsed:.4f}s not faster than scalar {scalar_elapsed:.4f}s"
    )
