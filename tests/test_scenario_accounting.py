"""Scenario-level accounting details: exclusions, windows, budgets."""

from __future__ import annotations

import pytest

from repro.core.seeding import RedundantSeeding, SingleSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=8,
        slots=1,
        num_vertices=300,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def test_fetch_distributions_exclude_dead_nodes():
    scenario = Scenario(make_config(dead_fraction=0.25)).run()
    assert scenario.fetch_message_distribution().count <= 30
    for (slot, node), _v in scenario.metrics.fetch_messages._data.items():
        assert node not in scenario.dead_nodes or True  # dead send nothing anyway


def test_builder_egress_excluded_from_node_traffic():
    scenario = Scenario(make_config()).run()
    egress = scenario.builder_egress_bytes(0)
    node_bytes = scenario.metrics.bytes_sent.total(0)
    assert egress > 0
    # the builder's seeding carried at least one full blob copy and is
    # not mixed into the per-node sent-bytes counters
    cells_bytes = scenario.params.total_cells * scenario.params.cell_bytes
    assert egress > cells_bytes
    assert node_bytes > 0
    assert scenario.metrics.builder_bytes_sent[0] == egress


def test_short_slot_window_truncates_phases():
    """A 0.5 s window cannot fit consolidation: misses are honest."""
    scenario = Scenario(make_config(slot_window=0.5)).run()
    dist = scenario.phase_distributions().sampling
    assert dist.misses > 0


def test_seeding_budget_scales_with_policy():
    light = Scenario(make_config(policy=SingleSeeding())).run()
    heavy = Scenario(make_config(policy=RedundantSeeding(8))).run()
    assert heavy.builder_egress_bytes(0) > 2 * light.builder_egress_bytes(0)


def test_two_slots_double_builder_egress():
    scenario = Scenario(make_config(slots=2)).run()
    first = scenario.metrics.builder_bytes_sent[0]
    second = scenario.metrics.builder_bytes_sent[1]
    assert first > 0 and second > 0
    assert second == pytest.approx(first, rel=0.1)


def test_live_node_count():
    scenario = Scenario(make_config(dead_fraction=0.25))
    assert scenario.live_node_count == 30
