"""Absolute replay anchors for the baseline scenarios.

The scale-regression suite pins the PANDAS path with ``DENSE_PIN``;
these pins extend the same guarantee to the three baseline systems the
four-way comparison (Figure 12) depends on. Each constant is the
``MetricsRecorder.fingerprint()`` of one fixed dense-grid run — any
code change that moves one of these values changed baseline *behavior*
(message timing, peer choice, RNG consumption), not just performance,
and must update the pin deliberately with a CHANGES.md note.

The configuration deliberately mirrors ``tests/test_determinism.py``'s
``dense_config`` / ``tests/test_scale_regression.py``'s DENSE_PIN
setup: 35 nodes, 8x8 dense grid, custody 4+4, 8 samples, seed 9.
"""

from __future__ import annotations

import pytest

from repro.baselines import DhtDasScenario, GossipDasScenario, PeerDasScenario
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import ScenarioConfig
from repro.params import PandasParams

GOSSIPSUB_PIN = "56e5e3da590c7f7888cef57653c47be5bdc5e97f9c3a8a9f9cb7f200bfa02f88"
DHT_PIN = "9dc0013d806ed07dcf31f54200deb1bf725c0e9f8afc358cef1ace3040065adb"
PEERDAS_PIN = "ae19af8c2b130bfcfcfbe4e691946984632d979d079595b502e374be335ad4f5"


def dense_config():
    return ScenarioConfig(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=9,
        slots=1,
        num_vertices=300,
    )


@pytest.mark.parametrize(
    ("scenario_class", "pin"),
    [
        (GossipDasScenario, GOSSIPSUB_PIN),
        (DhtDasScenario, DHT_PIN),
        (PeerDasScenario, PEERDAS_PIN),
    ],
    ids=["gossipsub", "dht", "peerdas"],
)
def test_baseline_replay_matches_pin(scenario_class, pin):
    scenario = scenario_class(dense_config()).run()
    assert scenario.metrics.fingerprint() == pin, (
        f"{scenario_class.__name__} replay fingerprint moved — baseline "
        "behavior changed; update the pin only if the change is intended"
    )
