"""Wire-size accounting for PANDAS messages."""

from __future__ import annotations

from repro.core.messages import (
    BOOST_ENTRY_BYTES,
    CELL_ID_BYTES,
    CellRequest,
    CellResponse,
    SeedMessage,
)
from repro.params import PandasParams


def test_seed_message_size():
    params = PandasParams.full()
    msg = SeedMessage(
        slot=0,
        epoch=0,
        line=3,
        cells=(1, 2, 3),
        boost=((7, (4, 5)), (8, (6,))),
    )
    expected = params.message_overhead_bytes + 3 * params.cell_bytes + 2 * BOOST_ENTRY_BYTES
    assert msg.wire_size(params) == expected


def test_seed_message_empty_parcel_costs_overhead_and_boost():
    params = PandasParams.full()
    msg = SeedMessage(slot=0, epoch=0, line=1, cells=(), boost=((7, (1,)),))
    assert msg.wire_size(params) == params.message_overhead_bytes + BOOST_ENTRY_BYTES


def test_request_size_scales_with_cell_ids():
    params = PandasParams.full()
    msg = CellRequest(slot=0, epoch=0, cells=frozenset(range(10)))
    assert msg.wire_size(params) == params.message_overhead_bytes + 10 * CELL_ID_BYTES


def test_response_size_carries_full_cells():
    params = PandasParams.full()
    msg = CellResponse(slot=0, epoch=0, cells=tuple(range(5)))
    assert msg.wire_size(params) == params.message_overhead_bytes + 5 * 560


def test_sample_response_is_about_40kb_for_73_cells():
    """The per-node sampling volume of Section 3 (73 x 560 B)."""
    params = PandasParams.full()
    msg = CellResponse(slot=0, epoch=0, cells=tuple(range(73)))
    payload = msg.wire_size(params) - params.message_overhead_bytes
    assert payload == 73 * 560  # ~40 KB


def test_messages_carry_slot_for_accounting():
    for msg in (
        SeedMessage(slot=9, epoch=0, line=0, cells=(1,)),
        CellRequest(slot=9, epoch=0, cells=frozenset({1})),
        CellResponse(slot=9, epoch=0, cells=(1,)),
    ):
        assert msg.slot == 9
