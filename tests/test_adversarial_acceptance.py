"""The issue's Byzantine acceptance bar, end to end.

Two scenarios at 100 nodes with online invariants:

- a 20% Byzantine mix (all five behaviors) replayed twice, asserting
  bit-identical fingerprints — adversary randomness flows only through
  the seeded ``('faults', ...)`` RNG streams, so a hostile run can be
  debugged from nothing but the seed and the spec string;
- a ≤10% Byzantine mix asserting the robustness criterion: at least
  99% of live honest nodes still complete sampling within the 4 s
  deadline, with the defense layer (verification drops, unsolicited
  rejections, reputation) visibly engaged.

The parameters (16x16 base grid, custody 2+2, 10 samples) put the
sybil-censorship probability near zero, so honest completion is
attributable to the defenses, not to luck with the assignment draw.
"""

from __future__ import annotations

import pytest

from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import FaultPlan
from repro.params import PandasParams


def run_adversarial(plan: FaultPlan, seed: int = 11) -> Scenario:
    config = ScenarioConfig(
        num_nodes=100,
        params=PandasParams(
            base_rows=16, base_cols=16, custody_rows=2, custody_cols=2, samples=10
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=1000,
        faults=plan,
        check_invariants=True,
    )
    return Scenario(config).run()


@pytest.mark.slow
class TestByzantineReplay:
    """20% Byzantine, all five behaviors, bit-identical replay."""

    SPEC = "corrupt=0.08,flood=4@25,withhold=0.04,equivocate=2@1,stall=2@0.5"

    def test_hostile_run_replays_bit_identically(self):
        first = run_adversarial(FaultPlan.parse(self.SPEC))
        second = run_adversarial(FaultPlan.parse(self.SPEC))

        assert first.metrics.fingerprint() == second.metrics.fingerprint()
        assert first.sim.events_processed == second.sim.events_processed
        assert first.metrics.fault_counts == second.metrics.fault_counts
        assert first.byzantine_nodes == second.byzantine_nodes

        # every configured behavior actually fired
        faults = first.metrics.fault_counts
        assert faults["byz_corrupt_cells"] > 0
        assert faults["byz_flood"] > 0
        assert faults["byz_withhold_cells"] > 0
        assert faults["byz_equivocate_drop"] > 0
        assert faults["byz_stall"] > 0

        # and the online invariant checker watched the whole run
        assert first.invariants.checks_run > 1000


@pytest.mark.slow
class TestByzantineResilience:
    """≤10% Byzantine ⇒ ≥99% of live honest nodes sample within 4 s."""

    SPEC = "corrupt=0.04,flood=2@20,withhold=0.02,stall=2@0.5"  # 10 nodes

    def test_honest_sampling_survives_byzantine_minority(self):
        scenario = run_adversarial(FaultPlan.parse(self.SPEC))

        byzantine = scenario.byzantine_nodes
        assert len(byzantine) == 10

        honest = [
            n
            for n in scenario.node_ids
            if n not in byzantine and n not in scenario.dead_nodes
        ]
        within = 0
        for node in honest:
            times = scenario.metrics.phase_times.get((0, node))
            if times is not None and times.sampling is not None and times.sampling <= 4.0:
                within += 1
        assert within / len(honest) >= 0.99

        # the defenses, not luck, carried the run: corrupt payloads were
        # verified and dropped, garbage floods were rejected, and the
        # liars' reputation decayed below the clean-peer baseline
        defenses = scenario.metrics.defense_counts
        assert defenses.get("cells_invalid", 0) > 0
        assert defenses.get("resp_unsolicited", 0) > 0

        corrupt_nodes = [
            nid
            for nid, node in scenario.nodes.items()
            if getattr(node, "spec", None) is not None and node.spec.behavior == "corrupt"
        ]
        assert corrupt_nodes
        assert any(
            scenario.nodes[h].reputation.weight(c) < 1.0
            for c in corrupt_nodes
            for h in honest
        )

    def test_corrupt_cells_never_stored(self):
        # the invariant checker raises InvariantViolation online, so a
        # clean return with cells_invalid > 0 means every corrupt cell
        # was verified, counted and dropped — none reached storage
        scenario = run_adversarial(FaultPlan.parse(self.SPEC))
        assert scenario.metrics.defense_counts.get("cells_invalid", 0) > 0
        assert scenario.invariants.checks_run > 1000
