"""Fetcher configuration modes: custom completion, query caps, inbound."""

from __future__ import annotations

import random


from repro.core.assignment import Custody, cells_of_line
from repro.core.custody import SlotCellState
from repro.core.fetching import AdaptiveFetcher, plan_queries
from repro.params import FetchSchedule, PandasParams
from repro.sim.engine import Simulator


def make_fetcher(samples=(), custodians=None, **kwargs):
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=1, custody_cols=1, samples=2
    )
    state = SlotCellState(params, Custody(rows=(0,), cols=(3,)), samples)
    sim = Simulator()
    sent = []
    custodians = custodians if custodians is not None else {}
    fetcher = AdaptiveFetcher(
        sim=sim,
        state=state,
        schedule=FetchSchedule(),
        line_custodians=lambda line: custodians.get(line, []),
        send_query=lambda peer, cells: sent.append((sim.now, peer, cells)),
        rng=random.Random(1),
        cb_boost=10_000,
        self_id=999,
        **kwargs,
    )
    return fetcher, state, sim, sent


class TestQueryCap:
    def test_cap_limits_query_size(self):
        plan = plan_queries(
            targets=set(range(40)),
            ordered_peers=[1],
            candidate_cells={1: set(range(40))},
            redundancy=1,
            max_cells_per_query=16,
        )
        assert len(plan.queries) == 1
        assert len(plan.queries[0][1]) == 16

    def test_no_cap_takes_everything(self):
        plan = plan_queries(
            targets=set(range(40)),
            ordered_peers=[1],
            candidate_cells={1: set(range(40))},
            redundancy=1,
            max_cells_per_query=None,
        )
        assert len(plan.queries[0][1]) == 40

    def test_cap_spreads_over_more_peers(self):
        candidates = {p: set(range(64)) for p in range(10)}
        plan = plan_queries(set(range(64)), list(range(10)), candidates, 1, 16)
        assert len(plan.queries) == 4  # 64 cells / 16 per query


class TestInboundHandling:
    def test_inbound_cells_deferred_until_round3(self):
        fetcher, state, _sim, _sent = make_fetcher()
        row_cells = cells_of_line(0, 16, 16)
        fetcher.add_inbound(row_cells[:8])
        early = fetcher.round_targets(1)
        assert not (set(row_cells[:8]) & early)
        # trusted inbound covers the whole row deficit: row contributes
        # nothing in rounds 1-2
        assert not (set(row_cells) & early)
        # by round 3 the row's deficit is requested again (from the
        # non-inbound half first — inbound stays last in preference)
        late = fetcher.round_targets(3)
        assert len(set(row_cells) & late) == 8

    def test_delivered_inbound_no_longer_missing(self):
        fetcher, state, _sim, _sent = make_fetcher()
        row_cells = cells_of_line(0, 16, 16)
        fetcher.add_inbound(row_cells[:8])
        state.add_cells(row_cells[:8])  # reconstructs the row
        assert state.line_deficit(0) == 0
        assert not (set(row_cells) & fetcher.round_targets(1))


class TestCompletionModes:
    def test_custom_is_complete_wins(self):
        flags = {"done": False}
        fetcher, state, sim, _sent = make_fetcher(
            custodians={0: [1]},
            is_complete=lambda: flags["done"],
        )
        fetcher.start()
        assert not fetcher.finished
        flags["done"] = True
        fetcher.on_response(1, ())
        assert fetcher.finished

    def test_sampling_only_mode_completes_without_custody(self):
        fetcher, state, sim, _sent = make_fetcher(
            samples=[40, 41],
            custodians={40 // 16: [1]},
            fetch_custody=False,
        )
        fetcher.start()
        fetcher.on_response(1, (40, 41))
        assert fetcher.finished
        assert not state.consolidation_complete  # custody untouched
