"""Unit tests for bandwidth-limited access links."""

from __future__ import annotations

import pytest

from repro.net.link import AccessLink, gbps, mbps


def test_mbps_conversion():
    assert mbps(8) == 1e6  # 8 Mbit/s = 1 MB/s


def test_gbps_conversion():
    assert gbps(8) == 1e9


def test_uplink_serialization_delay():
    link = AccessLink(up_rate=1e6, down_rate=None)  # 1 MB/s
    departure = link.reserve_uplink(now=0.0, size=500_000)
    assert departure == pytest.approx(0.5)


def test_uplink_fifo_queueing():
    link = AccessLink(up_rate=1e6, down_rate=None)
    first = link.reserve_uplink(0.0, 1_000_000)
    second = link.reserve_uplink(0.0, 1_000_000)
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)  # queued behind the first


def test_uplink_idle_gap_not_accumulated():
    link = AccessLink(up_rate=1e6, down_rate=None)
    link.reserve_uplink(0.0, 1_000_000)  # busy until 1.0
    departure = link.reserve_uplink(5.0, 1_000_000)  # link idle since 1.0
    assert departure == pytest.approx(6.0)


def test_downlink_serialization():
    link = AccessLink(up_rate=None, down_rate=2e6)
    delivered = link.reserve_downlink(arrival=1.0, size=1_000_000)
    assert delivered == pytest.approx(1.5)


def test_downlink_queueing():
    link = AccessLink(up_rate=None, down_rate=1e6)
    first = link.reserve_downlink(0.0, 500_000)
    second = link.reserve_downlink(0.1, 500_000)
    assert first == pytest.approx(0.5)
    assert second == pytest.approx(1.0)  # starts only after the first drains


def test_unshaped_link_is_instant():
    link = AccessLink(up_rate=None, down_rate=None)
    assert link.reserve_uplink(3.0, 10**9) == 3.0
    assert link.reserve_downlink(3.0, 10**9) == 3.0


def test_byte_accounting():
    link = AccessLink(up_rate=1e6, down_rate=1e6)
    link.reserve_uplink(0.0, 100)
    link.reserve_uplink(0.0, 200)
    link.reserve_downlink(0.0, 50)
    assert link.up_bytes == 300
    assert link.down_bytes == 50


def test_uplink_backlog():
    link = AccessLink(up_rate=1e6, down_rate=None)
    link.reserve_uplink(0.0, 2_000_000)
    assert link.uplink_backlog(0.0) == pytest.approx(2.0)
    assert link.uplink_backlog(1.5) == pytest.approx(0.5)
    assert link.uplink_backlog(10.0) == 0.0


def test_reset():
    link = AccessLink(up_rate=1e6, down_rate=1e6)
    link.reserve_uplink(0.0, 1000)
    link.reset()
    assert link.up_busy_until == 0.0
    assert link.up_bytes == 0.0


# ----------------------------------------------------------------------
# edge cases: zero-byte messages, unshaped directions, contention order
# ----------------------------------------------------------------------
def test_zero_byte_message_departs_instantly():
    link = AccessLink(up_rate=1e6, down_rate=1e6)
    assert link.reserve_uplink(2.0, 0) == pytest.approx(2.0)
    assert link.reserve_downlink(2.0, 0) == pytest.approx(2.0)
    assert link.up_bytes == 0
    assert link.down_bytes == 0


def test_zero_byte_message_still_queues_behind_backlog():
    link = AccessLink(up_rate=1e6, down_rate=None)
    link.reserve_uplink(0.0, 1_000_000)  # busy until 1.0
    # a zero-byte datagram cannot overtake queued bytes on a FIFO link
    assert link.reserve_uplink(0.0, 0) == pytest.approx(1.0)


def test_none_rate_one_direction_only():
    link = AccessLink(up_rate=None, down_rate=1e6)
    assert link.reserve_uplink(0.0, 10**9) == 0.0  # unshaped direction
    assert link.reserve_downlink(0.0, 1_000_000) == pytest.approx(1.0)


def test_none_rate_accumulates_bytes_without_delay():
    link = AccessLink(up_rate=None, down_rate=None)
    link.reserve_uplink(0.0, 123)
    link.reserve_downlink(0.0, 456)
    assert link.up_bytes == 123
    assert link.down_bytes == 456
    assert link.uplink_backlog(0.0) == 0.0
    assert link.downlink_backlog(0.0) == 0.0


def test_back_to_back_sends_serialize_in_order():
    """Under contention, departures come out in reservation order and
    back-to-back with no idle gaps."""
    link = AccessLink(up_rate=1e6, down_rate=None)
    sizes = [100_000, 250_000, 50_000, 600_000]
    departures = [link.reserve_uplink(0.0, size) for size in sizes]
    assert departures == sorted(departures)
    expected = 0.0
    for size, departure in zip(sizes, departures, strict=True):
        expected += size / 1e6
        assert departure == pytest.approx(expected)


def test_interleaved_contention_keeps_fifo_order():
    """A later reservation at an earlier timestamp still queues behind
    everything reserved before it (no reordering by arrival time)."""
    link = AccessLink(up_rate=None, down_rate=1e6)
    first = link.reserve_downlink(0.0, 1_000_000)  # drains at 1.0
    second = link.reserve_downlink(0.5, 500_000)  # queued: 1.0 -> 1.5
    third = link.reserve_downlink(0.2, 100_000)  # queued: 1.5 -> 1.6
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(1.5)
    assert third == pytest.approx(1.6)


def test_downlink_backlog():
    link = AccessLink(up_rate=None, down_rate=1e6)
    link.reserve_downlink(0.0, 2_000_000)
    assert link.downlink_backlog(0.0) == pytest.approx(2.0)
    assert link.downlink_backlog(1.5) == pytest.approx(0.5)
    assert link.downlink_backlog(10.0) == 0.0
