"""End-to-end consensus integration: attestations from measured runs.

The executable version of the paper's core claim: under the tight
fork-choice rule, an honest builder's block is accepted and a
withholding builder's block is rejected — with no consensus change,
purely from per-node sampling outcomes.
"""

from __future__ import annotations

import random

import pytest

from repro.consensus import ForkChoiceRule, ForkChoiceSimulator, ValidatorRegistry
from repro.core.seeding import RedundantSeeding, WithholdingSeeding
from repro.crypto.randao import RandaoBeacon
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def run_scenario(policy):
    params = PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )
    config = ScenarioConfig(
        num_nodes=40,
        params=params,
        policy=policy,
        seed=11,
        slots=1,
        num_vertices=400,
        include_block_gossip=True,
    )
    return Scenario(config).run()


def committee_outcomes(scenario, registry, fork_choice, slot=0):
    committee = registry.committee_for_slot(slot)
    outcomes = []
    for validator in committee.members:
        node = registry.host_of(validator)
        times = scenario.metrics.phase_times.get((slot, node))
        outcomes.append(
            fork_choice.outcome_for(
                slot,
                node,
                times.block if times else None,
                times.sampling if times else None,
            )
        )
    return outcomes


@pytest.fixture(scope="module")
def registry():
    registry = ValidatorRegistry(RandaoBeacon(5), committee_size=24)
    registry.register_many(120, list(range(40)), random.Random(1))
    return registry


@pytest.fixture(scope="module")
def honest_run():
    return run_scenario(RedundantSeeding(8))


@pytest.fixture(scope="module")
def withholding_run():
    return run_scenario(WithholdingSeeding(RedundantSeeding(8), release=0.4))


def test_honest_block_accepted_under_tight_rule(honest_run, registry):
    fork_choice = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
    decision = fork_choice.aggregate(committee_outcomes(honest_run, registry, fork_choice))
    assert decision.accepted


def test_withholding_block_rejected_under_tight_rule(withholding_run, registry):
    fork_choice = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
    decision = fork_choice.aggregate(
        committee_outcomes(withholding_run, registry, fork_choice)
    )
    assert not decision.accepted
    assert decision.votes_against > decision.votes_for


def test_withholding_accepted_then_reverted_under_trailing_rule(withholding_run, registry):
    """The consensus-modifying behaviour PANDAS exists to avoid."""
    fork_choice = ForkChoiceSimulator(ForkChoiceRule.TRAILING)
    outcomes = committee_outcomes(withholding_run, registry, fork_choice)
    decision = fork_choice.aggregate(outcomes)
    assert decision.accepted  # voted in on block validity alone...
    assert any(outcome.later_reverted for outcome in outcomes)  # ...then reverted


def test_tight_rule_never_needs_reverts(honest_run, withholding_run, registry):
    fork_choice = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
    for scenario in (honest_run, withholding_run):
        outcomes = committee_outcomes(scenario, registry, fork_choice)
        assert not any(outcome.later_reverted for outcome in outcomes)


def test_attestations_derive_from_outcomes(honest_run, registry):
    fork_choice = ForkChoiceSimulator(ForkChoiceRule.TIGHT)
    outcomes = committee_outcomes(honest_run, registry, fork_choice)
    attestations = [
        fork_choice.attestation(outcome, validator)
        for outcome, validator in zip(outcomes, registry.committee_for_slot(0).members, strict=True)
    ]
    assert all(att.vote for att in attestations)
