"""Data-withholding attacks and their detection (Section 3 / claim C1).

A rational builder may withhold cells to save bandwidth or because it
never had the data. Below the 50% per-line release threshold the grid
cannot be reconstructed, consolidation cannot complete, and sampling
systematically fails — which under the tight fork-choice rule turns
into 'invalid' attestations.
"""

from __future__ import annotations

import pytest

from repro.core.seeding import RedundantSeeding, SingleSeeding, WithholdingSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def dense_params():
    return PandasParams(
        base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10
    )


def run_with_policy(policy, seed=3):
    config = ScenarioConfig(
        num_nodes=40,
        params=dense_params(),
        policy=policy,
        seed=seed,
        slots=1,
        num_vertices=400,
    )
    return Scenario(config).run()


def test_release_fraction_validated():
    with pytest.raises(ValueError):
        WithholdingSeeding(SingleSeeding(), release=1.5)


def test_withholding_reduces_seeded_cells():
    params = dense_params()
    full = SingleSeeding()
    attack = WithholdingSeeding(full, release=0.4)
    for line in (0, 5, 20):
        assert len(attack.cells_for_line(line, params)) == int(
            len(full.cells_for_line(line, params)) * 0.4
        )


def test_name_describes_attack():
    attack = WithholdingSeeding(RedundantSeeding(8), release=0.25)
    assert "withholding" in attack.name
    assert "0.25" in attack.name


def test_heavy_withholding_blocks_sampling_network_wide():
    """Release 40% of each line's owned cells: the grid cannot be
    recovered, so sampling must fail for (essentially) everyone."""
    scenario = run_with_policy(WithholdingSeeding(RedundantSeeding(8), release=0.4))
    sampling = scenario.sampling_distribution()
    assert sampling.fraction_within(4.0) < 0.1


def test_heavy_withholding_blocks_consolidation():
    scenario = run_with_policy(WithholdingSeeding(RedundantSeeding(8), release=0.4))
    consolidation = scenario.phase_distributions().consolidation
    assert consolidation.fraction_within(12.0) < 0.1


def test_full_release_behaves_like_inner_policy():
    honest = run_with_policy(RedundantSeeding(8))
    wrapped = run_with_policy(WithholdingSeeding(RedundantSeeding(8), release=1.0))
    assert (
        wrapped.sampling_distribution().fraction_within(4.0)
        == honest.sampling_distribution().fraction_within(4.0)
        == 1.0
    )


def test_partial_withholding_above_threshold_survives():
    """Releasing 100% of owned cells is 50% of each line; the network
    reconstructs. Even a mild shave below that can be absorbed when
    both of a cell's lines have custodians to cross-fetch from."""
    scenario = run_with_policy(WithholdingSeeding(RedundantSeeding(8), release=0.95))
    sampling = scenario.sampling_distribution()
    assert sampling.fraction_within(12.0) > 0.8
