"""The telemetry layer's core guarantees.

The hard requirement (ISSUE: observability) is the same contract the
trace layer carries: a telemetered run must be bit-identical to a bare
one, pinned by ``MetricsRecorder.fingerprint()`` equality across the
PANDAS scenario, a baseline, and the sustained pipeline. The rest of
the file covers the registry mechanics (deterministic histograms,
label validation, idempotent registration), the cadence sampler, the
traffic-layer classifier and the heartbeat's wall-clock isolation.
"""

from __future__ import annotations

import io

import pytest

from repro.baselines import GossipDasScenario
from repro.core.seeding import RedundantSeeding
from repro.experiments.pipeline import PipelineScenario
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.obs import Heartbeat, Histogram, Telemetry
from repro.obs.telemetry import (
    DEPTH_BOUNDS,
    TIME_BOUNDS,
    flat_name,
    pow2_bounds,
)
from repro.params import PandasParams, RetryPolicy


def dense_config(seed=9, **overrides):
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def pipeline_config(seed=3, **overrides):
    defaults = dict(
        num_nodes=40,
        params=PandasParams(
            base_rows=8,
            base_cols=8,
            custody_rows=4,
            custody_cols=4,
            samples=10,
            fetch_retry=RetryPolicy(),
            pending_request_limit=256,
            retrieval_admit_rate=50.0,
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=3,
        num_vertices=500,
        max_inbox=4096,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


# ----------------------------------------------------------------------
# deterministic histograms
# ----------------------------------------------------------------------
def test_pow2_bounds_are_exact_doublings():
    bounds = pow2_bounds(0.25, 4.0)
    assert bounds == (0.25, 0.5, 1.0, 2.0, 4.0)
    with pytest.raises(ValueError):
        pow2_bounds(0.0, 1.0)
    with pytest.raises(ValueError):
        pow2_bounds(4.0, 2.0)


def test_standard_bounds_cover_the_protocol_ranges():
    # one simulator tick up to past the 12 s slot; depth 1 .. 2^16
    assert TIME_BOUNDS[0] == 1.0 / 1024.0
    assert TIME_BOUNDS[-1] >= 16.0
    assert DEPTH_BOUNDS[0] == 1.0
    assert DEPTH_BOUNDS[-1] >= 65536.0


def test_histogram_bucketing_edges():
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    hist.observe(1.0)   # v <= 1.0 -> bucket 0
    hist.observe(1.5)   # 1.0 < v <= 2.0 -> bucket 1
    hist.observe(2.0)   # boundary is inclusive -> bucket 1
    hist.observe(100.0)  # overflow bucket
    assert hist.counts == [1, 2, 0, 1]
    assert hist.count == 4
    assert hist.sum == pytest.approx(104.5)


def test_histogram_quantiles_are_order_independent():
    values = [0.01, 3.0, 0.2, 0.2, 1.5, 0.04, 8.0, 0.9]
    forward = Histogram()
    backward = Histogram()
    for v in values:
        forward.observe(v)
    for v in reversed(values):
        backward.observe(v)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert forward.quantile(q) == backward.quantile(q)


def test_histogram_quantile_monotone_and_clamped():
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 9.0, 9.0):
        hist.observe(v)
    previous = None
    for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
        estimate = hist.quantile(q)
        if previous is not None:
            assert estimate >= previous
        previous = estimate
    # overflow bucket clamps to the top boundary
    assert hist.quantile(1.0) == 4.0
    assert Histogram().quantile(0.5) is None


def test_histogram_merge_requires_matching_bounds():
    a = Histogram(bounds=(1.0, 2.0))
    b = Histogram(bounds=(1.0, 2.0))
    a.observe(0.5)
    b.observe(3.0)
    a.merge(b)
    assert a.count == 2
    assert a.counts == [1, 0, 1]
    with pytest.raises(ValueError):
        a.merge(Histogram(bounds=(1.0, 4.0)))


def test_histogram_round_trips_through_parts():
    hist = Histogram(bounds=(1.0, 2.0))
    for v in (0.5, 1.5, 1.5, 9.0):
        hist.observe(v)
    d = hist.to_dict()
    rebuilt = Histogram.from_parts(d["bounds"], d["counts"], d["sum"])
    assert rebuilt.counts == hist.counts
    assert rebuilt.count == hist.count
    assert rebuilt.quantile(0.5) == hist.quantile(0.5)


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    tel = Telemetry()
    tel.inc("bytes_sent_total", 100.0, layer="seed")
    tel.inc("bytes_sent_total", 50.0, layer="seed")
    tel.set_gauge("live_nodes", 40.0)
    tel.observe("phase_latency_seconds", 0.5, phase="sampling")
    assert tel.metrics["bytes_sent_total"].value(layer="seed") == 150.0
    assert tel.metrics["live_nodes"].value() == 40.0
    assert tel.metrics["phase_latency_seconds"].child(phase="sampling").count == 1


def test_label_set_must_match_exactly():
    tel = Telemetry()
    with pytest.raises(ValueError):
        tel.metrics["bytes_sent_total"].inc(1.0, wrong="x")
    with pytest.raises(ValueError):
        tel.metrics["bytes_sent_total"].inc(1.0)  # missing the layer label


def test_counter_rejects_negative_increment():
    tel = Telemetry()
    with pytest.raises(ValueError):
        tel.inc("bytes_sent_total", -1.0, layer="seed")


def test_registration_idempotent_but_kind_conflicts_raise():
    tel = Telemetry()
    a = tel.counter("custom_total", "help", ("k",))
    b = tel.counter("custom_total", "other help", ("k",))
    assert a is b
    with pytest.raises(ValueError):
        tel.gauge("custom_total")
    with pytest.raises(ValueError):
        tel.counter("custom_total", labels=("other",))


def test_kind_mismatch_on_use_raises():
    tel = Telemetry()
    with pytest.raises(TypeError):
        tel.metrics["live_nodes"].inc(1.0)
    with pytest.raises(TypeError):
        tel.metrics["bytes_sent_total"].set(1.0, layer="seed")


def test_flat_name_formatting():
    assert flat_name("x", (), ()) == "x"
    assert flat_name("x", ("a", "b"), ("1", "2")) == "x{a=1,b=2}"


def test_invalid_cadence_and_names_rejected():
    with pytest.raises(ValueError):
        Telemetry(cadence=0.0)
    tel = Telemetry()
    with pytest.raises(ValueError):
        tel.counter("9starts_with_digit")
    with pytest.raises(ValueError):
        tel.counter("has-dash")


# ----------------------------------------------------------------------
# traffic-layer classification
# ----------------------------------------------------------------------
def _Payload(name, priority=0):
    """A payload whose type *name* drives the classifier."""
    obj = type(name, (), {})()
    obj.priority = priority
    return obj


def test_layer_classification():
    tel = Telemetry()
    tel.configure_layers(builder_id=100, retrieval_floor=10_000_000)
    assert tel._layer(100, 1, _Payload("CellRequest")) == "seed"
    assert tel._layer(1, 2, _Payload("SeedMessage")) == "seed"
    assert tel._layer(1, 2, _Payload("GossipMessage")) == "gossip"
    assert tel._layer(1, 2, _Payload("CellRequest")) == "fetch"
    assert tel._layer(1, 2, _Payload("CellRequest", priority=1)) == "retrieval"
    assert tel._layer(10_000_001, 2, _Payload("CellRequest")) == "retrieval"
    assert tel._layer(2, 10_000_001, _Payload("CellResponse")) == "retrieval"
    assert tel._layer(2, 3, _Payload("CellResponse")) == "fetch"
    assert tel._layer(1, 2, _Payload("Unknown")) == "other"


# ----------------------------------------------------------------------
# the cadence sampler
# ----------------------------------------------------------------------
def test_sampler_rows_follow_the_cadence():
    tel = Telemetry(cadence=0.25)
    config = dense_config(telemetry=tel)
    scenario = Scenario(config).run()
    assert scenario.telemetry is tel
    assert tel.finalized
    # 12 s slot window at 0.25 s cadence: ~48 rows, plus the finalize
    # row if sim time moved past the last tick
    assert len(tel.samples) >= 48
    times = [row["t"] for row in tel.samples]
    assert times == sorted(times)
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert all(d == 0.25 for d in deltas[:-1])
    # every row carries the standard gauges and flat counter series
    row = tel.samples[-1]
    assert "events_processed" in row
    assert "live_nodes" in row
    assert any(k.startswith("bytes_sent_total{layer=") for k in row)


def test_sampler_counts_expected_population():
    tel = Telemetry()
    scenario = Scenario(dense_config(telemetry=tel)).run()
    assert tel.meta["expected_samples"] == scenario.honest_live_count
    assert tel.meta["nodes"] == 35
    assert tel.meta["slots"] == 1
    assert tel.deadline == scenario.params.deadline


def test_telemetry_cannot_be_installed_twice():
    tel = Telemetry()
    Scenario(dense_config(telemetry=tel)).run()
    with pytest.raises(RuntimeError):
        Scenario(dense_config(telemetry=tel))


def test_phase_tap_mirrors_recorder_counts():
    tel = Telemetry()
    scenario = Scenario(dense_config(telemetry=tel)).run()
    recorded = sum(
        1
        for times in scenario.metrics.phase_times.values()
        if times.sampling is not None
    )
    sampling = tel.metrics["phase_latency_seconds"].child(phase="sampling")
    assert sampling is not None
    assert sampling.count == recorded
    assert tel.metrics["phase_completions_total"].value(phase="sampling") == recorded


def test_fetch_round_latency_observed():
    tel = Telemetry()
    Scenario(dense_config(telemetry=tel)).run()
    metric = tel.metrics["fetch_round_latency_seconds"]
    total = sum(hist.count for _key, hist in metric.samples())
    assert total > 0


# ----------------------------------------------------------------------
# behavior neutrality: the hard requirement
# ----------------------------------------------------------------------
def test_pandas_fingerprint_identical_with_telemetry():
    """fingerprint() is bit-identical with telemetry on or off."""
    plain = Scenario(dense_config()).run().metrics.fingerprint()
    telemetered = (
        Scenario(dense_config(telemetry=Telemetry())).run().metrics.fingerprint()
    )
    assert plain == telemetered


def test_baseline_fingerprint_identical_with_telemetry():
    plain = GossipDasScenario(dense_config()).run().metrics.fingerprint()
    telemetered = (
        GossipDasScenario(dense_config(telemetry=Telemetry()))
        .run()
        .metrics.fingerprint()
    )
    assert plain == telemetered


def test_pipeline_fingerprint_identical_with_telemetry():
    plain = PipelineScenario(pipeline_config(), churn_fraction=0.1).run()
    telemetered = PipelineScenario(
        pipeline_config(telemetry=Telemetry()), churn_fraction=0.1
    ).run()
    assert plain.report().fingerprint == telemetered.report().fingerprint
    assert telemetered.telemetry.samples  # and the sampler actually ran


def test_two_telemetered_runs_produce_identical_series():
    rows = []
    for _ in range(2):
        tel = Telemetry()
        Scenario(dense_config(telemetry=tel)).run()
        rows.append(tel.samples)
    assert rows[0] == rows[1]


# ----------------------------------------------------------------------
# heartbeat (wall clock stays in obs/progress.py)
# ----------------------------------------------------------------------
def test_heartbeat_first_call_arms_then_beats():
    stream = io.StringIO()
    beat = Heartbeat(interval_s=0.0, stream=stream)
    beat.maybe_beat(1.0, 100, expected_end=12.0)
    assert beat.beats == 0  # arming call only
    beat.maybe_beat(2.0, 250, expected_end=12.0)
    assert beat.beats == 1
    line = stream.getvalue()
    assert "sim t=2.00s" in line
    assert "events=250" in line
    assert "ev/s" in line


def test_heartbeat_respects_interval():
    stream = io.StringIO()
    beat = Heartbeat(interval_s=3600.0, stream=stream)
    for i in range(5):
        beat.maybe_beat(float(i), i * 10)
    assert beat.beats == 0
    assert stream.getvalue() == ""
    with pytest.raises(ValueError):
        Heartbeat(interval_s=-1.0)


def test_heartbeat_rides_the_sampler():
    stream = io.StringIO()
    tel = Telemetry(heartbeat=Heartbeat(interval_s=0.0, stream=stream))
    Scenario(dense_config(telemetry=tel)).run()
    assert tel.heartbeat.beats > 0
    assert "[heartbeat +" in stream.getvalue()


def test_heartbeat_does_not_change_the_fingerprint():
    plain = Scenario(dense_config()).run().metrics.fingerprint()
    tel = Telemetry(heartbeat=Heartbeat(interval_s=0.0, stream=io.StringIO()))
    beating = Scenario(dense_config(telemetry=tel)).run().metrics.fingerprint()
    assert plain == beating
