"""Seeding-policy tests: budgets, coverage, redundancy (Section 6.1)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.seeding import (
    MinimalSeeding,
    RedundantSeeding,
    SingleSeeding,
    boost_map_for_line,
    owned_cells_of_line,
    policy_by_name,
)
from repro.params import PandasParams


@pytest.fixture
def params():
    return PandasParams(base_rows=8, base_cols=8, custody_rows=2, custody_cols=2, samples=5)


def all_parcels(policy, params, custodians_per_line=6, seed=1):
    rng = random.Random(seed)
    parcels = []
    num_lines = params.ext_rows + params.ext_cols
    for line in range(num_lines):
        custodians = [1000 + line * 100 + i for i in range(custodians_per_line)]
        parcels.extend(policy.line_parcels(line, params, custodians, rng))
    return parcels


class TestOwnership:
    def test_every_cell_owned_exactly_once(self, params):
        owners = Counter()
        for line in range(params.ext_rows + params.ext_cols):
            for cid in owned_cells_of_line(line, params):
                owners[cid] += 1
        assert len(owners) == params.total_cells
        assert set(owners.values()) == {1}

    def test_owned_cells_lie_on_their_line(self, params):
        for line in (0, 3, params.ext_rows + 2):
            for cid in owned_cells_of_line(line, params):
                row, col = divmod(cid, params.ext_cols)
                if line < params.ext_rows:
                    assert row == line
                else:
                    assert col == line - params.ext_rows

    def test_ownership_split_is_balanced(self, params):
        for line in range(params.ext_rows + params.ext_cols):
            owned = owned_cells_of_line(line, params)
            line_len = params.ext_cols if line < params.ext_rows else params.ext_rows
            assert len(owned) == line_len // 2


class TestBudgets:
    def test_minimal_sends_the_quadrant_once(self, params):
        parcels = all_parcels(MinimalSeeding(), params)
        cells = Counter(cid for p in parcels for cid in p.cells)
        quadrant = {
            r * params.ext_cols + c
            for r in range(params.base_rows)
            for c in range(params.base_cols)
        }
        assert set(cells) == quadrant
        assert set(cells.values()) == {1}

    def test_single_sends_every_cell_once(self, params):
        parcels = all_parcels(SingleSeeding(), params)
        cells = Counter(cid for p in parcels for cid in p.cells)
        assert len(cells) == params.total_cells
        assert set(cells.values()) == {1}

    def test_redundant_sends_r_copies(self, params):
        parcels = all_parcels(RedundantSeeding(4), params)
        cells = Counter(cid for p in parcels for cid in p.cells)
        assert len(cells) == params.total_cells
        assert set(cells.values()) == {4}

    def test_redundant_capped_by_custodians(self, params):
        """With fewer custodians than r, copies cap at the population."""
        parcels = all_parcels(RedundantSeeding(8), params, custodians_per_line=3)
        cells = Counter(cid for p in parcels for cid in p.cells)
        assert set(cells.values()) == {3}

    def test_full_scale_byte_budgets_match_paper(self):
        """Exactly 35 / 140 / 1,120 MB of cells for minimal / single /
        redundant(8) — the totals of Section 6.1."""
        params = PandasParams.full()
        custodians = list(range(100, 116))
        for policy, expected_bytes in (
            (MinimalSeeding(), 256 * 256 * 560),
            (SingleSeeding(), 512 * 512 * 560),
            (RedundantSeeding(8), 8 * 512 * 512 * 560),
        ):
            rng = random.Random(0)
            total = 0
            for line in range(params.ext_rows + params.ext_cols):
                parcels = policy.line_parcels(line, params, custodians, rng)
                total += sum(len(p.cells) for p in parcels) * params.cell_bytes
            assert total == expected_bytes


class TestParcelStructure:
    def test_parcels_are_adjacent_runs(self, params):
        parcels = all_parcels(SingleSeeding(), params, custodians_per_line=3)
        for parcel in parcels:
            owned = owned_cells_of_line(parcel.line, params)
            positions = [owned.index(c) for c in parcel.cells]
            assert positions == list(range(positions[0], positions[0] + len(positions)))

    def test_primaries_are_distinct(self, params):
        rng = random.Random(3)
        custodians = list(range(10))
        parcels = SingleSeeding().line_parcels(0, params, custodians, rng)
        primaries = [p.node_id for p in parcels]
        assert len(primaries) == len(set(primaries))

    def test_replicas_are_distinct_nodes_per_parcel(self, params):
        rng = random.Random(3)
        custodians = list(range(10))
        parcels = RedundantSeeding(4).line_parcels(0, params, custodians, rng)
        by_cells = {}
        for p in parcels:
            by_cells.setdefault(p.cells, []).append(p.node_id)
        for nodes in by_cells.values():
            assert len(nodes) == len(set(nodes)) == 4

    def test_no_custodians_no_parcels(self, params):
        assert SingleSeeding().line_parcels(0, params, [], random.Random(1)) == []


class TestBoostMap:
    def test_merges_parcels_per_node(self, params):
        rng = random.Random(5)
        parcels = RedundantSeeding(3).line_parcels(0, params, list(range(4)), rng)
        boost = boost_map_for_line(parcels)
        for node, cells in boost.items():
            expected = sorted(
                {cid for p in parcels if p.node_id == node for cid in p.cells}
            )
            assert list(cells) == expected

    def test_covers_all_seeded_cells(self, params):
        rng = random.Random(6)
        parcels = SingleSeeding().line_parcels(2, params, list(range(5)), rng)
        boost = boost_map_for_line(parcels)
        seeded = {cid for p in parcels for cid in p.cells}
        mapped = {cid for cells in boost.values() for cid in cells}
        assert mapped == seeded


def test_policy_by_name():
    assert policy_by_name("minimal").name == "minimal"
    assert policy_by_name("single").name == "single"
    assert policy_by_name("redundant", r=5).copies == 5
    with pytest.raises(ValueError):
        policy_by_name("bogus")


def test_redundancy_must_be_positive():
    with pytest.raises(ValueError):
        RedundantSeeding(0)
