"""Batched-transport conformance: batched == per-datagram, bit for bit.

The batched delivery path keeps one armed simulator event per endpoint
instead of one per in-flight datagram. Its correctness contract is
strong: reserved engine sequence numbers make the delivery interleaving
identical to per-datagram scheduling — including exact-time ties
against unrelated events — so both modes must produce the same
``MetricsRecorder`` snapshot under every fault regime the injector
supports (loss, duplication, jitter, partitions) and under churn.
"""

from __future__ import annotations

import pytest

from repro.baselines import DhtDasScenario
from repro.core.seeding import RedundantSeeding
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.faults.plan import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.transport import DELIVERY_MODES, Network
from repro.params import PandasParams
from repro.sim.engine import Simulator


def dense_config(seed=9, **overrides):
    defaults = dict(
        num_nodes=35,
        params=PandasParams(
            base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=8
        ),
        policy=RedundantSeeding(4),
        seed=seed,
        slots=1,
        num_vertices=300,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def run_fingerprint(config):
    scenario = Scenario(config).run()
    return scenario.metrics.fingerprint(), scenario.sim.events_processed


FAULT_SPECS = [
    None,
    "loss=0.08",
    "dup=0.10",
    "jitter=0.05",
    "partition=0.3@1.0+0.5",
    "loss=0.03,dup=0.05,jitter=0.02,partition=0.3@1.0+0.5",
]


@pytest.mark.parametrize("spec", FAULT_SPECS, ids=[s or "clean" for s in FAULT_SPECS])
def test_modes_agree_under_faults(spec):
    faults = FaultPlan.parse(spec) if spec else None
    batched_fp, batched_events = run_fingerprint(
        dense_config(faults=faults, delivery="batched")
    )
    plain_fp, plain_events = run_fingerprint(
        dense_config(faults=faults, delivery="per-datagram")
    )
    assert batched_fp == plain_fp
    # merging may only ever reduce the executed event count
    assert batched_events <= plain_events


def test_modes_agree_with_churn_and_dead_nodes():
    cfg = dict(dead_fraction=0.15, loss_rate=0.05)
    a, _ = run_fingerprint(dense_config(delivery="batched", **cfg))
    b, _ = run_fingerprint(dense_config(delivery="per-datagram", **cfg))
    assert a == b


def test_modes_agree_on_dht_baseline():
    a = DhtDasScenario(dense_config(delivery="batched")).run().metrics.fingerprint()
    b = DhtDasScenario(dense_config(delivery="per-datagram")).run().metrics.fingerprint()
    assert a == b


def test_unknown_delivery_mode_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="delivery mode"):
        Network(sim, ConstantLatency(0.01), delivery="bulk")
    assert set(DELIVERY_MODES) == {"batched", "per-datagram"}


# ----------------------------------------------------------------------
# targeted unit coverage of the inbox machinery (unshaped links, ties)
# ----------------------------------------------------------------------
def _mini_net(delivery):
    sim = Simulator()
    net = Network(sim, ConstantLatency(0.01), loss_rate=0.0, delivery=delivery)
    log = []
    for addr in (1, 2):
        net.register(addr, addr, lambda d, a=addr: log.append((sim.now, a, d.payload)), None, None)
    return sim, net, log


@pytest.mark.parametrize("delivery", DELIVERY_MODES)
def test_unshaped_same_instant_ties_preserve_send_order(delivery):
    sim, net, log = _mini_net(delivery)
    # identical latency and no shaping: all four arrive at the same instant
    for i in range(4):
        net.send(1, 2, f"m{i}", 100)
    sim.run()
    assert [p for (_, _, p) in log] == ["m0", "m1", "m2", "m3"]
    assert net.datagrams_delivered == 4


@pytest.mark.parametrize("delivery", DELIVERY_MODES)
def test_tie_interleaves_with_unrelated_timer(delivery):
    """A timer scheduled between two same-instant sends fires between
    their deliveries — the tie order per-datagram mode guarantees and
    batched mode must replicate via reserved sequence numbers."""
    sim, net, log = _mini_net(delivery)
    net.send(1, 2, "first", 100)
    sim.call_at(0.01, lambda: log.append((sim.now, "timer", None)))
    net.send(1, 2, "second", 100)
    sim.run()
    assert [entry[1] for entry in log] == [2, "timer", 2]
    assert [p for (_, _, p) in log] == ["first", None, "second"]


def test_late_death_drops_match(monkeypatch):
    results = {}
    for delivery in DELIVERY_MODES:
        sim, net, log = _mini_net(delivery)
        net.send(1, 2, "doomed", 100)
        sim.call_at(0.005, net.kill, 2)  # dies while the datagram is in flight
        sim.run()
        results[delivery] = (tuple(log), net.datagrams_lost, net.datagrams_delivered)
    assert results["batched"] == results["per-datagram"] == ((), 1, 0)
