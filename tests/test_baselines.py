"""Baseline integration tests: GossipSub channels and DHT put/get."""

from __future__ import annotations

import pytest

from repro.baselines.dht_das import DhtDasScenario, PARCEL_CELLS, parcel_key, parcel_of_cell
from repro.baselines.gossipsub_das import GossipDasScenario, UnitAssignment
from repro.experiments.scenario import Scenario, ScenarioConfig
from repro.params import PandasParams


def dense_params():
    # units = ext_rows / custody_rows = 16 / 4 = 4 units -> ~10 nodes each
    return PandasParams(base_rows=8, base_cols=8, custody_rows=4, custody_cols=4, samples=10)


def make_config(**overrides):
    defaults = dict(
        num_nodes=40,
        params=dense_params(),
        seed=3,
        slots=1,
        num_vertices=500,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestUnitAssignment:
    def test_units_partition_lines(self):
        params = dense_params()
        units = UnitAssignment(params, epoch_seed=1)
        seen = set()
        for unit in range(units.num_units):
            custody = units.unit_custody(unit)
            lines = custody.lines(params.ext_rows)
            assert not (set(lines) & seen)
            seen.update(lines)
        assert len(seen) == params.ext_rows + params.ext_cols

    def test_unit_of_line_inverts_custody(self):
        params = dense_params()
        units = UnitAssignment(params, epoch_seed=1)
        for unit in range(units.num_units):
            for line in units.unit_custody(unit).lines(params.ext_rows):
                assert units.unit_of_line(line) == unit

    def test_deterministic_node_mapping(self):
        params = dense_params()
        a = UnitAssignment(params, epoch_seed=1)
        b = UnitAssignment(params, epoch_seed=1)
        assert [a.unit_of(n) for n in range(20)] == [b.unit_of(n) for n in range(20)]

    def test_epoch_seed_rotates_mapping(self):
        params = dense_params()
        a = UnitAssignment(params, epoch_seed=1)
        b = UnitAssignment(params, epoch_seed=2)
        assert [a.unit_of(n) for n in range(50)] != [b.unit_of(n) for n in range(50)]


class TestGossipDas:
    @pytest.fixture(scope="class")
    def scenario(self):
        return GossipDasScenario(make_config()).run()

    def test_most_nodes_complete_sampling(self, scenario):
        dist = scenario.sampling_distribution()
        assert dist.fraction_within(12.0) > 0.9

    def test_custody_filled_by_gossip(self, scenario):
        consolidated = scenario.phase_distributions().consolidation
        assert consolidated.misses <= 4

    def test_builder_egress_matches_redundant_budget(self, scenario):
        """Equal-budget comparison: 8x the extended blob (Figure 12)."""
        params = scenario.params
        data = 8 * params.total_cells * params.cell_bytes
        egress = scenario.builder_egress_bytes(0)
        # fanout caps at the channel population, so small channels can
        # push egress slightly under the nominal 8x budget
        assert 0.75 * data <= egress < 1.1 * data


class TestDhtDas:
    def test_parcel_mapping(self):
        assert parcel_of_cell(0) == 0
        assert parcel_of_cell(PARCEL_CELLS - 1) == 0
        assert parcel_of_cell(PARCEL_CELLS) == 1

    def test_parcel_keys_distinct(self):
        keys = {parcel_key(0, i) for i in range(50)}
        assert len(keys) == 50
        assert parcel_key(0, 1) != parcel_key(1, 1)

    def test_sampling_completes_eventually(self):
        scenario = DhtDasScenario(make_config(slot_window=12.0)).run()
        dist = scenario.sampling_distribution()
        assert dist.fraction_within(12.0) > 0.85

    def test_dht_slower_than_pandas(self):
        """Figure 12's headline ordering at small scale."""
        config = make_config(slot_window=12.0)
        pandas_scenario = Scenario(config).run()
        dht_scenario = DhtDasScenario(make_config(slot_window=12.0)).run()
        assert (
            pandas_scenario.sampling_distribution().median
            < dht_scenario.sampling_distribution().median
        )
